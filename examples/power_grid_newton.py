"""Power-system style Newton-Raphson with a fixed-sparsity Jacobian.

Section 1.2 of the Sympiler paper motivates sparsity-specialized code with
power-system and circuit simulation: the Jacobian's sparsity pattern is fixed
by the network topology, while its values change every Newton iteration.
This example builds a small-world "transmission grid", defines a nonlinear
nodal balance equation, and solves it with Newton's method.  Sympiler
compiles the factorization code once (for the pattern); each iteration reuses
the generated numeric kernels with new Jacobian values.

Run with:  python examples/power_grid_newton.py
"""

import numpy as np

from repro import power_grid_spd
from repro.solvers import newton_raphson_fixed_pattern
from repro.sparse.coo import TripletBuilder


def main() -> None:
    n_buses = 120
    Y = power_grid_spd(n_buses, neighbours=2, rewire=0.08, seed=42)
    rng = np.random.default_rng(0)
    injections = rng.uniform(0.2, 1.0, size=n_buses)
    target = rng.uniform(0.5, 1.5, size=n_buses)
    demand = Y.matvec(target) + 0.05 * injections * np.sinh(target)

    def residual(v: np.ndarray) -> np.ndarray:
        # Nodal balance: Y v + 0.05 * p * sinh(v) - demand = 0
        return Y.matvec(v) + 0.05 * injections * np.sinh(v) - demand

    def jacobian(v: np.ndarray):
        # J = Y + 0.05 * diag(p * cosh(v)) — same pattern at every iterate.
        builder = TripletBuilder(n_buses, n_buses)
        coo = Y.to_coo()
        builder.add_many(coo.rows, coo.cols, coo.data)
        diag = 0.05 * injections * np.cosh(v)
        for i in range(n_buses):
            builder.add(i, i, diag[i])
        return builder.to_csc()

    print(f"grid: {n_buses} buses, {Y.nnz} admittance-matrix entries")
    result = newton_raphson_fixed_pattern(
        residual, jacobian, x0=np.ones(n_buses), tol=1e-10, ordering="mindeg"
    )
    print(f"converged: {result.converged} in {result.iterations} iterations")
    print(f"Jacobian factorizations (same pattern, new values): {result.factorizations}")
    print("residual norm per iteration:")
    for k, r in enumerate(result.residual_norms):
        print(f"  iter {k:2d}: {r:.3e}")
    err = np.abs(result.x - target).max()
    print(f"max abs error vs the constructed operating point: {err:.2e}")


if __name__ == "__main__":
    main()
