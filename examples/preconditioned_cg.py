"""Preconditioned conjugate gradient with Sympiler-generated triangular solves.

Section 4.3 of the paper argues that the one-time symbolic/codegen cost of a
specialized triangular solve is negligible for preconditioned iterative
solvers, which perform a triangular solve (or two) in *every* iteration on a
fixed sparsity pattern.  This example solves a 2-D Poisson problem with CG,
with and without an IC(0) preconditioner whose forward/backward sweeps run
through Sympiler-generated kernels, and reports the iteration counts.

Run with:  python examples/preconditioned_cg.py
"""

import numpy as np

from repro import laplacian_2d
from repro.solvers import preconditioned_conjugate_gradient


def main() -> None:
    A = laplacian_2d(24)
    rng = np.random.default_rng(3)
    x_true = rng.normal(size=A.n)
    b = A.matvec(x_true)
    print(f"Poisson system: n={A.n}, nnz={A.nnz}")

    plain = preconditioned_conjugate_gradient(
        A, b, tol=1e-10, use_preconditioner=False
    )
    print(
        f"plain CG:            {plain.iterations:4d} iterations, "
        f"final residual {plain.final_residual:.2e}"
    )

    precond = preconditioned_conjugate_gradient(
        A, b, tol=1e-10, use_preconditioner=True, preconditioner="compiled"
    )
    print(
        f"IC(0)-preconditioned:{precond.iterations:4d} iterations, "
        f"final residual {precond.final_residual:.2e} "
        f"(IC(0) factor computed by the generated '{precond.preconditioner}' kernel)"
    )
    print(
        "preconditioner applications (2 generated triangular solves each): "
        f"{precond.iterations + 1}"
    )
    err = np.abs(precond.x - x_true).max()
    print(f"max abs error of the preconditioned solution: {err:.2e}")

    # The interpreted IC(0) reference is kept as the oracle: on the python
    # backend the compiled factor is bitwise identical, so the whole CG
    # trajectory coincides exactly.
    oracle = preconditioned_conjugate_gradient(
        A, b, tol=1e-10, preconditioner="interpreted"
    )
    same = bool(np.array_equal(precond.x, oracle.x))
    print(f"compiled and interpreted preconditioner iterates identical: {same}")


if __name__ == "__main__":
    main()
