"""scipy drop-in: `repro.solve(A, b)` on scipy matrices, no conversions.

The lazy-specializing front end accepts a `scipy.sparse` matrix (or COO
triplets, or a dense array) directly: the first call on a structure probes
it, auto-selects the kernel route, orders, inspects and compiles; every
later call on the same structure is pure numeric execution.  This script
walks all four auto-selected routes, shows the warm-call counters, and runs
the fixed-pattern/changing-values loop through the `@sympiled` decorator.

Run with:  python examples/scipy_drop_in.py
"""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro
from repro.frontend import SpecializedSolver, sympiled
from repro.sparse import (
    laplacian_2d,
    saddle_point_indefinite,
    unsymmetric_diag_dominant,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # --- repro.solve on a scipy matrix, auto-selected route ----------------
    A = laplacian_2d(20).to_scipy().tocsc()  # any scipy.sparse SPD matrix
    n = A.shape[0]
    b = rng.normal(size=n)
    x = repro.solve(A, b)  # first call: probe + specialize + solve
    print(f"SPD {n}x{n}: residual {np.linalg.norm(A @ x - b):.2e} (route: cholesky)")
    assert np.allclose(x, spla.spsolve(A, b), atol=1e-8)

    # The second structurally-identical call skips probing, inspection and
    # codegen entirely — specialize once, execute numerically forever.
    x2 = repro.solve(A, rng.normal(size=n))
    front = repro.frontend.default_frontend()
    print(
        f"warm call: specializations={front.stats.specializations}, "
        f"structure_hits={front.stats.structure_hits}"
    )
    assert np.isfinite(x2).all()

    # --- the other routes, probed from structure ----------------------------
    K = saddle_point_indefinite(120, 40).to_scipy()  # symmetric indefinite
    xk = repro.solve(K, np.ones(K.shape[0]))  # route: ldlt
    J = unsymmetric_diag_dominant(150).to_scipy()  # unsymmetric Jacobian
    xj = repro.solve(J, np.ones(J.shape[0]))  # route: lu
    print(
        f"KKT residual {np.linalg.norm(K @ xk - 1.0):.2e} (route: ldlt), "
        f"Jacobian residual {np.linalg.norm(J @ xj - 1.0):.2e} (route: lu)"
    )

    # Large sparse SPD systems go iterative (IC(0)-preconditioned CG); the
    # size cutoff is tunable per instance.
    iterative = SpecializedSolver(iterative_threshold=200)
    P = laplacian_2d(16).to_scipy()  # n = 256 >= 200
    xp = iterative.solve(P, np.ones(P.shape[0]))
    print(
        f"large SPD: route {list(iterative.stats.methods)} in "
        f"{iterative.last_cg_result.iterations} CG iterations, "
        f"residual {np.linalg.norm(P @ xp - 1.0):.2e}"
    )

    # --- COO triplets work anywhere a pattern enters the system ------------
    rows = np.array([0, 1, 1, 2])
    cols = np.array([0, 0, 1, 2])
    vals = np.array([4.0, 1.0, 3.0, 5.0])
    xt = repro.solve((rows, cols, vals), np.ones(3))
    print(f"triplet input: x = {np.round(xt, 3)}")

    # --- @sympiled: the fixed-pattern / changing-values loop ----------------
    mesh = laplacian_2d(12)

    @sympiled
    def assemble_and_solve(t: float):
        # Same pattern every step, new values — the loop the paper amortizes.
        stiffness = mesh.with_values(mesh.data * (1.0 + 0.5 * t))
        load = np.full(mesh.n, t)
        return stiffness, load

    for step in range(5):
        assemble_and_solve(0.1 * (step + 1))
    info = assemble_and_solve.cache_info()
    print(
        f"@sympiled over 5 steps: {info['specializations']} specialization, "
        f"{info['refactorizations']} numeric refactorizations"
    )
    assert info["specializations"] == 1

    print("scipy drop-in front end OK")


if __name__ == "__main__":
    main()
