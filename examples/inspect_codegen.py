"""Look inside the compiler: AST, transformations and generated code.

Walks through the stages of Figure 2 of the paper on a small matrix with
large supernodes: the lowered (annotated) AST, the AST after the
inspector-guided transformations, the decisions taken by the participation
heuristics, and the final generated source for both backends (the C source is
shown even if no C compiler is installed; it is only compiled when one is
available).

Run with:  python examples/inspect_codegen.py
"""

import numpy as np

from repro import Sympiler, SympilerOptions, sparse_rhs
from repro.compiler.ast import pretty
from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.lowering import lower_triangular_solve
from repro.sparse.generators import block_tridiagonal_spd


def main() -> None:
    A = block_tridiagonal_spd(6, 5, seed=11, dense_coupling=True)
    sym = Sympiler()

    print("=" * 72)
    print("1. Initial lowered AST for the triangular solve (Figure 2a)")
    print("=" * 72)
    print(pretty(lower_triangular_solve()))

    chol = sym.compile_cholesky(A)
    L = chol.factorize(A)
    b = sparse_rhs(A.n, nnz=2, seed=5)
    tri = sym.compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])

    print()
    print("=" * 72)
    print("2. Transformed AST after VS-Block / VI-Prune / low-level passes")
    print("=" * 72)
    print(pretty(tri.kernel))
    print()
    print("applied transformations:", tri.applied_transformations)
    print("VS-Block participation decision:", tri.decisions.get("vs-block"))

    print()
    print("=" * 72)
    print("3. Generated Python kernel (specialized to this pattern and RHS)")
    print("=" * 72)
    print(tri.source)

    print("=" * 72)
    print("4. Generated C kernel")
    print("=" * 72)
    if c_compiler_available("cc") or c_compiler_available("gcc"):
        compiler = "cc" if c_compiler_available("cc") else "gcc"
        c_tri = sym.compile_triangular_solve(
            L,
            rhs_pattern=np.nonzero(b)[0],
            options=SympilerOptions(backend="c", c_compiler=compiler),
        )
        print("\n".join(c_tri.source.splitlines()[:60]))
        print("...")
        x_c = c_tri.solve(L, b)
        x_py = tri.solve(L, b)
        print(f"\nmax |x_c - x_python| = {np.abs(x_c - x_py).max():.2e}")
    else:
        print("(no C compiler found on this machine; skipping C compilation)")


if __name__ == "__main__":
    main()
