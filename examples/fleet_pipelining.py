"""Pipelined wire requests and the sharded solver fleet.

Two escalations of the serving layer, one endpoint surface:

1. **Pipelining (protocol v2).**  A single :class:`ServiceClient` connection
   negotiates wire protocol v2 via a ``hello`` frame and then keeps many
   id-tagged requests in flight at once — ``submit()`` returns a future
   immediately, the server's micro-batching window fills from one client,
   and responses resolve out of band.  The same loop written with the
   lock-step ``solve()`` pays the coalescing window once *per request*.

2. **Sharding.**  A :class:`ShardFleet` runs N solver-service processes
   over one shared compiled-kernel disk cache and routes each pattern to a
   shard by consistent-hashing its fingerprint.  Kill a shard mid-stream
   and the fleet respawns it, re-registers its patterns **warm from disk**
   (zero recompiles — the counters prove it), and transparently resubmits
   the requests that were caught in the crash.

Because ``SolverService``, ``ServiceClient`` and ``ShardFleet`` all
implement the :class:`~repro.service.endpoint.SolverEndpoint` protocol, the
driving code below is identical for the single-connection and fleet halves.

Run with:  python examples/fleet_pipelining.py
"""

import time

import numpy as np

from repro import SympilerOptions, fem_stencil_2d, laplacian_2d
from repro.service import ServiceClient, ShardFleet, SolverService, serve_background


def drive(endpoint, handles, matrices, requests: int):
    """Pipeline `requests` mixed-pattern solves through any SolverEndpoint."""
    names = sorted(matrices)
    futures = []
    for k in range(requests):
        name = names[k % len(names)]
        A = matrices[name]
        rhs = np.sin(np.arange(A.n, dtype=np.float64) + k)
        futures.append(endpoint.submit(handles[name], A.data, rhs))
    return [f.result(timeout=120.0) for f in futures]


def main() -> None:
    options = SympilerOptions(enable_vs_block=False)
    matrices = {
        "laplacian": laplacian_2d(14, shift=0.1),
        "fem": fem_stencil_2d(10, shift=0.25),
    }
    requests = 32

    # ---- Part 1: one connection, pipelined vs lock-step ------------------
    service = SolverService(options=options, window_seconds=0.005, max_batch=16)
    server, thread = serve_background(service)
    try:
        with ServiceClient(server.server_address) as client:
            print(f"negotiated wire protocol: v{client.protocol}")
            handles = {
                name: client.register_pattern(A, options=options)
                for name, A in matrices.items()
            }

            t0 = time.perf_counter()
            drive(client, handles, matrices, requests)
            pipelined = time.perf_counter() - t0

            t0 = time.perf_counter()
            for k in range(requests):
                name = sorted(matrices)[k % len(matrices)]
                A = matrices[name]
                rhs = np.sin(np.arange(A.n, dtype=np.float64) + k)
                client.solve(handles[name], A.data, rhs)  # one round-trip each
            lockstep = time.perf_counter() - t0

        print(
            f"{requests} requests on one connection: "
            f"pipelined {pipelined * 1e3:.0f} ms vs "
            f"lock-step {lockstep * 1e3:.0f} ms "
            f"({lockstep / pipelined:.1f}x)"
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    # ---- Part 2: a 2-shard fleet surviving a mid-stream crash ------------
    with ShardFleet(2, window_ms=5.0, max_batch=16) as fleet:
        handles = {
            name: fleet.register_pattern(A, options=options)
            for name, A in matrices.items()
        }
        drive(fleet, handles, matrices, requests)  # same code as Part 1

        victim = int(
            next(
                slot
                for slot, s in fleet.stats()["per_shard"].items()
                if s.get("registered_patterns", 0) > 0
            )
        )
        print(f"killing shard {victim} mid-stream ...")
        fleet.kill_shard(victim)
        xs = drive(fleet, handles, matrices, requests)

        c = fleet.counters
        print(
            f"all {len(xs)} post-crash requests completed; "
            f"deaths={c['shard_deaths']}, respawns={c['respawns']}, "
            f"re-registrations={c['reregisters']} "
            f"(warm={c['warm_reregisters']}, cold={c['cold_reregisters']})"
        )
        assert c["cold_reregisters"] == 0, "failover must reuse the disk cache"


if __name__ == "__main__":
    main()
