"""End-to-end solver-service demo: register once, serve many, coalesce.

Starts the serving layer in-process (a real TCP server on an ephemeral
port), registers one sparsity pattern, then fires concurrent clients at it —
each solving the same pattern with different numeric values, the parameter-
sweep traffic the service's micro-batching was built for.  The compiled
kernels are paid for exactly once; the coalescing stats printed at the end
show how many requests shared each batched dispatch.

Run with ``PYTHONPATH=src python examples/solver_service.py``.
"""

import threading

import numpy as np

from repro import SparseLinearSolver, SympilerOptions, laplacian_2d
from repro.service import ServiceClient, SolverService, serve_background

N_CLIENTS = 6
REQUESTS_PER_CLIENT = 8


def main() -> None:
    # One SPD model problem; its *pattern* is what the service compiles for.
    A = laplacian_2d(20, shift=0.05)

    # The stacked (vectorized) batch kernels mirror the simplicial python
    # emitters, so disable supernodal codegen for maximum coalescing effect.
    options = SympilerOptions(enable_vs_block=False)
    service = SolverService(options=options, window_seconds=0.01, max_batch=16)
    server, server_thread = serve_background(service)
    host, port = server.server_address
    print(f"solver service listening on {host}:{port}")

    try:
        # Control-plane: register the pattern once (compiles + pins kernels).
        with ServiceClient((host, port)) as control:
            handle = control.register_pattern(A)
        print(
            f"registered pattern {handle.fingerprint} "
            f"(n={handle.n}, nnz={handle.nnz}, factor nnz={handle.factor_nnz}, "
            f"schedule levels={handle.schedule_levels}, warm={handle.warm})"
        )

        # Data-plane: N clients, each a thread with its own connection,
        # solving scaled variants of A against distinct right-hand sides.
        reference = SparseLinearSolver(A, ordering="natural", options=options)
        errors = []

        def run_client(worker: int) -> None:
            try:
                with ServiceClient((host, port)) as client:
                    for i in range(REQUESTS_PER_CLIENT):
                        scale = 1.0 + 0.02 * (worker * REQUESTS_PER_CLIENT + i)
                        rhs = np.sin(np.arange(A.n) * 0.1 + worker)
                        x = client.solve(handle, A.data * scale, rhs)
                        expected = reference.solve(rhs) / scale
                        if not np.allclose(x, expected, atol=1e-8):
                            errors.append(f"client {worker} request {i} mismatched")
            except Exception as exc:  # pragma: no cover - demo diagnostics
                errors.append(f"client {worker}: {exc}")

        threads = [
            threading.Thread(target=run_client, args=(w,)) for w in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise SystemExit("; ".join(errors))

        with ServiceClient((host, port)) as control:
            stats = control.stats()
        total = N_CLIENTS * REQUESTS_PER_CLIENT
        print(f"\nserved {stats['counters']['solves_ok']}/{total} solves correctly")
        print(f"coalesced dispatches : {stats['counters'].get('batches', 0)}")
        print(f"coalescing ratio     : {stats['coalescing_ratio']:.2f} requests/dispatch")
        print(f"batch-size histogram : {stats['batch_size_histogram']}")
        latency = stats["latency"]
        print(
            f"latency              : p50 {1e3 * latency['p50_seconds']:.2f} ms, "
            f"p95 {1e3 * latency['p95_seconds']:.2f} ms"
        )
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5)
    print("service stopped cleanly")


if __name__ == "__main__":
    main()
