"""Quickstart: compile and run matrix-specialized sparse kernels.

Builds a small SPD model problem, lets Sympiler analyze its sparsity pattern
at compile time, and then runs the generated numeric-only kernels: a sparse
Cholesky factorization and a sparse triangular solve with a sparse right-hand
side.  Results are checked against dense NumPy/SciPy references.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Sympiler, laplacian_2d, sparse_rhs
from repro.baselines import reference_cholesky, reference_trisolve


def main() -> None:
    # An SPD model problem: the 5-point Laplacian on a 20x20 grid.
    A = laplacian_2d(20)
    print(f"matrix: n={A.n}, nnz={A.nnz}")

    sym = Sympiler()

    # --- Cholesky: symbolic analysis + code generation happen here ---------
    chol = sym.compile_cholesky(A)
    print(f"applied transformations: {chol.applied_transformations}")
    print(f"predicted nnz(L) = {chol.factor_nnz}")
    print(f"compile-time cost breakdown [s]: {chol.timings.as_dict()}")

    # --- numeric phase: only numeric arrays are touched --------------------
    L = chol.factorize(A)
    err = np.abs(L.to_dense() - reference_cholesky(A)).max()
    print(f"factorization max abs error vs dense reference: {err:.2e}")

    # --- triangular solve with a sparse RHS ---------------------------------
    b = sparse_rhs(A.n, density=0.02, seed=7)
    tri = sym.compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
    print(
        f"triangular solve visits {tri.reach_size} of {L.n} columns "
        f"(reach-set pruning)"
    )
    x = tri.solve(L, b)
    err = np.abs(x - reference_trisolve(L, b)).max()
    print(f"triangular solve max abs error vs dense reference: {err:.2e}")

    # The generated source is ordinary Python, specialized to this pattern.
    first_lines = "\n".join(tri.source.splitlines()[:12])
    print("\n--- first lines of the generated solve kernel ---")
    print(first_lines)


if __name__ == "__main__":
    main()
