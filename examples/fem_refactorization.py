"""Repeated factorization of a FEM matrix with a fixed sparsity pattern.

A time-stepping simulation reassembles its stiffness/mass matrix every step
with new values on the same mesh (same sparsity).  This example compares, for
a sequence of such steps, the cost of

* the Eigen-like simplicial baseline (symbolic work re-done inside every
  numeric factorization), against
* Sympiler: one compile (symbolic analysis + code generation), then the
  generated numeric-only kernel per step.

Run with:  python examples/fem_refactorization.py
"""

import time

import numpy as np

from repro import Sympiler, fem_stencil_2d
from repro.baselines import eigen_like_numeric, eigen_like_symbolic
from repro.sparse.ordering import minimum_degree_ordering


def main() -> None:
    steps = 8
    A0 = fem_stencil_2d(22, 22, shift=0.3)
    perm = minimum_degree_ordering(A0)
    A0 = perm.symmetric_permute(A0)
    print(f"FEM matrix: n={A0.n}, nnz={A0.nnz}, time steps: {steps}")

    rng = np.random.default_rng(1)
    # Per-step matrices: same pattern, scaled values (e.g. varying material
    # coefficients / time-step sizes).
    matrices = []
    for _ in range(steps):
        Ak = A0.copy()
        Ak.data *= rng.uniform(0.8, 1.2)
        matrices.append(Ak)

    # --- Eigen-like baseline ------------------------------------------------
    t0 = time.perf_counter()
    symbolic = eigen_like_symbolic(A0)
    eigen_setup = time.perf_counter() - t0
    t0 = time.perf_counter()
    for Ak in matrices:
        eigen_like_numeric(Ak, symbolic)
    eigen_steps = time.perf_counter() - t0

    # --- Sympiler -----------------------------------------------------------
    t0 = time.perf_counter()
    sym = Sympiler()
    compiled = sym.compile_cholesky(A0)
    sympiler_setup = time.perf_counter() - t0
    t0 = time.perf_counter()
    factors = [compiled.factorize(Ak) for Ak in matrices]
    sympiler_steps = time.perf_counter() - t0

    print(f"Eigen-like : analyze {eigen_setup:.3f}s, {steps} factorizations {eigen_steps:.3f}s")
    print(
        f"Sympiler   : compile {sympiler_setup:.3f}s "
        f"(inspection+codegen), {steps} factorizations {sympiler_steps:.3f}s"
    )
    print(f"per-step numeric speedup over Eigen-like: {eigen_steps / sympiler_steps:.2f}x")

    # Sanity: the last factor reproduces the last matrix.
    L = factors[-1].to_dense()
    residual = np.abs(L @ L.T - _full(matrices[-1])).max()
    print(f"max abs reconstruction error of the last factor: {residual:.2e}")


def _full(A):
    dense = A.to_dense()
    return dense


if __name__ == "__main__":
    main()
