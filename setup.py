"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments without the ``wheel`` package (offline machines cannot fetch it
for PEP 517 builds); ``pip install -e .`` falls back to the legacy
``setup.py develop`` path in that case.
"""

from setuptools import setup

setup()
