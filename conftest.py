"""Pytest root configuration.

Ensures the in-tree ``src`` layout is importable even when the package has
not been installed (e.g. on offline machines where ``pip install -e .``
cannot fetch the ``wheel`` build dependency).  When the package *is*
installed, the installed copy wins only if it is not the in-tree one; putting
``src`` first keeps tests hermetic to this checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
