"""The batch execution engine: one compiled artifact, many value sets.

The registry artifacts are stateless with respect to numeric values — the
premise the whole compiler is built on — so one compiled kernel can serve an
arbitrary number of concurrent numeric executions.  :class:`BatchExecutor`
exploits that along three strategies, chosen per artifact:

``threads``
    C-backend artifacts: the generated shared object releases the GIL for
    the duration of the call (ctypes foreign calls always do) and its work
    buffers are ``_Thread_local``, so a pool of ``num_threads`` workers runs
    items truly concurrently.  Items are dealt to workers in contiguous
    chunks so pool overhead amortizes over the batch.
``wavefront``
    Wavefront-compiled C artifacts (``parallel="wavefront"`` options) on a
    batch *smaller* than the worker count: items run sequentially but each
    call spreads one kernel's level-set columns across the generated
    worker pool (within-kernel H-Level parallelism).  The items-vs-levels
    heuristic in :meth:`BatchExecutor.plan_batch` picks between this and
    ``threads``.
``stacked``
    Python-backend artifacts generated from a single simplicial loop: the
    whole batch executes as one vectorized stacked-array kernel
    (:mod:`repro.runtime.stacked`), amortizing interpreter overhead; each
    item's result is bitwise identical to a sequential call.
``serial``
    Everything else (and ``num_threads == 1``): a plain loop over the
    artifact's own entry point.

All strategies share two invariants: **deterministic result ordering**
(results land at their item's input index, whatever the completion order)
and **per-item error isolation** (a singular/indefinite item is reported in
:attr:`BatchResult.errors`; the other items complete normally).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen.c_backend import CGeneratedModule
from repro.observe import trace as observe_trace
from repro.runtime.stacked import stacked_factorize_for

__all__ = ["BatchExecutor", "BatchResult", "BatchItemError", "resolve_num_threads"]


def resolve_num_threads(num_threads: Optional[int]) -> int:
    """Normalize a thread-count knob to a concrete worker count.

    **This is the canonical thread-count precedence for every entry point**
    — ``repro.solve``, ``SparseLinearSolver.solve`` /
    ``solve_with_factors`` / ``solve_many`` / ``pcg``,
    ``FactorHandle.solve``, ``preconditioned_conjugate_gradient``, the
    batched runtime and the wavefront C entry (which mirrors this logic in
    generated code):

    1. an explicit ``num_threads=`` argument wins,
    2. when ``None``, the ``REPRO_NUM_THREADS`` environment variable applies
       (CI runners and the service container pin the count there without
       touching call sites),
    3. with neither, the caller's ``SympilerOptions.num_threads`` — or 1
       here, where no options are in scope.

    At any level, ``0`` means one per CPU.  The knob is runtime-only: it is
    excluded from cache fingerprints, so re-tuning it never recompiles.
    """
    if num_threads is None:
        env = os.environ.get("REPRO_NUM_THREADS")
        if env is None:
            return 1
        try:
            num_threads = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_NUM_THREADS must be an integer, got {env!r}"
            ) from None
    num_threads = int(num_threads)
    if num_threads < 0:
        raise ValueError("num_threads must be non-negative (0 means one per CPU)")
    if num_threads == 0:
        return os.cpu_count() or 1
    return num_threads


@dataclass(frozen=True)
class BatchItemError:
    """One failed batch item: its input index and the error it raised."""

    index: int
    error: Exception

    def __str__(self) -> str:
        return f"item {self.index}: {self.error}"


@dataclass
class BatchResult:
    """Outcome of one batch execution.

    ``results[i]`` is item ``i``'s output (``None`` when it failed); failures
    are listed in ``errors`` in item order.  ``mode`` records the strategy
    that actually ran (``"threads"``, ``"stacked"`` or ``"serial"``) — useful
    in benchmarks and tests, since strategy selection is per artifact.
    """

    results: List[Optional[object]]
    errors: List[BatchItemError] = field(default_factory=list)
    mode: str = "serial"
    num_threads: int = 1
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every item completed."""
        return not self.errors

    @property
    def n_items(self) -> int:
        """Number of items the batch ran."""
        return len(self.results)

    def raise_first(self) -> None:
        """Re-raise the first per-item error, if any."""
        if self.errors:
            raise self.errors[0].error

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class BatchExecutor:
    """Maps a compiled artifact's numeric entry point over a batch.

    Parameters
    ----------
    artifact:
        Any compiled artifact (factorization or triangular solve).
    num_threads:
        Worker threads for the C-backend path, ``0`` meaning one per CPU.
        Precedence: this argument, then the ``REPRO_NUM_THREADS``
        environment variable, then the artifact's compile options.  Callers
        holding the *requested* options should pass their value explicitly,
        since a cache hit may return an artifact compiled under a different
        (runtime-irrelevant) thread setting.
    """

    def __init__(self, artifact, *, num_threads: Optional[int] = None) -> None:
        self.artifact = artifact
        if num_threads is None and os.environ.get("REPRO_NUM_THREADS") is None:
            num_threads = getattr(artifact.options, "num_threads", 1)
        self.num_threads = resolve_num_threads(num_threads)
        self._is_c_backend = isinstance(artifact.module, CGeneratedModule)
        # The stacked strategy only exists for factorization kernels; skip
        # the AST walk entirely for other artifact kinds (triangular solves).
        self._stacked = (
            stacked_factorize_for(artifact)
            if not self._is_c_backend and hasattr(artifact, "factorize_arrays")
            else None
        )
        # Incremental batch assembly (submit/drain): value sets queued by
        # submit() accumulate here until the next drain() runs them as one
        # batch.  The serving layer's coalescer feeds requests in as they
        # arrive instead of materializing all-at-once lists.
        self._pending: List[np.ndarray] = []
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def schedule(self):
        """The artifact's compile-time level-set schedule (wavefronts)."""
        return self.artifact.schedule

    @property
    def mode(self) -> str:
        """The strategy batch calls will use for this artifact.

        For wavefront-capable artifacts this is the *large-batch* strategy
        (``"threads"``); a batch smaller than the worker count switches to
        within-kernel parallelism per :meth:`plan_batch`, and the strategy
        that actually ran is recorded in :attr:`BatchResult.mode`.
        """
        if self._is_c_backend and self.num_threads > 1:
            return "threads"
        if self._stacked is not None:
            return "stacked"
        return "serial"

    @property
    def wavefront_capable(self) -> bool:
        """Whether the artifact's entry takes a per-call thread count."""
        return bool(getattr(self.artifact, "accepts_num_threads", False))

    def plan_batch(self, n_items: int) -> Tuple[str, int]:
        """Choose a strategy and per-call thread count for one batch.

        The items-vs-levels heuristic: a batch with at least as many items
        as workers saturates the pool by threading *across* items — zero
        barrier overhead, so within-kernel threading is switched off for
        the calls (per-call thread count 1).  A smaller batch of
        wavefront-capable kernels would leave workers idle, so the threads
        go *inside* each kernel instead: items run sequentially and each
        call fans its level sets across ``num_threads`` workers.
        """
        if self._is_c_backend and self.num_threads > 1 and n_items > 0:
            if n_items >= self.num_threads or not self.wavefront_capable:
                return "threads", 1
            return "wavefront", self.num_threads
        if self._stacked is not None:
            return "stacked", 1
        return "serial", 1

    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        *,
        strategy: Optional[str] = None,
    ) -> BatchResult:
        """Apply ``fn`` to every item with isolation and stable ordering.

        Uses the thread pool in ``threads`` mode (``fn`` must release the GIL
        to benefit — the C-backend entry points do) and a sequential loop
        otherwise; the ``stacked`` strategy only applies to the structured
        ``factorize_batch`` entry, not to arbitrary callables.  ``strategy``
        overrides the artifact default — the structured batch entries pass
        the :meth:`plan_batch` choice through it (``"wavefront"`` runs items
        sequentially, the parallelism living inside each call).
        """
        items = list(items)
        start = time.perf_counter()
        results: List[Optional[object]] = [None] * len(items)
        errors: List[BatchItemError] = []

        # Thread pools do not propagate context variables, so the caller's
        # open trace span is captured here and re-attached inside each worker
        # — spans opened by ``fn`` in a pool thread join the submitting
        # call's trace instead of starting orphan traces.
        trace_ctx = observe_trace.capture()

        def run_range(lo: int, hi: int) -> List[BatchItemError]:
            local: List[BatchItemError] = []
            with observe_trace.attach(trace_ctx):
                for i in range(lo, hi):
                    try:
                        results[i] = fn(items[i])
                    except Exception as exc:  # per-item isolation
                        local.append(BatchItemError(index=i, error=exc))
            return local

        if strategy is None:
            strategy = (
                "threads"
                if self._is_c_backend and self.num_threads > 1 and len(items) > 0
                else "serial"
            )
        workers = 1
        if strategy == "threads":
            workers = min(self.num_threads, len(items))
            bounds = np.linspace(0, len(items), workers + 1).astype(int)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                chunks = [
                    pool.submit(run_range, int(bounds[w]), int(bounds[w + 1]))
                    for w in range(workers)
                ]
                for chunk in chunks:
                    errors.extend(chunk.result())
            errors.sort(key=lambda e: e.index)
            mode = "threads"
        else:
            errors.extend(run_range(0, len(items)))
            # Wavefront batches loop over items sequentially; the recorded
            # worker count is the *within-kernel* pool width.
            if strategy == "wavefront":
                workers = self.num_threads
            mode = strategy
        return BatchResult(
            results=results,
            errors=errors,
            mode=mode,
            num_threads=workers,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # Incremental mode: submit value sets one by one, drain as one batch.
    # ------------------------------------------------------------------ #
    def submit(self, values: np.ndarray) -> int:
        """Queue one value set for the next :meth:`drain`; returns its slot.

        The slot index is the item's position in the drained
        :class:`BatchResult` — stable because submissions append and drain
        atomically swaps the whole pending list.
        """
        values = np.asarray(values, dtype=np.float64)
        with self._pending_lock:
            self._pending.append(values)
            return len(self._pending) - 1

    @property
    def pending_count(self) -> int:
        """Number of value sets queued for the next drain."""
        with self._pending_lock:
            return len(self._pending)

    def drain(self, Ap: np.ndarray, Ai: np.ndarray) -> BatchResult:
        """Run every pending value set as one factorization batch.

        Atomically takes the pending list (submissions racing with the swap
        land in the *next* batch) and dispatches it through
        :meth:`factorize_batch`; an empty queue returns an empty result.
        """
        with self._pending_lock:
            pending, self._pending = self._pending, []
        if not pending:
            return BatchResult(results=[], mode=self.mode, num_threads=1)
        return self.factorize_batch(Ap, Ai, pending)

    # ------------------------------------------------------------------ #
    def factorize_batch(
        self, Ap: np.ndarray, Ai: np.ndarray, values: Sequence[np.ndarray] | np.ndarray
    ) -> BatchResult:
        """Run the factorization entry over a batch of value arrays.

        ``values`` is a sequence of per-item ``Ax`` arrays (or a ``(batch,
        nnz)`` array) on the compile-time pattern ``(Ap, Ai)``.  Returns the
        raw kernel outputs per item (``Lx``, ``(Lx, D)`` or ``(Lx, Ux)``
        depending on the kernel) — pass them through the artifact's
        ``assemble_factors`` for factor objects.
        """
        value_list = [np.asarray(v, dtype=np.float64) for v in values]
        nnz = int(Ap[-1])
        for i, v in enumerate(value_list):
            if v.shape != (nnz,):
                raise ValueError(
                    f"value set {i} has shape {v.shape}, expected ({nnz},) "
                    "matching the compile-time pattern"
                )
        strategy, per_call_threads = self.plan_batch(len(value_list))
        if strategy == "stacked" and value_list:
            return self._factorize_stacked(Ap, Ai, value_list)
        entry = self.artifact.factorize_arrays
        return self.map(
            lambda ax: entry(Ap, Ai, ax, num_threads=per_call_threads),
            value_list,
            strategy=strategy if value_list else None,
        )

    def _factorize_stacked(
        self, Ap: np.ndarray, Ai: np.ndarray, value_list: List[np.ndarray]
    ) -> BatchResult:
        start = time.perf_counter()
        AxB = np.stack(value_list, axis=0)
        outputs, failures = self._stacked(Ap, Ai, AxB)
        results: List[Optional[object]] = list(outputs)
        errors = [
            BatchItemError(index=f.index, error=ValueError(f.message))
            for f in failures
        ]
        for err in errors:
            results[err.index] = None
        return BatchResult(
            results=results,
            errors=errors,
            mode="stacked",
            num_threads=1,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    def solve_batch(
        self,
        Lp: np.ndarray,
        Li: np.ndarray,
        Lx: np.ndarray,
        B: Sequence[np.ndarray] | np.ndarray,
    ) -> BatchResult:
        """Run a triangular-solve entry over many right-hand sides.

        ``B`` is a sequence of RHS vectors (or a ``(batch, n)`` array); the
        factor value array ``Lx`` is shared by every item.  Requires a
        triangular-solve artifact (one exposing ``solve_arrays``).
        """
        entry = getattr(self.artifact, "solve_arrays", None)
        if entry is None:
            raise TypeError(
                "solve_batch requires a triangular-solve artifact (exposing "
                f"solve_arrays); got {type(self.artifact).__name__}"
            )
        rhs_list = [np.asarray(b, dtype=np.float64) for b in B]
        strategy, per_call_threads = self.plan_batch(len(rhs_list))
        if strategy == "stacked":
            # Stacked execution only exists for factorizations; RHS batches
            # on python-backend artifacts run the plain sequential loop.
            strategy, per_call_threads = "serial", 1
        return self.map(
            lambda b: entry(Lp, Li, Lx, b, num_threads=per_call_threads),
            rhs_list,
            strategy=strategy if rhs_list else None,
        )
