"""The batched/parallel numeric runtime.

Turns one compiled artifact into many concurrent numeric executions:

* :mod:`repro.runtime.levels` — level-set (wavefront) schedules computed by
  the symbolic inspectors at compile time and cached with the artifact
  (:class:`ExecutionSchedule`).
* :mod:`repro.runtime.engine` — :class:`BatchExecutor`, mapping
  ``factorize_arrays``/``solve_arrays`` over a batch of value sets: a thread
  pool for the C backend (the generated ``.so`` releases the GIL and its work
  buffers are thread-local), a vectorized stacked-array path for the python
  backend, a sequential fallback everywhere else — always with per-item
  error isolation and deterministic result ordering.
* :mod:`repro.runtime.facade` — :class:`BatchedSolver`, the user-facing
  wrapper over :class:`~repro.solvers.linear_solver.SparseLinearSolver` with
  ``factorize_batch`` / ``solve_many``.

``levels`` is a leaf module (the symbolic inspectors import it); the engine
and facade sit on top of the compiler and solver layers, so this package
re-exports them *lazily* — importing ``repro.runtime.levels`` from the
symbolic layer never drags the execution engine (and hence the compiler) in.
"""

from __future__ import annotations

from repro.runtime.levels import (
    ExecutionSchedule,
    dependency_graph_from_column_deps,
    level_sets_from_column_deps,
    level_sets_from_dependency_graph,
    level_sets_from_parent,
    schedule_from_level_array,
)

__all__ = [
    "ExecutionSchedule",
    "schedule_from_level_array",
    "level_sets_from_parent",
    "level_sets_from_dependency_graph",
    "level_sets_from_column_deps",
    "dependency_graph_from_column_deps",
    "BatchExecutor",
    "BatchResult",
    "BatchItemError",
    "resolve_num_threads",
    "BatchedSolver",
    "FactorHandle",
]

_LAZY = {
    "BatchExecutor": "repro.runtime.engine",
    "BatchResult": "repro.runtime.engine",
    "BatchItemError": "repro.runtime.engine",
    "resolve_num_threads": "repro.runtime.engine",
    "BatchedSolver": "repro.runtime.facade",
    "FactorHandle": "repro.runtime.facade",
}


def __getattr__(name: str):
    """PEP 562 lazy re-export of the engine/facade layers."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
