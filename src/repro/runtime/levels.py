"""Level-set (wavefront) schedules over compiled-kernel dependency structure.

A left-looking sparse kernel executes one column at a time, but its true
ordering constraint is only the column dependency DAG: column ``j`` must wait
for exactly the columns whose values it consumes.  Partitioning the DAG into
*level sets* (wavefronts) — level 0 holds the columns with no dependencies,
level ``l`` the columns all of whose dependencies live in levels ``< l`` —
yields a schedule whose levels are antichains: every column inside one level
may execute concurrently.

This module computes those partitions from the symbolic structures the
inspectors already produce:

* the dependence graph DG_L of a triangular factor
  (:class:`repro.symbolic.dependency_graph.DependencyGraph`),
* the elimination tree (``parent`` vector) — a conservative wavefront for the
  factorizations, since ``L[j, k] != 0`` implies ``j`` is an etree ancestor
  of ``k``,
* exact per-column dependency lists (the Cholesky/LDLᵀ row patterns, the LU
  above-diagonal ``U`` patterns).

The inspectors attach the resulting :class:`ExecutionSchedule` to their
inspection results at compile time, so it is cached under the same pattern
fingerprint as the generated code and costs nothing on the numeric path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.observe.trace import span
from repro.symbolic.dependency_graph import DependencyGraph

__all__ = [
    "ExecutionSchedule",
    "schedule_from_level_array",
    "level_sets_from_parent",
    "level_sets_from_dependency_graph",
    "level_sets_from_column_deps",
    "dependency_graph_from_column_deps",
]


@dataclass(frozen=True)
class ExecutionSchedule:
    """A level-set partition of the columns of one compiled kernel.

    Attributes
    ----------
    n:
        Number of vertices (columns) of the underlying kernel.  Vertices
        outside the schedule (e.g. columns pruned from a sparse-RHS
        triangular solve) simply appear in no level.
    order:
        Every scheduled vertex, level by level (ascending vertex order inside
        each level — a deterministic, valid sequential execution order).
    level_ptr:
        CSR-style level boundaries: level ``l`` is
        ``order[level_ptr[l]:level_ptr[l + 1]]``.
    graph:
        Human-readable name of the dependency structure the schedule was
        computed on (``"DG_L"``, ``"etree"``, ``"SP(L row)"``, ...).
    """

    n: int
    order: np.ndarray
    level_ptr: np.ndarray
    graph: str = ""

    # ------------------------------------------------------------------ #
    @property
    def n_levels(self) -> int:
        """Number of wavefronts (the critical-path length in columns)."""
        return int(self.level_ptr.size - 1)

    @property
    def n_scheduled(self) -> int:
        """Number of vertices the schedule covers."""
        return int(self.order.size)

    @property
    def widths(self) -> np.ndarray:
        """Vertices per level."""
        return np.diff(self.level_ptr)

    @property
    def max_width(self) -> int:
        """Widest wavefront (peak exploitable parallelism)."""
        return int(self.widths.max()) if self.n_levels else 0

    @property
    def average_width(self) -> float:
        """Mean wavefront width (average exploitable parallelism)."""
        return self.n_scheduled / self.n_levels if self.n_levels else 0.0

    def level(self, l: int) -> np.ndarray:
        """The vertices of level ``l``."""
        if not (0 <= l < self.n_levels):
            raise IndexError(f"level {l} out of range [0, {self.n_levels})")
        return self.order[self.level_ptr[l] : self.level_ptr[l + 1]]

    def levels(self) -> List[np.ndarray]:
        """Every level as a list of index arrays."""
        return [self.level(l) for l in range(self.n_levels)]

    def as_order(self) -> np.ndarray:
        """The concatenated levels — a valid sequential execution order."""
        return self.order

    def level_of(self) -> np.ndarray:
        """Per-vertex level (``-1`` for vertices outside the schedule)."""
        level = np.full(self.n, -1, dtype=np.int64)
        for l in range(self.n_levels):
            level[self.level(l)] = l
        return level

    # ------------------------------------------------------------------ #
    def validate_against(self, graph: DependencyGraph) -> bool:
        """True when the schedule is a legal wavefront partition of ``graph``.

        Checks the two defining properties: every level is an antichain of
        the dependency graph (no edge between two members of one level), and
        the concatenation of the levels is a valid topological order.
        """
        level = self.level_of()
        for j in self.order:
            for i in graph.out_neighbors(int(j)):
                i = int(i)
                if level[i] >= 0 and level[i] == level[j]:
                    return False  # intra-level edge: not an antichain
        return graph.is_valid_topological_order(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExecutionSchedule(n={self.n}, levels={self.n_levels}, "
            f"avg_width={self.average_width:.1f}, graph={self.graph!r})"
        )


# --------------------------------------------------------------------------- #
# Constructors
# --------------------------------------------------------------------------- #
def schedule_from_level_array(
    level: np.ndarray, *, graph: str = "", active: Optional[np.ndarray] = None
) -> ExecutionSchedule:
    """Bucket a per-vertex level assignment into an :class:`ExecutionSchedule`.

    ``level[j]`` is vertex ``j``'s wavefront; ``active`` optionally restricts
    the schedule to a subset of vertices (e.g. a triangular-solve reach-set) —
    inactive vertices appear in no level.  Empty levels (possible after
    restriction) are squeezed out, and vertices inside a level are sorted, so
    equal inputs always produce the identical schedule.
    """
    level = np.asarray(level, dtype=np.int64)
    n = int(level.size)
    if active is None:
        vertices = np.arange(n, dtype=np.int64)
    else:
        vertices = np.unique(np.asarray(active, dtype=np.int64))
    lv = level[vertices]
    # Stable sort by (level, vertex): levels stay contiguous, members sorted.
    perm = np.lexsort((vertices, lv))
    order = vertices[perm]
    if order.size == 0:
        # No scheduled vertices means no levels (not one empty level).
        return ExecutionSchedule(
            n=n, order=order, level_ptr=np.zeros(1, dtype=np.int64), graph=graph
        )
    sorted_levels = lv[perm]
    boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
    level_ptr = np.concatenate(
        ([0], boundaries, [order.size])
    ).astype(np.int64)
    return ExecutionSchedule(n=n, order=order, level_ptr=level_ptr, graph=graph)


def level_sets_from_parent(parent: np.ndarray, *, graph: str = "etree") -> ExecutionSchedule:
    """Wavefronts of an elimination tree (leaves first).

    ``level[j] = 1 + max(level of children of j)`` — a conservative schedule
    for the left-looking factorizations, valid because every update source
    ``k`` of column ``j`` (``L[j, k] != 0``) has ``j`` as a proper etree
    ancestor, hence a strictly smaller level.
    """
    with span("schedule", graph=graph):
        parent = np.asarray(parent, dtype=np.int64)
        n = parent.size
        level = np.zeros(n, dtype=np.int64)
        for j in range(n):  # parent[j] > j, so children are processed first
            p = parent[j]
            if p >= 0:
                level[p] = max(level[p], level[j] + 1)
        return schedule_from_level_array(level, graph=graph)


def level_sets_from_dependency_graph(
    dg: DependencyGraph, *, active: Optional[np.ndarray] = None, graph: str = "DG_L"
) -> ExecutionSchedule:
    """Wavefronts of a column dependence graph DG_L.

    Edges run ``j → i`` with ``i > j`` (``x_i`` needs ``x_j``), so one
    ascending pass computes the longest-path level of every vertex.  With
    ``active`` (e.g. a reach-set) the levels are computed on the *induced
    subgraph*: dependencies through pruned columns never execute, so they do
    not constrain the schedule.
    """
    with span("schedule", graph=graph):
        n = dg.n
        level = np.zeros(n, dtype=np.int64)
        if active is None:
            for j in range(n):
                lj = level[j] + 1
                for i in dg.out_neighbors(j):
                    if level[i] < lj:
                        level[i] = lj
            return schedule_from_level_array(level, graph=graph)
        active = np.unique(np.asarray(active, dtype=np.int64))
        is_active = np.zeros(n, dtype=bool)
        is_active[active] = True
        for j in active:  # ascending, edges only point upward
            lj = level[j] + 1
            for i in dg.out_neighbors(int(j)):
                if is_active[i] and level[i] < lj:
                    level[i] = lj
        return schedule_from_level_array(level, graph=graph, active=active)


def level_sets_from_column_deps(
    deps: Sequence[np.ndarray], *, graph: str = "column-deps"
) -> ExecutionSchedule:
    """Wavefronts from exact per-column dependency lists.

    ``deps[j]`` holds the columns ``k < j`` whose values column ``j``
    consumes — the Cholesky/LDLᵀ row patterns (``L[j, k] != 0``) or the LU
    above-diagonal ``U`` patterns (``U[k, j] != 0``).  Exact lists give the
    tightest (shallowest) schedule the kernel admits.
    """
    with span("schedule", graph=graph):
        n = len(deps)
        level = np.zeros(n, dtype=np.int64)
        for j in range(n):
            dj = deps[j]
            if len(dj):
                level[j] = int(level[np.asarray(dj, dtype=np.int64)].max()) + 1
        return schedule_from_level_array(level, graph=graph)


def dependency_graph_from_column_deps(
    n: int, deps: Sequence[np.ndarray]
) -> DependencyGraph:
    """The :class:`DependencyGraph` with an edge ``k → j`` per ``k ∈ deps[j]``.

    Lets a schedule built from exact dependency lists be validated with the
    same antichain/topological-order machinery as DG_L (used by the
    test-suite for the LU schedule, whose dependency structure is the ``U``
    pattern rather than the ``L`` pattern).
    """
    out_lists: List[List[int]] = [[] for _ in range(n)]
    for j in range(n):
        for k in deps[j]:
            out_lists[int(k)].append(j)
    indptr = np.zeros(n + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    for k in range(n):
        targets = np.asarray(sorted(out_lists[k]), dtype=np.int64)
        chunks.append(targets)
        indptr[k + 1] = indptr[k] + targets.size
    indices = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    return DependencyGraph(n, indptr, indices)
