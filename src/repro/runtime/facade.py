"""The user facade of the batched runtime: :class:`BatchedSolver`.

Wraps :class:`~repro.solvers.linear_solver.SparseLinearSolver` — one
ordering, one compiled factorization, one pair of compiled triangular
solves — and turns it into a multi-scenario engine:

* :meth:`BatchedSolver.factorize_batch` factorizes many value sets sharing
  the solver's pattern concurrently (parameter sweeps, ensemble solves) and
  returns one :class:`FactorHandle` per item,
* :meth:`FactorHandle.solve` solves against any handle's factors with the
  shared compiled triangular kernels,
* :meth:`BatchedSolver.solve_many` solves many right-hand sides against the
  solver's current factorization.

Per-item error isolation carries through: a singular/indefinite scenario
produces a failed handle (its error preserved verbatim) while the remaining
scenarios complete, and results always come back in input order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.runtime.engine import BatchExecutor, BatchResult
from repro.solvers.linear_solver import SparseLinearSolver, backward_factor
from repro.sparse.csc import CSCMatrix

__all__ = ["BatchedSolver", "FactorHandle"]


@dataclass
class FactorHandle:
    """One batch item's factorization: either factors or a preserved error.

    Factor assembly (CSC wrapping, the reversed backward operand) is lazy —
    computed on first :meth:`solve` — so batch throughput measurements see
    only the numeric kernel cost, and unused handles cost nothing beyond
    their raw output arrays.
    """

    index: int
    _solver: SparseLinearSolver = field(repr=False)
    _raw: Optional[object] = field(default=None, repr=False)
    error: Optional[Exception] = None
    _factors: Optional[object] = field(default=None, repr=False)
    _Lt: Optional[CSCMatrix] = field(default=None, repr=False)
    #: Shared per-batch builder of the backward operand (a precomputed
    #: gather); ``None`` falls back to the full symbolic construction.
    _backward_builder: Optional[object] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """True when this item factorized successfully."""
        return self.error is None

    def _require_ok(self) -> None:
        if self.error is not None:
            raise RuntimeError(
                f"batch item {self.index} failed to factorize"
            ) from self.error

    @property
    def factors(self):
        """The assembled factor object (``L``, ``(L, d)`` or ``(L, U)``)."""
        self._require_ok()
        if self._factors is None:
            self._factors = self._solver._factorization.assemble_factors(self._raw)
        return self._factors

    @property
    def L(self) -> CSCMatrix:
        """The (unit) lower-triangular factor of this item."""
        factors = self.factors
        return getattr(factors, "L", factors)

    @property
    def d(self) -> Optional[np.ndarray]:
        """The LDLᵀ pivot vector (``None`` for the other methods)."""
        return getattr(self.factors, "d", None)

    @property
    def U(self) -> Optional[CSCMatrix]:
        """The upper-triangular LU factor (``None`` for symmetric methods)."""
        return getattr(self.factors, "U", None)

    def solve(
        self,
        b: np.ndarray,
        *,
        out: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
    ) -> np.ndarray:
        """Solve this scenario's system ``A_i x = b``.

        ``out`` optionally receives the solution in place (zero-copy dispatch
        for the serving layer, which solves whole coalesced batches into one
        preallocated response block).  ``num_threads`` fans each triangular
        sweep's level sets across workers when the solver's trisolves were
        compiled in wavefront mode (serial kernels ignore it).
        """
        self._require_ok()
        if self._Lt is None:
            if self._backward_builder is not None:
                self._Lt = self._backward_builder(self)
            else:
                self._Lt = backward_factor(self.L, self.U)
        return self._solver.solve_with_factors(
            b, L=self.L, d=self.d, Lt=self._Lt, out=out, num_threads=num_threads
        )


class BatchedSolver:
    """Factor-once / solve-many, over many value sets at once.

    Parameters mirror :class:`SparseLinearSolver` (the wrapped solver is
    exposed as :attr:`solver`); ``num_threads`` additionally sizes the
    numeric thread pool, defaulting to ``options.num_threads``.

    Examples
    --------
    >>> from repro.sparse import laplacian_2d
    >>> import numpy as np
    >>> A = laplacian_2d(8)
    >>> batched = BatchedSolver(A)
    >>> scenarios = [A.with_values(A.data * s) for s in (1.0, 2.0, 4.0)]
    >>> handles = batched.factorize_batch(scenarios)
    >>> xs = [h.solve(np.ones(A.n)) for h in handles]
    >>> all(np.isfinite(x).all() for x in xs)
    True
    """

    def __init__(
        self,
        A: CSCMatrix,
        *,
        method: str = "cholesky",
        ordering: str = "mindeg",
        options: Optional[SympilerOptions] = None,
        num_threads: Optional[int] = None,
    ) -> None:
        self.solver = SparseLinearSolver(
            A, method=method, ordering=ordering, options=options
        )
        if num_threads is None:
            # Resolve from the *requested* options: a shared-cache hit may
            # return an artifact compiled under another thread setting
            # (num_threads is excluded from the cache identity on purpose).
            num_threads = self.solver.options.num_threads
        self.executor = BatchExecutor(
            self.solver._factorization, num_threads=num_threads
        )
        # Gather indices mapping input-order values to permuted-pattern order
        # (computed once by permuting an index-valued probe matrix), so the
        # per-scenario hot path is a single fancy-indexing gather instead of
        # a full symbolic symmetric_permute per item.
        probe = self.solver.A.with_values(
            np.arange(self.solver.A.nnz, dtype=np.float64)
        )
        self._value_permutation = (
            self.solver.permutation.symmetric_permute(probe).data.astype(np.int64)
        )
        #: Lazy (pattern, gather, source) template for per-handle backward
        #: operands — see :meth:`_handle_backward`.
        self._backward_template = None
        self.last_result: Optional[BatchResult] = None
        self.batch_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def A(self) -> CSCMatrix:
        """The pattern-defining input matrix."""
        return self.solver.A

    @property
    def method(self) -> str:
        """The factorization kernel name."""
        return self.solver.method

    @property
    def num_threads(self) -> int:
        """Resolved worker-thread count of the numeric engine."""
        return self.executor.num_threads

    @property
    def mode(self) -> str:
        """The large-batch strategy for this artifact (threads/stacked/serial).

        Wavefront-capable artifacts switch to within-kernel parallelism on
        batches smaller than the pool — see ``executor.plan_batch``; the
        strategy that actually ran is in ``last_result.mode``.
        """
        return self.executor.mode

    @property
    def parallel_mode(self) -> str:
        """Within-kernel mode the factorization was compiled in.

        ``"wavefront"`` when the compiled entry fans each level set across a
        worker pool, ``"serial-fallback"`` when wavefront codegen was
        requested but declined (deep etree, supernodal kernel), ``"none"``
        for plain serial artifacts.
        """
        return self.executor.artifact.parallel_mode

    @property
    def schedule(self):
        """The compile-time level-set schedule of the factorization."""
        return self.executor.schedule

    # ------------------------------------------------------------------ #
    def _batch_values(
        self,
        scenarios: Union[Sequence[CSCMatrix], np.ndarray],
        *,
        permuted_values: bool = False,
    ) -> List[np.ndarray]:
        """Per-item value arrays on the solver's *permuted* pattern.

        Accepts same-pattern matrices (permuted internally via the
        precomputed gather) or — only with an explicit ``permuted_values=True``
        — a ``(batch, nnz)`` array already in permuted-pattern order.  The
        flag is mandatory for raw arrays because a shape check cannot tell
        permuted from unpermuted values, and interpreting unpermuted data in
        permuted positions would silently factorize a scrambled matrix.

        Scenario items may be anything the front-end ingest layer accepts
        (``scipy.sparse`` matrices, COO triplet tuples, dense arrays);
        :class:`CSCMatrix` items pass through untouched — same objects, same
        bits as before the ingest layer existed.
        """
        if isinstance(scenarios, np.ndarray):
            if not permuted_values:
                raise ValueError(
                    "raw value arrays are interpreted in the solver's "
                    "*permuted* pattern order, which cannot be validated from "
                    "their shape; pass permuted_values=True to confirm, or "
                    "pass same-pattern CSCMatrix scenarios to let the solver "
                    "permute them"
                )
            values = np.asarray(scenarios, dtype=np.float64)
            if values.ndim != 2 or values.shape[1] != self.solver.A_permuted.nnz:
                raise ValueError(
                    "a value-array batch must have shape (batch, nnz) on the "
                    "solver's permuted pattern"
                )
            return [values[i] for i in range(values.shape[0])]
        value_list: List[np.ndarray] = []
        for i, M in enumerate(scenarios):
            if not isinstance(M, CSCMatrix):
                from repro.frontend.ingest import as_csc

                M = as_csc(M)
            if not M.pattern_equal(self.solver.A):
                raise ValueError(
                    f"scenario {i} does not share the solver's sparsity pattern"
                )
            value_list.append(M.data[self._value_permutation])
        return value_list

    def factorize_batch(
        self,
        scenarios: Union[Sequence[CSCMatrix], np.ndarray],
        *,
        permuted_values: bool = False,
    ) -> List[FactorHandle]:
        """Factorize every scenario concurrently; one handle per scenario.

        Each handle's factors are bitwise identical to what a sequential
        ``solver.factorize(scenario)`` computes with the same compiled
        kernel.  Failed scenarios yield handles with ``ok == False`` whose
        ``error`` preserves the kernel's exception; the rest are unaffected.
        ``permuted_values`` must be set to pass a raw ``(batch, nnz)`` value
        array instead of matrices (see :meth:`_batch_values`).
        """
        value_list = self._batch_values(scenarios, permuted_values=permuted_values)
        permuted = self.solver.A_permuted
        start = time.perf_counter()
        result = self.executor.factorize_batch(
            permuted.indptr, permuted.indices, value_list
        )
        self.batch_seconds = time.perf_counter() - start
        self.last_result = result
        return self.handles_from_result(result)

    def handles_from_result(self, result: BatchResult) -> List[FactorHandle]:
        """Wrap a raw :class:`BatchResult` into per-item factor handles."""
        error_by_index = {e.index: e.error for e in result.errors}
        return [
            FactorHandle(
                index=i,
                _solver=self.solver,
                _raw=raw,
                error=error_by_index.get(i),
                _backward_builder=self._handle_backward,
            )
            for i, raw in enumerate(result.results)
        ]

    # ------------------------------------------------------------------ #
    # Incremental mode: the serving layer feeds scenarios in one at a time
    # (as requests arrive) and drains them as one coalesced batch.
    # ------------------------------------------------------------------ #
    def permute_values(self, values: np.ndarray) -> np.ndarray:
        """Map input-order pattern values into permuted-pattern order.

        One fancy-indexing gather through the precomputed permutation — the
        per-request hot path of the serving layer.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.solver.A.nnz,):
            raise ValueError(
                f"values must have shape ({self.solver.A.nnz},) matching the "
                "registered pattern's nonzero count"
            )
        return values[self._value_permutation]

    def submit_values(self, values: np.ndarray, *, permuted: bool = False) -> int:
        """Queue one value set for the next :meth:`drain`; returns its slot."""
        values = np.asarray(values, dtype=np.float64)
        if not permuted:
            values = self.permute_values(values)
        elif values.shape != (self.solver.A_permuted.nnz,):
            raise ValueError(
                f"permuted values must have shape ({self.solver.A_permuted.nnz},)"
            )
        return self.executor.submit(values)

    def drain(self) -> List[FactorHandle]:
        """Factorize every submitted value set as one batch; handles per item."""
        permuted = self.solver.A_permuted
        start = time.perf_counter()
        result = self.executor.drain(permuted.indptr, permuted.indices)
        self.batch_seconds = time.perf_counter() - start
        self.last_result = result
        return self.handles_from_result(result)

    def _handle_backward(self, handle: FactorHandle) -> CSCMatrix:
        """The backward operand of one handle, via a precomputed gather.

        The backward *pattern* (the reversed transpose of ``L``, or of ``U``
        for LU) is fixed per solver, so the symbolic transpose + permutation
        runs once — on an index-valued probe — and every handle's operand is
        a single fancy-indexing gather of its own factor values.
        """
        if self._backward_template is None:
            s = self.solver
            if s.U is not None:
                probe = backward_factor(
                    s.L, s.U.with_values(np.arange(s.U.nnz, dtype=np.float64))
                )
                source = "U"
            else:
                probe = backward_factor(
                    s.L.with_values(np.arange(s.L.nnz, dtype=np.float64))
                )
                source = "L"
            self._backward_template = (probe, probe.data.astype(np.int64), source)
        pattern, gather, source = self._backward_template
        src = handle.U if source == "U" else handle.L
        return pattern.with_values(src.data[gather])

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """Solve ``A X = B`` (multi-RHS) on the current factorization."""
        return self.solver.solve_many(B, num_threads=self.executor.num_threads)
