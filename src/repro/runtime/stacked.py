"""Vectorized stacked-array execution of simplicial factorization kernels.

The python backend's generated simplicial kernels are a fixed sequence of
elementwise NumPy operations over positions resolved at compile time.  For a
*batch* of value sets sharing one pattern, the identical sequence can be
executed once with a leading batch axis — every slice update becomes a
``(batch, len)`` operation — which amortizes the Python interpreter overhead
of the column loop over the whole batch.

Because every operation is elementwise along the batch axis and the per-item
operation order is exactly the sequence the generated sequential code
performs, each item's result is **bitwise identical** to a sequential
``factorize_arrays`` call (asserted by the test-suite and the ``batched``
bench experiment).

Per-item error isolation: a bad pivot does not abort the batch.  The failing
item is masked (its pivot is replaced by 1.0 so the remaining lanes keep
computing unchanged), recorded with the same error message the sequential
kernel raises, and reported per item by the engine; the masked lanes'
outputs are discarded.

The stacked path mirrors the descriptor arrays embedded in the transformed
AST (:class:`~repro.compiler.ast.SimplicialCholeskyLoop`), so it applies
exactly when the artifact was generated from a single simplicial loop (no
supernodal/VS-Block body); the engine falls back to sequential execution
otherwise.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.compiler.ast import (
    IncompleteFactorLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    walk,
)

__all__ = ["stacked_factorize_for", "StackedFailure"]


class StackedFailure:
    """Per-item failure record of a stacked run (index + sequential message)."""

    __slots__ = ("index", "message")

    def __init__(self, index: int, message: str) -> None:
        self.index = int(index)
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StackedFailure(index={self.index}, message={self.message!r})"


def _simplicial_loop(artifact) -> Optional[SimplicialCholeskyLoop | IncompleteFactorLoop]:
    """The single column-at-a-time loop of the artifact's kernel, or ``None``.

    Covers the simplicial complete factorizations *and* the no-fill
    incomplete ones (IC(0)/ILU(0)), whose generated code is likewise a fixed
    sequence of elementwise slice operations.  ``None`` when the kernel is
    supernodal (VS-Block participated) or has no factorization loop at all —
    the engine then uses sequential execution.
    """
    nodes = list(walk(artifact.kernel.body))
    if any(isinstance(node, SupernodalCholeskyLoop) for node in nodes):
        return None
    loops = [
        node
        for node in nodes
        if isinstance(node, (SimplicialCholeskyLoop, IncompleteFactorLoop))
    ]
    return loops[0] if len(loops) == 1 else None


def stacked_factorize_for(artifact) -> Optional[Callable]:
    """A stacked batch entry mirroring ``artifact``'s generated kernel.

    Returns ``None`` when the artifact's kernel shape has no stacked
    implementation.  The returned callable has signature
    ``(Ap, Ai, AxB) -> (outputs, failures)`` where ``AxB`` is a
    ``(batch, nnz)`` array of value sets, ``outputs`` is a list with one raw
    kernel output per item (same shape ``factorize_arrays`` returns) and
    ``failures`` lists :class:`StackedFailure` records for masked items.
    """
    loop = _simplicial_loop(artifact)
    if loop is None:
        return None
    impl = _STACKED_IMPLS.get(loop.factor_kind)
    if impl is None:  # pragma: no cover - every simplicial kind is covered
        return None

    def entry(Ap, Ai, AxB):
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        AxB = np.ascontiguousarray(AxB, dtype=np.float64)
        with np.errstate(all="ignore"):
            # Masked (failed) lanes keep computing on garbage values; the
            # errstate guard silences their overflow/invalid warnings without
            # changing any lane's arithmetic.
            return impl(loop, Ai, AxB)

    return entry


# --------------------------------------------------------------------------- #
# Stacked kernels (one per simplicial factor kind)
# --------------------------------------------------------------------------- #
def _mask_bad_pivots(
    d: np.ndarray,
    bad_now: np.ndarray,
    failed: np.ndarray,
    fail_col: np.ndarray,
    j: int,
) -> None:
    """Record first-failure columns and neutralize pivots of failed lanes."""
    new = bad_now & ~failed
    if new.any():
        failed |= new
        fail_col[new] = j
    if failed.any():
        d[failed] = 1.0


def _failures(
    failed: np.ndarray, fail_col: np.ndarray, template: str
) -> List[StackedFailure]:
    return [
        StackedFailure(b, template % int(fail_col[b]))
        for b in np.nonzero(failed)[0]
    ]


def _stacked_llt(
    loop: SimplicialCholeskyLoop, Ai: np.ndarray, AxB: np.ndarray
) -> Tuple[list, List[StackedFailure]]:
    batch = AxB.shape[0]
    n = loop.n
    Lp, Li = loop.l_indptr, loop.l_indices
    pp, up, ue = loop.prune_ptr, loop.update_pos, loop.update_end
    a0s, a1s = loop.a_diag_pos, loop.a_col_end
    Lx = np.zeros((batch, int(Lp[-1])))
    f = np.zeros((batch, n))
    failed = np.zeros(batch, dtype=bool)
    fail_col = np.full(batch, -1, dtype=np.int64)
    for j in range(n):
        a0, a1 = a0s[j], a1s[j]
        f[:, Ai[a0:a1]] = AxB[:, a0:a1]
        for t in range(pp[j], pp[j + 1]):
            ps, pe = up[t], ue[t]
            ljk = Lx[:, ps]
            f[:, Li[ps:pe]] -= Lx[:, ps:pe] * ljk[:, None]
        lp0, lp1 = Lp[j], Lp[j + 1]
        d = f[:, j].copy()
        # Same predicate as the generated python kernel (`if d <= 0.0`).
        _mask_bad_pivots(d, d <= 0.0, failed, fail_col, j)
        # np.sqrt, not ** 0.5: the generated kernel uses the same ufunc, whose
        # scalar and array paths agree bitwise (scalar ** 0.5 would take libm
        # pow and drift by 1 ULP).
        ljj = np.sqrt(d)
        Lx[:, lp0] = ljj
        Lx[:, lp0 + 1 : lp1] = f[:, Li[lp0 + 1 : lp1]] / ljj[:, None]
        f[:, Li[lp0:lp1]] = 0.0
    # Copies, not row views: a retained handle must own only its item's
    # factor, not (via .base) the whole stacked batch array.
    outputs = [Lx[b].copy() for b in range(batch)]
    return outputs, _failures(failed, fail_col, "matrix is not positive definite at column %d")


def _stacked_ldlt(
    loop: SimplicialCholeskyLoop, Ai: np.ndarray, AxB: np.ndarray
) -> Tuple[list, List[StackedFailure]]:
    batch = AxB.shape[0]
    n = loop.n
    Lp, Li = loop.l_indptr, loop.l_indices
    pp, up, ue, uc = loop.prune_ptr, loop.update_pos, loop.update_end, loop.update_col
    a0s, a1s = loop.a_diag_pos, loop.a_col_end
    Lx = np.zeros((batch, int(Lp[-1])))
    D = np.empty((batch, n))
    f = np.zeros((batch, n))
    failed = np.zeros(batch, dtype=bool)
    fail_col = np.full(batch, -1, dtype=np.int64)
    for j in range(n):
        a0, a1 = a0s[j], a1s[j]
        f[:, Ai[a0:a1]] = AxB[:, a0:a1]
        for t in range(pp[j], pp[j + 1]):
            ps, pe = up[t], ue[t]
            ljk = Lx[:, ps] * D[:, uc[t]]
            f[:, Li[ps:pe]] -= Lx[:, ps:pe] * ljk[:, None]
        lp0, lp1 = Lp[j], Lp[j + 1]
        d = f[:, j].copy()
        _mask_bad_pivots(d, d == 0.0, failed, fail_col, j)
        D[:, j] = d
        Lx[:, lp0] = 1.0
        Lx[:, lp0 + 1 : lp1] = f[:, Li[lp0 + 1 : lp1]] / d[:, None]
        f[:, Li[lp0:lp1]] = 0.0
    outputs = [(Lx[b].copy(), D[b].copy()) for b in range(batch)]
    return outputs, _failures(failed, fail_col, "matrix is singular (zero pivot) at column %d")


def _stacked_lu(
    loop: SimplicialCholeskyLoop, Ai: np.ndarray, AxB: np.ndarray
) -> Tuple[list, List[StackedFailure]]:
    batch = AxB.shape[0]
    n = loop.n
    Lp, Li = loop.l_indptr, loop.l_indices
    Up, Ui = loop.u_indptr, loop.u_indices
    pp, up, ue, uc = loop.prune_ptr, loop.update_pos, loop.update_end, loop.update_col
    a0s, a1s = loop.a_diag_pos, loop.a_col_end
    Lx = np.zeros((batch, int(Lp[-1])))
    Ux = np.zeros((batch, int(Up[-1])))
    f = np.zeros((batch, n))
    failed = np.zeros(batch, dtype=bool)
    fail_col = np.full(batch, -1, dtype=np.int64)
    for j in range(n):
        a0, a1 = a0s[j], a1s[j]
        f[:, Ai[a0:a1]] = AxB[:, a0:a1]
        for t in range(pp[j], pp[j + 1]):
            ps, pe = up[t], ue[t]
            ukj = f[:, uc[t]]
            f[:, Li[ps:pe]] -= Lx[:, ps:pe] * ukj[:, None]
        u0, u1 = Up[j], Up[j + 1]
        Ux[:, u0:u1] = f[:, Ui[u0:u1]]
        piv = f[:, j].copy()
        _mask_bad_pivots(piv, piv == 0.0, failed, fail_col, j)
        lp0, lp1 = Lp[j], Lp[j + 1]
        Lx[:, lp0] = 1.0
        Lx[:, lp0 + 1 : lp1] = f[:, Li[lp0 + 1 : lp1]] / piv[:, None]
        f[:, Ui[u0:u1]] = 0.0
        f[:, Li[lp0:lp1]] = 0.0
    outputs = [(Lx[b].copy(), Ux[b].copy()) for b in range(batch)]
    return outputs, _failures(failed, fail_col, "matrix is singular (zero pivot) at column %d")


def _stacked_ic0(
    loop: IncompleteFactorLoop, Ai: np.ndarray, AxB: np.ndarray
) -> Tuple[list, List[StackedFailure]]:
    batch = AxB.shape[0]
    n = loop.n
    Lp = loop.l_indptr
    pp, mp = loop.prune_ptr, loop.mult_pos
    sp, ss, sd = loop.l_scat_ptr, loop.l_scat_src, loop.l_scat_dst
    Lx = AxB[:, loop.a_lower_pos].copy()
    failed = np.zeros(batch, dtype=bool)
    fail_col = np.full(batch, -1, dtype=np.int64)
    for j in range(n):
        for t in range(pp[j], pp[j + 1]):
            ljk = Lx[:, mp[t]]
            s0, s1 = sp[t], sp[t + 1]
            Lx[:, sd[s0:s1]] -= Lx[:, ss[s0:s1]] * ljk[:, None]
        lp0, lp1 = Lp[j], Lp[j + 1]
        d = Lx[:, lp0].copy()
        # Same predicate as the generated kernel (`if not d > 0.0`).
        _mask_bad_pivots(d, ~(d > 0.0), failed, fail_col, j)
        ljj = np.sqrt(d)
        Lx[:, lp0] = ljj
        Lx[:, lp0 + 1 : lp1] /= ljj[:, None]
    outputs = [Lx[b].copy() for b in range(batch)]
    return outputs, _failures(
        failed, fail_col, "IC(0) breakdown: non-positive pivot at column %d"
    )


def _stacked_ilu0(
    loop: IncompleteFactorLoop, Ai: np.ndarray, AxB: np.ndarray
) -> Tuple[list, List[StackedFailure]]:
    batch = AxB.shape[0]
    n = loop.n
    Lp, Up = loop.l_indptr, loop.u_indptr
    pp, mp = loop.prune_ptr, loop.mult_pos
    usp, uss, usd = loop.u_scat_ptr, loop.u_scat_src, loop.u_scat_dst
    lsp, lss, lsd = loop.l_scat_ptr, loop.l_scat_src, loop.l_scat_dst
    Ux = AxB[:, loop.a_upper_pos].copy()
    Lx = np.zeros((batch, int(Lp[-1])))
    Lx[:, loop.l_gather_dst] = AxB[:, loop.a_lower_pos]
    failed = np.zeros(batch, dtype=bool)
    fail_col = np.full(batch, -1, dtype=np.int64)
    for j in range(n):
        for t in range(pp[j], pp[j + 1]):
            ukj = Ux[:, mp[t]]
            s0, s1 = usp[t], usp[t + 1]
            Ux[:, usd[s0:s1]] -= Lx[:, uss[s0:s1]] * ukj[:, None]
            s0, s1 = lsp[t], lsp[t + 1]
            Lx[:, lsd[s0:s1]] -= Lx[:, lss[s0:s1]] * ukj[:, None]
        piv = Ux[:, Up[j + 1] - 1].copy()
        _mask_bad_pivots(piv, piv == 0.0, failed, fail_col, j)
        lp0, lp1 = Lp[j], Lp[j + 1]
        Lx[:, lp0] = 1.0
        Lx[:, lp0 + 1 : lp1] /= piv[:, None]
    outputs = [(Lx[b].copy(), Ux[b].copy()) for b in range(batch)]
    return outputs, _failures(
        failed, fail_col, "ILU(0) breakdown: zero pivot at column %d"
    )


_STACKED_IMPLS = {
    "llt": _stacked_llt,
    "ldlt": _stacked_ldlt,
    "lu": _stacked_lu,
    "ic0": _stacked_ic0,
    "ilu0": _stacked_ilu0,
}
