"""The symbolic-inspector framework.

Section 2.2 of the paper classifies symbolic inspectors by the numerical
method and the transformation they enable: each inspector builds an
*inspection graph* from the sparsity pattern, traverses it with an
*inspection strategy*, and produces an *inspection set* that guides the
inspector-guided transformations (Table 1).

========================  =================  ======================  =====================
Transformation            Method             Inspection graph         Inspection set
========================  =================  ======================  =====================
VI-Prune                  triangular solve   DG_L + SP(rhs)           reach-set
VS-Block                  triangular solve   DG_L                     block-set (supernodes)
VI-Prune                  Cholesky           etree + SP(A)            prune-set (row patterns)
VS-Block                  Cholesky           etree + ColCount(A)      block-set (supernodes)
========================  =================  ======================  =====================

The concrete inspectors below compute all sets needed by both transformations
for each method, record how long symbolic analysis took (this is the
"Sympiler (symbolic)" time in Figures 8 and 9), and return an immutable
result object consumed by :mod:`repro.compiler`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

# Leaf module with no intra-package imports: safe to pull in from here even
# though the compiler package itself depends on this module.
from repro.compiler.registration import register_unique_many

# levels.py is likewise a leaf of the runtime package (numpy + the dependence
# graph only); repro/runtime/__init__ lazily re-exports its heavier siblings,
# so this import never drags the execution engine into the symbolic layer.
from repro.runtime.levels import (
    ExecutionSchedule,
    level_sets_from_column_deps,
    level_sets_from_dependency_graph,
)
from repro.sparse.csc import CSCMatrix
from repro.symbolic.dependency_graph import DependencyGraph
from repro.symbolic.etree import column_etree, elimination_tree, postorder
from repro.symbolic.fill_pattern import (
    _upper_pattern,
    cholesky_pattern,
    ereach,
    lu_pattern,
)
from repro.symbolic.reach import reach_set
from repro.symbolic.supernodes import (
    SupernodePartition,
    cholesky_supernodes,
    triangular_supernodes,
)

__all__ = [
    "InspectionSet",
    "SymbolicInspector",
    "TriangularSolveInspector",
    "CholeskyInspector",
    "LDLTInspector",
    "LUInspector",
    "IC0Inspector",
    "ILU0Inspector",
    "TriangularInspectionResult",
    "CholeskyInspectionResult",
    "LUInspectionResult",
    "IC0InspectionResult",
    "ILU0InspectionResult",
    "inspector_for_method",
    "register_inspector",
    "normalize_rhs_pattern",
]


def normalize_rhs_pattern(
    n: int, rhs_pattern: Optional[Sequence[int] | np.ndarray]
) -> Optional[np.ndarray]:
    """Canonical RHS pattern: sorted unique in-range indices, or ``None``.

    ``None`` (a dense RHS) passes through.  The single source of truth for
    RHS normalization — the compile-time cache fingerprint and the symbolic
    inspection both use it, so they can never disagree.
    """
    if rhs_pattern is None:
        return None
    rhs = np.unique(np.asarray(list(rhs_pattern), dtype=np.int64))
    if rhs.size and (rhs[0] < 0 or rhs[-1] >= n):
        raise IndexError("rhs pattern indices out of range")
    return rhs


@dataclass(frozen=True)
class InspectionSet:
    """A named inspection set: the output of one inspection strategy.

    Attributes
    ----------
    name:
        Set name as used in the paper ("prune-set", "block-set", ...).
    strategy:
        The inspection strategy that produced it (e.g. "dfs",
        "node-equivalence", "up-traversal").
    graph:
        The inspection graph it was computed on (e.g. "DG_L", "etree+SP(A)").
    payload:
        The set itself; structure depends on the strategy (an index array for
        a reach-set, a :class:`SupernodePartition` for a block-set, a list of
        per-column index arrays for Cholesky prune-sets).
    """

    name: str
    strategy: str
    graph: str
    payload: object


@dataclass(frozen=True)
class TriangularInspectionResult:
    """Everything the compiler needs to specialize a sparse triangular solve."""

    n: int
    rhs_pattern: np.ndarray
    reach: np.ndarray
    reach_sorted: np.ndarray
    supernodes: SupernodePartition
    l_col_counts: np.ndarray
    schedule: ExecutionSchedule
    symbolic_seconds: float
    sets: Dict[str, InspectionSet] = field(repr=False)

    @property
    def reach_size(self) -> int:
        """Number of columns that participate in the solve."""
        return int(self.reach.size)

    def prune_set(self) -> InspectionSet:
        """The VI-Prune inspection set (the reach-set)."""
        return self.sets["prune-set"]

    def block_set(self) -> InspectionSet:
        """The VS-Block inspection set (the supernodes)."""
        return self.sets["block-set"]


@dataclass(frozen=True)
class CholeskyInspectionResult:
    """Everything the compiler needs to specialize a sparse Cholesky."""

    n: int
    parent: np.ndarray
    post: np.ndarray
    l_indptr: np.ndarray
    l_indices: np.ndarray
    row_patterns: List[np.ndarray]
    l_col_counts: np.ndarray
    supernodes: SupernodePartition
    schedule: ExecutionSchedule
    symbolic_seconds: float
    sets: Dict[str, InspectionSet] = field(repr=False)

    @property
    def factor_nnz(self) -> int:
        """Predicted number of nonzeros of ``L`` (diagonal included)."""
        return int(self.l_indptr[-1])

    @property
    def average_column_count(self) -> float:
        """Mean column count of ``L`` — input of the BLAS-switch heuristic."""
        return float(self.l_col_counts.mean()) if self.l_col_counts.size else 0.0

    def prune_set(self) -> InspectionSet:
        """The VI-Prune inspection set (per-column row patterns of ``L``)."""
        return self.sets["prune-set"]

    def block_set(self) -> InspectionSet:
        """The VS-Block inspection set (the supernodes)."""
        return self.sets["block-set"]

    def l_pattern_matrix(self) -> CSCMatrix:
        """The factor pattern as an all-zero CSC matrix, ready to be filled."""
        return CSCMatrix.from_pattern(self.n, self.n, self.l_indptr, self.l_indices)


@dataclass(frozen=True)
class LUInspectionResult:
    """Everything the compiler needs to specialize a no-pivot sparse LU.

    ``l_indptr``/``l_indices`` describe the unit-lower-triangular ``L`` (rows
    ascending, diagonal first) and ``u_indptr``/``u_indices`` the
    upper-triangular ``U`` (rows ascending, diagonal last), both exact — the
    GP-style reach computes them column by column, which is only possible
    because the kernel does not pivot.  ``parent`` is the *column* elimination
    tree (the etree of ``AᵀA``), whose column counts drive the supernode
    block-set candidates.
    """

    n: int
    parent: np.ndarray
    post: np.ndarray
    l_indptr: np.ndarray
    l_indices: np.ndarray
    u_indptr: np.ndarray
    u_indices: np.ndarray
    l_col_counts: np.ndarray
    supernodes: SupernodePartition
    schedule: ExecutionSchedule
    symbolic_seconds: float
    sets: Dict[str, InspectionSet] = field(repr=False)

    @property
    def l_nnz(self) -> int:
        """Predicted number of nonzeros of ``L`` (unit diagonal included)."""
        return int(self.l_indptr[-1])

    @property
    def u_nnz(self) -> int:
        """Predicted number of nonzeros of ``U`` (diagonal included)."""
        return int(self.u_indptr[-1])

    @property
    def factor_nnz(self) -> int:
        """Total stored entries of both factors (``nnz(L) + nnz(U)``)."""
        return self.l_nnz + self.u_nnz

    def prune_set(self) -> InspectionSet:
        """The VI-Prune inspection set (per-column ``U`` row patterns)."""
        return self.sets["prune-set"]

    def block_set(self) -> InspectionSet:
        """The VS-Block inspection set (column-etree supernode candidates)."""
        return self.sets["block-set"]

    def l_pattern_matrix(self) -> CSCMatrix:
        """The ``L`` pattern as an all-zero CSC matrix, ready to be filled."""
        return CSCMatrix.from_pattern(self.n, self.n, self.l_indptr, self.l_indices)

    def u_pattern_matrix(self) -> CSCMatrix:
        """The ``U`` pattern as an all-zero CSC matrix, ready to be filled."""
        return CSCMatrix.from_pattern(self.n, self.n, self.u_indptr, self.u_indices)


class SymbolicInspector(ABC):
    """Base class of all symbolic inspectors.

    Subclasses implement :meth:`inspect`, which performs all pattern-only
    analysis for one numerical method and returns a result object containing
    the inspection sets of Table 1 plus the elapsed symbolic time.
    """

    #: Name of the numerical method this inspector serves.
    method: str = "abstract"

    @abstractmethod
    def inspect(self, matrix: CSCMatrix, **kwargs):
        """Run symbolic analysis on ``matrix`` and return a result object."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(method={self.method!r})"


class TriangularSolveInspector(SymbolicInspector):
    """Symbolic inspector for sparse triangular solve ``L x = b``.

    Inspection graph: the dependence graph DG_L (plus the RHS pattern for the
    reach-set).  Strategies: depth-first search for the reach-set (VI-Prune),
    node equivalence for the supernodes (VS-Block).
    """

    method = "triangular-solve"

    def inspect(
        self,
        matrix: CSCMatrix,
        rhs_pattern: Optional[Sequence[int] | np.ndarray] = None,
        **kwargs,
    ) -> TriangularInspectionResult:
        """Inspect a lower-triangular matrix and an optional RHS pattern.

        When ``rhs_pattern`` is omitted the RHS is assumed dense, i.e. the
        reach-set is every column (VI-Prune then degenerates to the original
        loop, as the paper notes for dense right-hand sides).
        """
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        if not matrix.is_lower_triangular():
            raise ValueError("triangular-solve inspection requires a lower-triangular L")
        start = time.perf_counter()
        n = matrix.n
        rhs = normalize_rhs_pattern(n, rhs_pattern)
        if rhs is None:
            rhs = np.arange(n, dtype=np.int64)
        reach = reach_set(matrix, rhs)
        reach_sorted = np.sort(reach)
        supernodes = triangular_supernodes(matrix)
        col_counts = np.diff(matrix.indptr).astype(np.int64)
        # Wavefront schedule on DG_L restricted to the reach: pruned columns
        # never execute, so only in-reach dependencies constrain levels.
        schedule = level_sets_from_dependency_graph(
            DependencyGraph.from_lower_triangular(matrix),
            active=reach_sorted,
            graph="DG_L + SP(rhs)",
        )
        elapsed = time.perf_counter() - start
        sets = {
            "prune-set": InspectionSet(
                name="prune-set",
                strategy="dfs",
                graph="DG_L + SP(rhs)",
                payload=reach,
            ),
            "block-set": InspectionSet(
                name="block-set",
                strategy="node-equivalence",
                graph="DG_L",
                payload=supernodes,
            ),
        }
        return TriangularInspectionResult(
            n=n,
            rhs_pattern=rhs,
            reach=reach,
            reach_sorted=reach_sorted,
            supernodes=supernodes,
            l_col_counts=col_counts,
            schedule=schedule,
            symbolic_seconds=elapsed,
            sets=sets,
        )


class CholeskyInspector(SymbolicInspector):
    """Symbolic inspector for sparse Cholesky factorization ``A = L Lᵀ``.

    Inspection graph: the elimination tree together with the pattern of ``A``.
    Strategies: single-node up-traversals bounded by marked nodes (``ereach``)
    for the per-column prune-sets, and the column-count/etree merging rule for
    the supernode block-set.
    """

    method = "cholesky"

    def inspect(
        self,
        matrix: CSCMatrix,
        *,
        max_supernode_width: int | None = None,
        **kwargs,
    ) -> CholeskyInspectionResult:
        """Inspect a symmetric positive-definite matrix.

        ``matrix`` may store the full symmetric pattern or only its lower
        triangle.  Only the pattern is read.
        """
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        if not matrix.is_square():
            raise ValueError("Cholesky inspection requires a square matrix")
        start = time.perf_counter()
        n = matrix.n
        parent = elimination_tree(matrix)
        post = postorder(parent)
        upper = _upper_pattern(matrix)
        row_patterns = [ereach(matrix, k, parent, _upper=upper) for k in range(n)]
        # Column pattern of L, derived from the row patterns (equation (1)).
        col_rows: List[List[int]] = [[j] for j in range(n)]
        for k in range(n):
            for j in row_patterns[k]:
                col_rows[int(j)].append(k)
        l_indptr = np.zeros(n + 1, dtype=np.int64)
        for j in range(n):
            l_indptr[j + 1] = l_indptr[j] + len(col_rows[j])
        l_indices = np.empty(int(l_indptr[-1]), dtype=np.int64)
        for j in range(n):
            l_indices[l_indptr[j] : l_indptr[j + 1]] = col_rows[j]
        col_counts = np.diff(l_indptr).astype(np.int64)
        supernodes = cholesky_supernodes(col_counts, parent, max_width=max_supernode_width)
        # Exact wavefronts: column j waits for precisely the columns of its L
        # row pattern (a strictly tighter schedule than etree depth).
        schedule = level_sets_from_column_deps(row_patterns, graph="SP(L row) / etree")
        elapsed = time.perf_counter() - start
        sets = {
            "prune-set": InspectionSet(
                name="prune-set",
                strategy="up-traversal",
                graph="etree + SP(A)",
                payload=row_patterns,
            ),
            "block-set": InspectionSet(
                name="block-set",
                strategy="up-traversal",
                graph="etree + ColCount(A)",
                payload=supernodes,
            ),
        }
        return CholeskyInspectionResult(
            n=n,
            parent=parent,
            post=post,
            l_indptr=l_indptr,
            l_indices=l_indices,
            row_patterns=row_patterns,
            l_col_counts=col_counts,
            supernodes=supernodes,
            schedule=schedule,
            symbolic_seconds=elapsed,
            sets=sets,
        )


class LDLTInspector(CholeskyInspector):
    """Symbolic inspector for sparse LDLᵀ factorization ``A = L D Lᵀ``.

    The fill pattern of the unit-diagonal ``L`` is identical to the Cholesky
    factor pattern (the elimination tree ignores numeric signs), so the whole
    inspection — etree, ``ereach`` row patterns, column counts, supernodes —
    is inherited unchanged; only the numeric lowering differs.
    """

    method = "ldlt"


class LUInspector(SymbolicInspector):
    """Symbolic inspector for sparse LU ``A = L U`` without pivoting.

    Inspection graph: the dependence DAG of the partially built ``L`` plus the
    column elimination tree (the etree of ``AᵀA``).  Strategies: a GP-style
    depth-first reach per column for the exact ``L``/``U`` patterns (the
    prune-set of the update loop is the above-diagonal ``U`` pattern of each
    column), and the column-count merging rule on the column etree for the
    supernode block-set candidates.  Pivoting-free LU is reliable for the
    diagonally dominant Jacobians of the paper's §1.2 circuit/power-grid
    workloads, whose patterns are fixed while values change.
    """

    method = "lu"

    def inspect(
        self,
        matrix: CSCMatrix,
        *,
        max_supernode_width: int | None = None,
        **kwargs,
    ) -> LUInspectionResult:
        """Inspect a square (generally unsymmetric) matrix.

        Only the pattern is read; the matrix should be diagonally dominant
        (or otherwise safely factorizable without pivoting) for the numeric
        kernel this inspection feeds.
        """
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        if not matrix.is_square():
            raise ValueError("LU inspection requires a square matrix")
        start = time.perf_counter()
        n = matrix.n
        parent = column_etree(matrix)
        post = postorder(parent)
        l_indptr, l_indices, u_indptr, u_indices = lu_pattern(matrix)
        l_col_counts = np.diff(l_indptr).astype(np.int64)
        supernodes = cholesky_supernodes(l_col_counts, parent, max_width=max_supernode_width)
        upper_patterns = [
            u_indices[u_indptr[j] : u_indptr[j + 1] - 1] for j in range(n)
        ]
        # Exact wavefronts: column j of the LU update loop consumes exactly
        # the L columns named by its above-diagonal U pattern.
        schedule = level_sets_from_column_deps(upper_patterns, graph="SP(U col) / etree(A^T A)")
        elapsed = time.perf_counter() - start
        sets = {
            "prune-set": InspectionSet(
                name="prune-set",
                strategy="dfs-reach",
                graph="DG_L + SP(A(:,j))",
                payload=upper_patterns,
            ),
            "block-set": InspectionSet(
                name="block-set",
                strategy="up-traversal",
                graph="etree(A^T A) + ColCount(L)",
                payload=supernodes,
            ),
        }
        return LUInspectionResult(
            n=n,
            parent=parent,
            post=post,
            l_indptr=l_indptr,
            l_indices=l_indices,
            u_indptr=u_indptr,
            u_indices=u_indices,
            l_col_counts=l_col_counts,
            supernodes=supernodes,
            schedule=schedule,
            symbolic_seconds=elapsed,
            sets=sets,
        )


@dataclass(frozen=True)
class IC0InspectionResult(CholeskyInspectionResult):
    """Everything the compiler needs to specialize an IC(0) factorization.

    Structurally a :class:`CholeskyInspectionResult` — the incomplete factor
    shares all the machinery of the complete one — but the pattern arrays
    describe ``tril(A)`` itself: IC(0) allows no fill, so no fill computation
    (no ``ereach`` up-traversals) ever runs.  ``row_patterns[j]`` holds the
    columns ``k < j`` with ``A[j, k] != 0`` — the update sources of column
    ``j``, which are also its exact wavefront dependencies.
    """


@dataclass(frozen=True)
class ILU0InspectionResult(LUInspectionResult):
    """Everything the compiler needs to specialize an ILU(0) factorization.

    Structurally an :class:`LUInspectionResult`, but with the no-fill
    property: ``L`` is the strict lower triangle of ``A`` plus an explicit
    unit diagonal, ``U`` the upper triangle of ``A`` (diagonal stored last
    per column) — no GP reach runs, the factor pattern *is* the ``A``
    pattern.
    """


class IC0Inspector(SymbolicInspector):
    """Symbolic inspector for incomplete Cholesky IC(0), ``A ≈ L Lᵀ``.

    The no-fill property makes inspection trivial compared to complete
    Cholesky: the factor pattern is ``tril(A)`` verbatim, so the inspector
    only *reads* the pattern — per-column row patterns (the update sources,
    which the VI-Prune handler intersects with the ``A`` pattern to build the
    dropped-update-free descriptors), elimination-tree supernode candidates
    for the VS-Block participation record, and the exact level-set
    :class:`ExecutionSchedule` — without any fill computation.
    """

    method = "ic0"

    def inspect(
        self,
        matrix: CSCMatrix,
        *,
        max_supernode_width: int | None = None,
        **kwargs,
    ) -> IC0InspectionResult:
        """Inspect a symmetric positive-definite matrix (pattern only).

        ``matrix`` may store the full symmetric pattern or only its lower
        triangle; every column must hold its diagonal entry (IC(0) pivots on
        it).
        """
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        if not matrix.is_square():
            raise ValueError("IC(0) inspection requires a square matrix")
        start = time.perf_counter()
        n = matrix.n
        parent = elimination_tree(matrix)
        post = postorder(parent)
        # The factor pattern is tril(A): no fill, hence no ereach traversals.
        col_rows: List[List[int]] = []
        row_lists: List[List[int]] = [[] for _ in range(n)]
        indptr, indices = matrix.indptr, matrix.indices
        l_indptr = np.zeros(n + 1, dtype=np.int64)
        for j in range(n):
            rows = indices[indptr[j] : indptr[j + 1]]
            lower = rows[np.searchsorted(rows, j) :]
            if lower.size == 0 or lower[0] != j:
                raise ValueError(f"missing diagonal entry in column {j}")
            col_rows.append([int(r) for r in lower])
            l_indptr[j + 1] = l_indptr[j] + lower.size
            for r in lower[1:]:
                row_lists[int(r)].append(j)
        l_indices = np.empty(int(l_indptr[-1]), dtype=np.int64)
        for j in range(n):
            l_indices[l_indptr[j] : l_indptr[j + 1]] = col_rows[j]
        row_patterns = [np.asarray(row_lists[j], dtype=np.int64) for j in range(n)]
        col_counts = np.diff(l_indptr).astype(np.int64)
        supernodes = cholesky_supernodes(col_counts, parent, max_width=max_supernode_width)
        # Exact wavefronts: column j waits for precisely its update sources.
        schedule = level_sets_from_column_deps(row_patterns, graph="SP(tril(A) row)")
        elapsed = time.perf_counter() - start
        sets = {
            "prune-set": InspectionSet(
                name="prune-set",
                strategy="pattern-read",
                graph="SP(tril(A))",
                payload=row_patterns,
            ),
            "block-set": InspectionSet(
                name="block-set",
                strategy="up-traversal",
                graph="etree + ColCount(A)",
                payload=supernodes,
            ),
        }
        return IC0InspectionResult(
            n=n,
            parent=parent,
            post=post,
            l_indptr=l_indptr,
            l_indices=l_indices,
            row_patterns=row_patterns,
            l_col_counts=col_counts,
            supernodes=supernodes,
            schedule=schedule,
            symbolic_seconds=elapsed,
            sets=sets,
        )


class ILU0Inspector(SymbolicInspector):
    """Symbolic inspector for incomplete LU ILU(0), ``A ≈ L U``.

    No fill, no pivoting: ``L`` is the strict lower triangle of ``A`` with an
    explicit unit diagonal (rows ascending, diagonal first — the convention
    the generated triangular-solve kernels expect) and ``U`` is the upper
    triangle of ``A`` (rows ascending, diagonal last, like the complete LU
    kernel).  The per-column update sources are the above-diagonal ``U``
    pattern — read directly off ``A`` instead of computed by a GP reach.
    """

    method = "ilu0"

    def inspect(
        self,
        matrix: CSCMatrix,
        *,
        max_supernode_width: int | None = None,
        **kwargs,
    ) -> ILU0InspectionResult:
        """Inspect a square (generally unsymmetric) matrix (pattern only).

        Every column must hold its diagonal entry (the ILU(0) pivot).
        """
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        if not matrix.is_square():
            raise ValueError("ILU(0) inspection requires a square matrix")
        start = time.perf_counter()
        n = matrix.n
        parent = column_etree(matrix)
        post = postorder(parent)
        indptr, indices = matrix.indptr, matrix.indices
        l_indptr = np.zeros(n + 1, dtype=np.int64)
        u_indptr = np.zeros(n + 1, dtype=np.int64)
        l_rows: List[np.ndarray] = []
        u_rows: List[np.ndarray] = []
        for j in range(n):
            rows = indices[indptr[j] : indptr[j + 1]]
            split = int(np.searchsorted(rows, j))
            if split == rows.size or rows[split] != j:
                raise ValueError(f"missing diagonal entry in column {j}")
            # U column: above-diagonal rows then the diagonal (stored last).
            u_rows.append(rows[: split + 1].astype(np.int64))
            # L column: explicit unit diagonal first, then strict lower rows.
            l_rows.append(
                np.concatenate(([j], rows[split + 1 :])).astype(np.int64)
            )
            u_indptr[j + 1] = u_indptr[j] + split + 1
            l_indptr[j + 1] = l_indptr[j] + (rows.size - split)
        l_indices = np.concatenate(l_rows) if l_rows else np.zeros(0, dtype=np.int64)
        u_indices = np.concatenate(u_rows) if u_rows else np.zeros(0, dtype=np.int64)
        l_col_counts = np.diff(l_indptr).astype(np.int64)
        supernodes = cholesky_supernodes(l_col_counts, parent, max_width=max_supernode_width)
        upper_patterns = [
            u_indices[u_indptr[j] : u_indptr[j + 1] - 1] for j in range(n)
        ]
        # Exact wavefronts: column j consumes the L columns of its U pattern.
        schedule = level_sets_from_column_deps(upper_patterns, graph="SP(triu(A) col)")
        elapsed = time.perf_counter() - start
        sets = {
            "prune-set": InspectionSet(
                name="prune-set",
                strategy="pattern-read",
                graph="SP(triu(A))",
                payload=upper_patterns,
            ),
            "block-set": InspectionSet(
                name="block-set",
                strategy="up-traversal",
                graph="etree(A^T A) + ColCount(L)",
                payload=supernodes,
            ),
        }
        return ILU0InspectionResult(
            n=n,
            parent=parent,
            post=post,
            l_indptr=l_indptr,
            l_indices=l_indices,
            u_indptr=u_indptr,
            u_indices=u_indices,
            l_col_counts=l_col_counts,
            supernodes=supernodes,
            schedule=schedule,
            symbolic_seconds=elapsed,
            sets=sets,
        )


_INSPECTORS: Dict[str, type] = {}


def register_inspector(cls: type, *, aliases: Sequence[str] = ()) -> type:
    """Register a :class:`SymbolicInspector` subclass under its method name.

    Registering a *different* class under an existing name (or alias) raises
    ``ValueError``; re-registering the same class is a no-op so modules can be
    safely re-imported.  Every key is validated before any is written, so a
    conflicting alias never leaves a partial registration behind.  Returns
    ``cls`` so it can be used as a decorator.
    """
    keys = [key.lower() for key in (cls.method, *aliases)]
    return register_unique_many(_INSPECTORS, keys, cls, kind="symbolic inspector")


register_inspector(TriangularSolveInspector, aliases=("trisolve", "triangular"))
register_inspector(CholeskyInspector)
register_inspector(LDLTInspector)
register_inspector(LUInspector)
register_inspector(IC0Inspector, aliases=("incomplete-cholesky",))
register_inspector(ILU0Inspector, aliases=("incomplete-lu",))


def inspector_for_method(method: str) -> SymbolicInspector:
    """Instantiate the symbolic inspector registered for ``method``."""
    key = method.lower()
    if key not in _INSPECTORS:
        raise ValueError(
            f"no symbolic inspector registered for method {method!r}; "
            f"available: {sorted(set(_INSPECTORS))}"
        )
    return _INSPECTORS[key]()


def verify_cholesky_pattern_consistency(A: CSCMatrix) -> bool:
    """Cross-check the inspector's L pattern against :func:`cholesky_pattern`.

    Used by the test-suite as an internal consistency oracle.
    """
    result = CholeskyInspector().inspect(A)
    indptr, indices = cholesky_pattern(A, result.parent)
    return bool(
        np.array_equal(indptr, result.l_indptr) and np.array_equal(indices, result.l_indices)
    )
