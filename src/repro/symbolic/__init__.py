"""Symbolic-analysis substrate.

Symbolic analysis (a term from the numerical-computing community, §1 of the
paper) covers every computation that depends only on the *nonzero pattern* of
the inputs and not on their values: reachability in the dependence graph,
elimination trees, fill-in prediction, row/column counts and supernode
detection.  Sympiler runs these routines at compile time — the "symbolic
inspector" — and bakes their results into generated code.

This package implements those graph algorithms plus the inspector framework
(:mod:`repro.symbolic.inspector`) that packages their results into
*inspection sets* consumed by the inspector-guided transformations in
:mod:`repro.compiler.transforms`.
"""

from repro.symbolic.colcount import column_counts_of_factor, row_counts_of_factor
from repro.symbolic.dependency_graph import DependencyGraph
from repro.symbolic.etree import (
    EliminationTree,
    column_etree,
    elimination_tree,
    first_children,
    postorder,
    tree_depths,
)
from repro.symbolic.fill_pattern import (
    cholesky_pattern,
    ereach,
    lu_pattern,
    row_patterns_of_factor,
)
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    CholeskyInspector,
    InspectionSet,
    LUInspectionResult,
    LUInspector,
    SymbolicInspector,
    TriangularInspectionResult,
    TriangularSolveInspector,
    inspector_for_method,
)
from repro.symbolic.reach import reach_set, reach_set_sorted
from repro.symbolic.supernodes import (
    SupernodePartition,
    cholesky_supernodes,
    triangular_supernodes,
)

__all__ = [
    "DependencyGraph",
    "reach_set",
    "reach_set_sorted",
    "EliminationTree",
    "elimination_tree",
    "column_etree",
    "postorder",
    "first_children",
    "tree_depths",
    "ereach",
    "cholesky_pattern",
    "lu_pattern",
    "row_patterns_of_factor",
    "column_counts_of_factor",
    "row_counts_of_factor",
    "SupernodePartition",
    "cholesky_supernodes",
    "triangular_supernodes",
    "SymbolicInspector",
    "TriangularSolveInspector",
    "CholeskyInspector",
    "LUInspector",
    "TriangularInspectionResult",
    "LUInspectionResult",
    "CholeskyInspectionResult",
    "InspectionSet",
    "inspector_for_method",
]
