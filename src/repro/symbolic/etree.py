"""Elimination trees.

The elimination tree (etree) of an SPD matrix ``A`` is the central symbolic
structure for sparse Cholesky (§3.2 of the paper): ``parent[j] = min{i > j :
L[i, j] != 0}``.  It is a spanning forest of the filled graph ``G⁺(A)`` and
drives fill-in prediction, row-pattern computation (``ereach``) and supernode
detection.

The construction below is the classical Liu algorithm with path compression
(identical in spirit to CSparse's ``cs_etree``), running in effectively
``O(|A| α(n))`` time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = [
    "elimination_tree",
    "column_etree",
    "postorder",
    "first_children",
    "child_counts",
    "tree_depths",
    "EliminationTree",
]


def elimination_tree(A: CSCMatrix) -> np.ndarray:
    """Compute the elimination tree of a symmetric matrix.

    Parameters
    ----------
    A:
        A square matrix whose *symmetric* pattern defines the tree.  Either
        the full symmetric pattern or the upper triangle must be stored; if
        the matrix is detected to be lower-triangular-only it is transposed
        internally (the etree needs the entries ``A[i, k]`` with ``i < k`` of
        every column ``k``).

    Returns
    -------
    numpy.ndarray
        ``parent`` array of length ``n`` with ``-1`` marking roots.
    """
    if not A.is_square():
        raise ValueError("the elimination tree requires a square matrix")
    work = A.transpose() if A.is_lower_triangular() and A.n > 0 else A
    n = A.n
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = work.indptr, work.indices
    for k in range(n):
        for p in range(indptr[k], indptr[k + 1]):
            i = indices[p]
            # Traverse from i toward the root, compressing paths to k.
            while i != -1 and i < k:
                inext = ancestor[i]
                ancestor[i] = k
                if inext == -1:
                    parent[i] = k
                i = inext
    return parent


def column_etree(A: CSCMatrix) -> np.ndarray:
    """Compute the column elimination tree of an unsymmetric matrix.

    The column etree is the elimination tree of ``AᵀA`` — the symbolic
    structure that governs fill in a partial-pivoting-free LU factorization
    (the columns of ``L`` nest along it, so it bounds the LU column patterns
    and drives supernode candidates the same way the etree does for
    Cholesky).  ``AᵀA`` is never formed: every row of ``A`` couples the
    columns it touches into a clique, which Liu's algorithm absorbs one
    column at a time through a per-row "last column seen" marker (the
    ``ata`` variant of CSparse's ``cs_etree``).

    Parameters
    ----------
    A:
        A square matrix; only its pattern is read.

    Returns
    -------
    numpy.ndarray
        ``parent`` array of length ``n`` with ``-1`` marking roots.
    """
    if not A.is_square():
        raise ValueError("the column elimination tree requires a square matrix")
    n = A.n
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    prev_col = np.full(A.n_rows, -1, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for k in range(n):
        for p in range(indptr[k], indptr[k + 1]):
            row = indices[p]
            # The previous column with a nonzero in this row is a neighbour
            # of k in A^T A; link it toward k with path compression.
            i = prev_col[row]
            while i != -1 and i < k:
                inext = ancestor[i]
                ancestor[i] = k
                if inext == -1:
                    parent[i] = k
                i = inext
            prev_col[row] = k
    return parent


def child_counts(parent: np.ndarray) -> np.ndarray:
    """Number of children of every node in the forest."""
    parent = np.asarray(parent, dtype=np.int64)
    counts = np.zeros(parent.size, dtype=np.int64)
    for j, p in enumerate(parent):
        if p >= 0:
            counts[p] += 1
    return counts


def first_children(parent: np.ndarray) -> List[List[int]]:
    """Children lists of every node, in increasing child order."""
    parent = np.asarray(parent, dtype=np.int64)
    children: List[List[int]] = [[] for _ in range(parent.size)]
    for j, p in enumerate(parent):
        if p >= 0:
            children[p].append(j)
    return children


def postorder(parent: np.ndarray) -> np.ndarray:
    """Depth-first postorder of the elimination forest.

    Children are visited in increasing order, and roots in increasing order,
    which makes the postorder deterministic.  The returned array maps
    ``position → node``.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    children = first_children(parent)
    order = np.empty(n, dtype=np.int64)
    k = 0
    for root in range(n):
        if parent[root] != -1:
            continue
        # Iterative postorder over the subtree rooted at `root`.
        stack = [(root, 0)]
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(children[node]):
                stack.append((node, child_idx + 1))
                stack.append((children[node][child_idx], 0))
            else:
                order[k] = node
                k += 1
    if k != n:
        raise ValueError("parent array does not describe a forest (cycle detected)")
    return order


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of every node (roots have depth 0)."""
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    depth = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        # Walk to the nearest node with a known depth, then unwind.
        path = []
        v = j
        while v != -1 and depth[v] == -1:
            path.append(v)
            v = parent[v]
        base = depth[v] if v != -1 else -1
        for node in reversed(path):
            base += 1
            depth[node] = base
    return depth


@dataclass(frozen=True)
class EliminationTree:
    """The elimination tree plus commonly used derived structure."""

    parent: np.ndarray
    post: np.ndarray = field(repr=False)
    children: List[List[int]] = field(repr=False)

    @classmethod
    def from_matrix(cls, A: CSCMatrix) -> "EliminationTree":
        """Build the tree, its postorder and children lists from ``A``."""
        parent = elimination_tree(A)
        return cls(parent=parent, post=postorder(parent), children=first_children(parent))

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.parent.size)

    def roots(self) -> np.ndarray:
        """Indices of the forest roots."""
        return np.nonzero(self.parent == -1)[0].astype(np.int64)

    def n_children(self, j: int) -> int:
        """Number of children of node ``j``."""
        return len(self.children[j])

    def path_to_root(self, j: int) -> np.ndarray:
        """Nodes on the path from ``j`` (inclusive) to its root (inclusive)."""
        path = []
        v = int(j)
        while v != -1:
            path.append(v)
            v = int(self.parent[v])
        return np.asarray(path, dtype=np.int64)

    def depths(self) -> np.ndarray:
        """Depth of every node."""
        return tree_depths(self.parent)
