"""Row and column counts of the Cholesky factor.

Column counts (``colcount[j] = nnz(L[:, j])`` including the diagonal) and row
counts are the quantities Sympiler's heuristics consume: the supernode
detection rule compares adjacent column counts, the VS-Block participation
threshold uses the average supernode size, and the BLAS-switch threshold uses
the average column count (§4.2 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.fill_pattern import _upper_pattern, ereach

__all__ = [
    "column_counts_of_factor",
    "row_counts_of_factor",
    "average_column_count",
]


def column_counts_of_factor(A: CSCMatrix, parent: np.ndarray | None = None) -> np.ndarray:
    """``nnz`` per column of ``L`` (diagonal included), without forming ``L``.

    Uses the row-subtree characterization: row ``k`` contributes one entry to
    every column in ``ereach(A, k)``, and every column has its diagonal.
    """
    if parent is None:
        parent = elimination_tree(A)
    n = A.n
    counts = np.ones(n, dtype=np.int64)  # the diagonal of every column
    upper = _upper_pattern(A)
    for k in range(n):
        for j in ereach(A, k, parent, _upper=upper):
            counts[int(j)] += 1
    return counts


def row_counts_of_factor(A: CSCMatrix, parent: np.ndarray | None = None) -> np.ndarray:
    """``nnz`` per row of ``L`` (diagonal included)."""
    if parent is None:
        parent = elimination_tree(A)
    n = A.n
    upper = _upper_pattern(A)
    counts = np.empty(n, dtype=np.int64)
    for k in range(n):
        counts[k] = ereach(A, k, parent, _upper=upper).size + 1
    return counts


def average_column_count(A: CSCMatrix, parent: np.ndarray | None = None) -> float:
    """Mean column count of ``L`` — the paper's BLAS-switch heuristic input."""
    counts = column_counts_of_factor(A, parent)
    return float(counts.mean()) if counts.size else 0.0
