"""The dependence graph DG_L of a lower-triangular matrix.

Following Gilbert & Peierls (and Figure 1 of the paper), the dependence graph
of a lower-triangular matrix ``L`` has one vertex per column and a directed
edge ``(j, i)`` for every off-diagonal nonzero ``L[i, j] != 0``.  An edge
``j → i`` records that the solution component ``x_i`` depends on ``x_j`` in a
forward substitution, so any valid execution order must place ``j`` before
``i``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """Directed column-dependency graph of a lower-triangular CSC matrix."""

    __slots__ = ("n", "_indptr", "_indices")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n)
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)

    @classmethod
    def from_lower_triangular(cls, L: CSCMatrix) -> "DependencyGraph":
        """Build DG_L from a lower-triangular matrix.

        Edges are the strictly-lower off-diagonal entries of each column; the
        diagonal is ignored.  Raises if ``L`` has entries above the diagonal.
        """
        if not L.is_square():
            raise ValueError("the dependence graph requires a square matrix")
        if not L.is_lower_triangular():
            raise ValueError("DG_L is defined for lower-triangular matrices")
        n = L.n
        out_lists: List[np.ndarray] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for j in range(n):
            rows = L.col_rows(j)
            targets = rows[rows > j]
            out_lists.append(targets)
            indptr[j + 1] = indptr[j] + targets.size
        indices = (
            np.concatenate(out_lists) if out_lists else np.zeros(0, dtype=np.int64)
        )
        return cls(n, indptr, indices)

    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return int(self._indptr[-1])

    def out_neighbors(self, j: int) -> np.ndarray:
        """Vertices ``i`` with an edge ``j → i`` (i.e. ``L[i, j] != 0``, i>j)."""
        if not (0 <= j < self.n):
            raise IndexError(f"vertex {j} out of range [0, {self.n})")
        return self._indices[self._indptr[j] : self._indptr[j + 1]]

    def out_degree(self, j: int) -> int:
        """Number of out-edges of vertex ``j``."""
        return int(self._indptr[j + 1] - self._indptr[j])

    def reachable_from(self, sources: Iterable[int]) -> np.ndarray:
        """All vertices reachable from ``sources`` (sources included), sorted."""
        visited = np.zeros(self.n, dtype=bool)
        stack = [int(s) for s in sources]
        for s in stack:
            if not (0 <= s < self.n):
                raise IndexError(f"source vertex {s} out of range")
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            for w in self.out_neighbors(v):
                if not visited[w]:
                    stack.append(int(w))
        return np.nonzero(visited)[0].astype(np.int64)

    def is_valid_topological_order(self, order: Sequence[int]) -> bool:
        """True when ``order`` places every vertex before its out-neighbours.

        Only the vertices present in ``order`` are considered; an edge whose
        endpoint is absent from ``order`` is ignored (this matches how a
        pruned reach-set is used: unreached columns never execute).
        """
        position = {int(v): k for k, v in enumerate(order)}
        if len(position) != len(order):
            return False  # duplicates
        for j in position:
            for i in self.out_neighbors(j):
                i = int(i)
                if i in position and position[i] <= position[j]:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DependencyGraph(n={self.n}, edges={self.n_edges})"
