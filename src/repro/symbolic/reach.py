"""Reach-set computation on the dependence graph (Gilbert & Peierls).

For a lower-triangular system ``L x = b`` with a sparse right-hand side, the
nonzero pattern of ``x`` is ``Reach_L(β)`` — the set of vertices reachable in
DG_L from ``β = {i | b_i != 0}`` (neglecting numerical cancellation).  The
symbolic inspector for triangular solve computes this set once per sparsity
pattern; the VI-Prune transformation then restricts the solve loop to it.

The returned order is a *topological* order of the induced subgraph: every
column appears before all columns that depend on it, so a solver may process
the reach set front-to-back.  This mirrors the classic ``cs_reach`` /
``cs_dfs`` routines of CSparse, implemented iteratively to avoid Python
recursion limits on long dependency chains.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = ["reach_set", "reach_set_sorted", "reach_set_from_arrays"]


def _as_source_indices(n: int, b_pattern: Iterable[int] | np.ndarray) -> np.ndarray:
    sources = np.asarray(list(b_pattern), dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise IndexError("right-hand-side indices out of range")
    return sources


def reach_set_from_arrays(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    b_pattern: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Reach set over raw CSC arrays of a lower-triangular matrix.

    Parameters
    ----------
    n:
        Matrix order.
    indptr, indices:
        CSC structure of ``L`` (values are irrelevant).
    b_pattern:
        Indices of the nonzero entries of the right-hand side.

    Returns
    -------
    numpy.ndarray
        Reached column indices in topological (dependency-first) order.
    """
    sources = _as_source_indices(n, b_pattern)
    visited = np.zeros(n, dtype=bool)
    # The output is filled from the back, exactly like cs_reach: a vertex is
    # appended when its DFS finishes, producing reverse-finish order which is
    # a topological order for this DAG.
    out = np.empty(n, dtype=np.int64)
    top = n

    # Explicit DFS stacks: one for the vertex path, one for the position of
    # the next out-edge to explore at each vertex on the path.
    vertex_stack = np.empty(n, dtype=np.int64)
    edge_stack = np.empty(n, dtype=np.int64)

    for src in sources:
        if visited[src]:
            continue
        depth = 0
        vertex_stack[0] = src
        edge_stack[0] = indptr[src]
        visited[src] = True
        while depth >= 0:
            v = vertex_stack[depth]
            p = edge_stack[depth]
            end = indptr[v + 1]
            descended = False
            while p < end:
                i = indices[p]
                p += 1
                if i > v and not visited[i]:
                    # Descend into the unvisited dependent column i.
                    edge_stack[depth] = p
                    depth += 1
                    vertex_stack[depth] = i
                    edge_stack[depth] = indptr[i]
                    visited[i] = True
                    descended = True
                    break
            if not descended:
                # v is finished: emit it and pop.
                top -= 1
                out[top] = v
                depth -= 1
            # else: continue the loop with the child on top of the stack.
    return out[top:].copy()


def reach_set(L: CSCMatrix, b_pattern: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reach set of ``b_pattern`` in DG_L, in topological order.

    ``L`` must be lower triangular; only its pattern is used.
    """
    if not L.is_square():
        raise ValueError("reach sets are defined for square matrices")
    if not L.is_lower_triangular():
        raise ValueError("reach_set expects a lower-triangular matrix")
    return reach_set_from_arrays(L.n, L.indptr, L.indices, b_pattern)


def reach_set_sorted(L: CSCMatrix, b_pattern: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reach set in ascending column order.

    For a lower-triangular matrix ascending column order is itself a valid
    topological order (every edge goes from a lower column to a higher one),
    so this is interchangeable with :func:`reach_set` for executing a solve,
    and more convenient for grouping the reach set into supernode blocks.
    """
    return np.sort(reach_set(L, b_pattern))
