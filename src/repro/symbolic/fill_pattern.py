"""Fill-in prediction: row and column patterns of the Cholesky factor.

Two closely related questions are answered here, both purely symbolic:

* ``ereach(A, k, parent)`` — the nonzero pattern of *row* ``k`` of ``L``,
  i.e. the set of columns ``j < k`` with ``L[k, j] != 0``.  This is the
  *prune-set* used by the VI-Prune transformation in the Cholesky update
  phase (Figure 4 and Table 1 of the paper): when factorizing column ``k``
  only those columns contribute updates.
* ``cholesky_pattern(A)`` — the full column pattern of ``L`` including
  fill-in, equation (1) of the paper.  Knowing it ahead of time lets the
  numeric code allocate ``L`` once and never perform dynamic allocation.

Both are computed from the elimination tree by upward traversals bounded by
marked nodes, the standard ``cs_ereach`` technique, giving an overall
``O(|L|)`` symbolic cost.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.utils import lower_triangle
from repro.symbolic.etree import elimination_tree

__all__ = [
    "ereach",
    "row_patterns_of_factor",
    "cholesky_pattern",
    "symbolic_factor_nnz",
    "lu_pattern",
]


def _upper_pattern(A: CSCMatrix) -> CSCMatrix:
    """Pattern holding, per column ``k``, the entries ``A[i, k]`` with ``i <= k``.

    ``ereach`` needs the upper triangle of the symmetric matrix.  If only the
    lower triangle is stored, its transpose provides the upper part.
    """
    if A.is_lower_triangular() and A.n > 1:
        return A.transpose()
    return A


def ereach(A: CSCMatrix, k: int, parent: np.ndarray, *, _upper: CSCMatrix | None = None) -> np.ndarray:
    """Nonzero pattern of row ``k`` of the Cholesky factor ``L``.

    Returns the column indices ``j < k`` such that ``L[k, j] != 0``, in
    ascending order (ascending order is a topological order of the
    elimination tree because ``parent[j] > j``).

    Parameters
    ----------
    A:
        The SPD matrix (full symmetric or lower-triangular storage).
    k:
        Row index.
    parent:
        Elimination tree of ``A``.
    """
    if not (0 <= k < A.n):
        raise IndexError(f"row {k} out of range")
    upper = _upper if _upper is not None else _upper_pattern(A)
    marked = np.zeros(A.n, dtype=bool)
    marked[k] = True
    result: List[int] = []
    rows = upper.col_rows(k)
    for i in rows:
        i = int(i)
        if i > k:
            continue
        # Walk up the etree from i until a marked node is found, collecting
        # the path: every node on it is a nonzero of row k of L.
        path = []
        while not marked[i]:
            path.append(i)
            marked[i] = True
            i = int(parent[i])
            if i == -1:
                break
        result.extend(path)
    result.sort()
    return np.asarray(result, dtype=np.int64)


def row_patterns_of_factor(A: CSCMatrix, parent: np.ndarray | None = None) -> List[np.ndarray]:
    """Row patterns of ``L`` for every row (list of ascending index arrays).

    Row ``k``'s pattern excludes the diagonal; it is exactly the prune-set of
    the Cholesky update phase for column ``k``.
    """
    if parent is None:
        parent = elimination_tree(A)
    upper = _upper_pattern(A)
    return [ereach(A, k, parent, _upper=upper) for k in range(A.n)]


def cholesky_pattern(
    A: CSCMatrix, parent: np.ndarray | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Column pattern of the Cholesky factor ``L`` (with fill-in).

    Implements equation (1) of the paper via row subtrees: row ``k`` of ``L``
    has nonzeros in the columns ``ereach(A, k)``, therefore column ``j``
    contains row ``k`` for every ``k`` whose ereach includes ``j``, plus the
    diagonal entry ``(j, j)``.

    Returns
    -------
    (indptr, indices):
        CSC structure arrays of the lower-triangular factor with sorted rows
        per column.
    """
    if parent is None:
        parent = elimination_tree(A)
    n = A.n
    upper = _upper_pattern(A)
    col_rows: List[List[int]] = [[j] for j in range(n)]
    for k in range(n):
        for j in ereach(A, k, parent, _upper=upper):
            col_rows[int(j)].append(k)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        indptr[j + 1] = indptr[j] + len(col_rows[j])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for j in range(n):
        # Rows were appended in increasing k, so each column is already sorted.
        indices[indptr[j] : indptr[j + 1]] = col_rows[j]
    return indptr, indices


def symbolic_factor_nnz(A: CSCMatrix, parent: np.ndarray | None = None) -> int:
    """Number of nonzeros of ``L`` (diagonal included), without forming it."""
    indptr, _ = cholesky_pattern(A, parent)
    return int(indptr[-1])


def lu_pattern(A: CSCMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact column patterns of ``A = L U`` without pivoting (GP symbolic).

    Left-looking LU computes column ``j`` by solving ``L x = A(:, j)`` with
    the ``L`` built so far, so the pattern of ``x`` is the *reach* of the
    pattern of ``A(:, j)`` in the dependence graph of the partial ``L`` — the
    Gilbert–Peierls symbolic step.  Without pivoting the row order is fixed,
    which makes the whole symbolic factorization computable up front, one
    depth-first reach per column; entries above the diagonal land in ``U``
    and the rest in ``L``.

    Returns
    -------
    (l_indptr, l_indices, u_indptr, u_indices):
        CSC structure arrays of the unit-lower-triangular ``L`` (rows
        ascending, so the diagonal is the first entry of every column) and of
        the upper-triangular ``U`` (rows ascending, so the diagonal is the
        last entry of every column).  Both factors store their diagonal
        explicitly; structurally missing diagonals are added (a numerically
        zero pivot is a run-time error of the numeric kernel, not a symbolic
        one).
    """
    if not A.is_square():
        raise ValueError("the LU pattern requires a square matrix")
    n = A.n
    l_cols: List[np.ndarray] = []  # off-diagonal rows (> j) of L column j
    u_cols: List[np.ndarray] = []  # above-diagonal rows (< j) of U column j
    marked = np.full(n, -1, dtype=np.int64)  # column currently marking a node
    stack = np.empty(n, dtype=np.int64)
    for j in range(n):
        reached: List[int] = []
        marked[j] = j  # the diagonal is always structural
        for i0 in A.col_rows(j):
            # Depth-first reach in the DAG of the already-built L columns:
            # a node k < j forwards to the off-diagonal rows of L(:, k).
            # Nodes are marked when pushed, so each is stacked at most once
            # per column and the fixed-size stack cannot overflow.
            i0 = int(i0)
            if marked[i0] == j:
                continue
            marked[i0] = j
            reached.append(i0)
            top = 0
            stack[0] = i0
            while top >= 0:
                i = int(stack[top])
                top -= 1
                if i < j:
                    for r in l_cols[i]:
                        r = int(r)
                        if marked[r] != j:
                            marked[r] = j
                            reached.append(r)
                            top += 1
                            stack[top] = r
        reached_arr = np.asarray(sorted(reached), dtype=np.int64)
        u_cols.append(reached_arr[reached_arr < j])
        l_cols.append(reached_arr[reached_arr > j])
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    u_indptr = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        l_indptr[j + 1] = l_indptr[j] + 1 + l_cols[j].size  # + unit diagonal
        u_indptr[j + 1] = u_indptr[j] + u_cols[j].size + 1  # + pivot
    l_indices = np.empty(int(l_indptr[-1]), dtype=np.int64)
    u_indices = np.empty(int(u_indptr[-1]), dtype=np.int64)
    for j in range(n):
        l_indices[l_indptr[j]] = j
        l_indices[l_indptr[j] + 1 : l_indptr[j + 1]] = l_cols[j]
        u_indices[u_indptr[j] : u_indptr[j + 1] - 1] = u_cols[j]
        u_indices[u_indptr[j + 1] - 1] = j
    return l_indptr, l_indices, u_indptr, u_indices


def fill_in_count(A: CSCMatrix, parent: np.ndarray | None = None) -> int:
    """Number of fill-in entries: ``nnz(L) - nnz(tril(A))``."""
    nnz_l = symbolic_factor_nnz(A, parent)
    nnz_tril = lower_triangle(A).nnz
    return nnz_l - nnz_tril
