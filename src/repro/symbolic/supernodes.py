"""Supernode detection.

A *supernode* is a maximal range of consecutive columns whose below-diagonal
nonzero structure is identical, so the block they form can be treated as a
dense trapezoid.  The VS-Block transformation (§2.3.2) converts column-wise
sparse code into dense sub-kernels over these variable-sized blocks.

Two detectors are provided, matching Table 1 of the paper:

* :func:`triangular_supernodes` — node-equivalence on the dependence graph of
  an already-formed lower-triangular matrix ``L`` (used for triangular solve).
* :func:`cholesky_supernodes` — the etree/column-count rule used for Cholesky,
  which needs only the *predicted* factor structure, i.e. it runs before any
  numeric factorization: columns ``j-1`` and ``j`` merge when
  ``colcount[j] == colcount[j-1] - 1`` and ``j-1`` is the only child of ``j``
  in the elimination tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import child_counts

__all__ = [
    "SupernodePartition",
    "triangular_supernodes",
    "cholesky_supernodes",
    "supernodes_from_boundaries",
]


@dataclass(frozen=True)
class SupernodePartition:
    """A partition of the columns ``0..n-1`` into consecutive supernodes.

    Attributes
    ----------
    super_ptr:
        ``int64`` array of length ``n_supernodes + 1``; supernode ``s`` spans
        columns ``super_ptr[s]`` (inclusive) to ``super_ptr[s+1]`` (exclusive).
    col_to_super:
        ``int64`` array of length ``n`` mapping each column to its supernode.
    """

    super_ptr: np.ndarray
    col_to_super: np.ndarray

    def __post_init__(self) -> None:
        sp = np.asarray(self.super_ptr, dtype=np.int64)
        cs = np.asarray(self.col_to_super, dtype=np.int64)
        if sp.size < 1 or sp[0] != 0:
            raise ValueError("super_ptr must start at 0")
        if np.any(np.diff(sp) <= 0):
            raise ValueError("supernodes must be non-empty and consecutive")
        if sp[-1] != cs.size:
            raise ValueError("super_ptr must end at the number of columns")
        object.__setattr__(self, "super_ptr", sp)
        object.__setattr__(self, "col_to_super", cs)

    # ------------------------------------------------------------------ #
    @property
    def n_columns(self) -> int:
        """Total number of columns partitioned."""
        return int(self.col_to_super.size)

    @property
    def n_supernodes(self) -> int:
        """Number of supernodes."""
        return int(self.super_ptr.size - 1)

    def columns(self, s: int) -> Tuple[int, int]:
        """Half-open column range ``(start, end)`` of supernode ``s``."""
        if not (0 <= s < self.n_supernodes):
            raise IndexError(f"supernode {s} out of range")
        return int(self.super_ptr[s]), int(self.super_ptr[s + 1])

    def width(self, s: int) -> int:
        """Number of columns in supernode ``s``."""
        start, end = self.columns(s)
        return end - start

    def sizes(self) -> np.ndarray:
        """Widths of all supernodes."""
        return np.diff(self.super_ptr)

    def average_size(self) -> float:
        """Mean supernode width — the VS-Block participation heuristic input."""
        sizes = self.sizes()
        return float(sizes.mean()) if sizes.size else 0.0

    def max_size(self) -> int:
        """Largest supernode width."""
        sizes = self.sizes()
        return int(sizes.max()) if sizes.size else 0

    def supernode_of(self, j: int) -> int:
        """Supernode containing column ``j``."""
        return int(self.col_to_super[j])

    def iter_supernodes(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(s, start_col, end_col)`` for every supernode."""
        for s in range(self.n_supernodes):
            start, end = self.columns(s)
            yield s, start, end

    def is_trivial(self) -> bool:
        """True when every supernode is a single column."""
        return self.n_supernodes == self.n_columns


def supernodes_from_boundaries(boundaries: List[int] | np.ndarray, n: int) -> SupernodePartition:
    """Build a partition from a list of supernode start columns.

    ``boundaries`` must start with 0 and be strictly increasing; ``n`` is the
    total column count (appended as the final sentinel).
    """
    starts = list(int(b) for b in boundaries)
    if not starts or starts[0] != 0:
        raise ValueError("boundaries must start with column 0")
    super_ptr = np.asarray(starts + [int(n)], dtype=np.int64)
    col_to_super = np.empty(n, dtype=np.int64)
    for s in range(super_ptr.size - 1):
        col_to_super[super_ptr[s] : super_ptr[s + 1]] = s
    return SupernodePartition(super_ptr=super_ptr, col_to_super=col_to_super)


def triangular_supernodes(L: CSCMatrix) -> SupernodePartition:
    """Node-equivalence supernodes of a lower-triangular matrix.

    Column ``j`` joins the supernode of ``j-1`` when the out-edges of the two
    dependence-graph nodes reach the same destinations, i.e. when the row
    pattern of column ``j-1`` below its diagonal equals the full row pattern
    of column ``j`` (diagonal included).
    """
    if not L.is_square():
        raise ValueError("supernode detection requires a square matrix")
    if not L.is_lower_triangular():
        raise ValueError("triangular_supernodes expects a lower-triangular matrix")
    n = L.n
    if n == 0:
        return SupernodePartition(
            super_ptr=np.zeros(1, dtype=np.int64), col_to_super=np.zeros(0, dtype=np.int64)
        )
    boundaries = [0]
    for j in range(1, n):
        prev_rows = L.col_rows(j - 1)
        rows = L.col_rows(j)
        # Drop the diagonal of the previous column (if stored) before comparing.
        prev_below = prev_rows[prev_rows > (j - 1)]
        mergeable = prev_below.size == rows.size and bool(np.array_equal(prev_below, rows))
        if not mergeable:
            boundaries.append(j)
    return supernodes_from_boundaries(boundaries, n)


def cholesky_supernodes(
    col_counts: np.ndarray,
    parent: np.ndarray,
    *,
    max_width: int | None = None,
) -> SupernodePartition:
    """Supernodes of the (not yet formed) Cholesky factor.

    Implements the merging rule of §3.2: adjacent columns ``j-1`` and ``j``
    belong to the same supernode when the nonzero count of column ``j-1``
    excluding its diagonal equals that of column ``j`` and ``j-1`` is the only
    child of ``j`` in the elimination tree.

    Parameters
    ----------
    col_counts:
        Column counts of ``L`` (diagonal included).
    parent:
        Elimination tree of the matrix being factorized.
    max_width:
        Optional cap on supernode width (panel-size control for the numeric
        phase); ``None`` means unlimited.
    """
    col_counts = np.asarray(col_counts, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    n = col_counts.size
    if parent.size != n:
        raise ValueError("col_counts and parent must have the same length")
    if n == 0:
        return SupernodePartition(
            super_ptr=np.zeros(1, dtype=np.int64), col_to_super=np.zeros(0, dtype=np.int64)
        )
    n_children = child_counts(parent)
    boundaries = [0]
    current_width = 1
    for j in range(1, n):
        mergeable = (
            col_counts[j] == col_counts[j - 1] - 1
            and parent[j - 1] == j
            and n_children[j] == 1
        )
        if max_width is not None and current_width >= max_width:
            mergeable = False
        if mergeable:
            current_width += 1
        else:
            boundaries.append(j)
            current_width = 1
    return supernodes_from_boundaries(boundaries, n)
