"""The central metrics registry: counters, gauges, histograms, reservoirs.

One process-wide :class:`MetricsRegistry` (:func:`get_registry`) is the
single aggregation point the four legacy stats surfaces plumb into:

* :class:`~repro.service.metrics.ServiceMetrics` — pushes its counters as a
  ``service`` collector (registered per :class:`~repro.service.session.SolverService`)
  and records latencies through this module's :class:`Reservoir`,
* :class:`~repro.compiler.cache.CacheStats` — pulled by the
  ``artifact_cache`` collector (the process-wide shared compiler cache),
* :class:`~repro.compiler.codegen.c_backend.DiskCacheStats` — pulled by the
  ``disk_cache`` collector,
* :class:`~repro.frontend.specialized.FrontendStats` — pulled by the
  ``frontend`` collector (the process-wide default front end).

Push metrics (counters/gauges/histograms/reservoirs) are created lazily and
labeled (``registry.counter("phase_seconds_total", phase="inspect")``);
pull metrics are *collectors* — zero-overhead adapters polled only at
snapshot/export time, so the legacy surfaces keep their exact APIs and hot
paths while still appearing in one unified document
(:func:`~repro.observe.exporters.snapshot`, Prometheus text, the service's
``metrics`` wire verb).

Everything is thread-safe and stdlib-only.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "Reservoir",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_RESERVOIR_SAMPLES",
]

#: Samples kept per reservoir for quantile estimation (a sliding window;
#: enough for stable p95 under the smoke workloads without unbounded growth).
#: Re-homed here from ``repro.service.metrics`` so every surface shares one
#: quantile implementation.
DEFAULT_RESERVOIR_SAMPLES = 4096


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples`` by linear interpolation.

    Stdlib-only (the wire layer keeps numpy out of metric aggregation so a
    thin monitoring client could reuse it); empty input returns 0.0.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    ordered = sorted(samples)
    return _percentile_sorted(ordered, q)


def _percentile_sorted(ordered: List[float], q: float) -> float:
    """Percentile of an already-sorted sample list (shared sort amortized)."""
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Counter:
    """A monotonically increasing (float-valued) counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self.value += n

    def get(self) -> float:
        with self._lock:
            return self.value


class Gauge:
    """A value that goes up and down (queue depth, cache size, ...)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, n: float) -> None:
        with self._lock:
            self.value += n

    def get(self) -> float:
        with self._lock:
            return self.value


#: Default histogram buckets: upper bounds in seconds, spanning the µs-scale
#: compiled numeric kernels through multi-second cc invocations.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` convention)."""

    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self.counts)
            total = self.total
            count = self.count
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "sum": total,
            "count": count,
        }


class Reservoir:
    """A bounded sliding-window sample reservoir with consistent quantiles.

    Re-homed from ``repro.service.metrics``: the latency deque, its running
    count/total and the quantile math now live behind one lock, and
    :meth:`quantiles` computes every requested percentile from **one**
    consistent copy of the samples taken under that lock — a snapshot can
    never mix samples from different moments into its p50 and p95.
    """

    __slots__ = ("_lock", "_samples", "count", "total")

    def __init__(self, maxlen: int = DEFAULT_RESERVOIR_SAMPLES) -> None:
        self._lock = threading.Lock()
        self._samples: deque = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.total += value

    def snapshot(self) -> Tuple[List[float], int, float]:
        """One consistent ``(samples, count, total)`` copy under the lock."""
        with self._lock:
            return list(self._samples), self.count, self.total

    def quantiles(self, qs: Iterable[float]) -> Dict[float, float]:
        """Percentiles computed from one consistent sample copy, sorted once."""
        samples, _, _ = self.snapshot()
        ordered = sorted(samples)
        return {float(q): _percentile_sorted(ordered, float(q)) for q in qs}

    def summary(self, qs: Iterable[float] = (50.0, 95.0)) -> Dict[str, float]:
        """Count/mean plus the requested percentiles, all from one copy."""
        samples, count, total = self.snapshot()
        ordered = sorted(samples)
        out: Dict[str, float] = {
            "count": count,
            "mean_seconds": (total / count) if count else 0.0,
        }
        for q in qs:
            key = f"p{int(q) if float(q).is_integer() else q}_seconds"
            out[key] = _percentile_sorted(ordered, float(q))
        return out


LabeledKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> LabeledKey:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Render ``name{a="x",b="y"}`` (deterministic label order)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe registry of labeled metrics plus pull-mode collectors.

    Metrics are created lazily by :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` / :meth:`reservoir` — repeated calls with the same
    ``(name, labels)`` return the same object, so callsites keep no
    references.  Asking for an existing name with a different metric kind
    raises (one name, one type).

    Collectors are named zero-argument callables returning a (possibly
    nested) dict of numbers; they are polled only by :meth:`collect` /
    :meth:`snapshot` / :meth:`to_prometheus`, never on a hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[LabeledKey, object] = {}
        self._kinds: Dict[str, type] = {}
        self._collectors: Dict[str, Callable[[], Mapping]] = {}

    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, labels: Mapping, kind: type, factory):
        key = _key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if not isinstance(metric, kind):
                    raise TypeError(
                        f"metric {name!r} is a {type(metric).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return metric
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise TypeError(
                    f"metric name {name!r} already registered as "
                    f"{registered.__name__}"
                )
            metric = factory()
            self._metrics[key] = metric
            self._kinds[name] = kind
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create one labeled counter."""
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create one labeled gauge."""
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get or create one labeled histogram (buckets fixed on creation)."""
        return self._get_or_create(
            name, labels, Histogram, lambda: Histogram(buckets)
        )

    def reservoir(
        self, name: str, maxlen: int = DEFAULT_RESERVOIR_SAMPLES, **labels
    ) -> Reservoir:
        """Get or create one labeled quantile reservoir."""
        return self._get_or_create(
            name, labels, Reservoir, lambda: Reservoir(maxlen)
        )

    # ------------------------------------------------------------------ #
    def register_collector(
        self,
        name: str,
        fn: Callable[[], Mapping],
        *,
        replace: bool = False,
    ) -> str:
        """Register a pull-mode collector; returns the name actually used.

        A taken name gets a ``_2``/``_3``... suffix unless ``replace=True``
        (used by the idempotent default adapters), so several service
        instances can coexist in one registry.
        """
        with self._lock:
            actual = name
            if not replace:
                i = 2
                while actual in self._collectors:
                    actual = f"{name}_{i}"
                    i += 1
            self._collectors[actual] = fn
            return actual

    def unregister_collector(self, name: str) -> bool:
        with self._lock:
            return self._collectors.pop(name, None) is not None

    def collector_names(self) -> List[str]:
        with self._lock:
            return sorted(self._collectors)

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Poll every collector; a raising collector contributes its error."""
        with self._lock:
            collectors = dict(self._collectors)
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(collectors):
            try:
                out[name] = dict(collectors[name]())
            except Exception as exc:  # never let one adapter break a scrape
                out[name] = {"collector_error": f"{type(exc).__name__}: {exc}"}
        return out

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """One deterministic JSON-friendly view of every metric + collector."""
        with self._lock:
            items = sorted(self._metrics.items())
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        reservoirs: Dict[str, object] = {}
        for (name, labels), metric in items:
            rendered = render_key(name, labels)
            if isinstance(metric, Counter):
                counters[rendered] = metric.get()
            elif isinstance(metric, Gauge):
                gauges[rendered] = metric.get()
            elif isinstance(metric, Histogram):
                histograms[rendered] = metric.snapshot()
            elif isinstance(metric, Reservoir):
                reservoirs[rendered] = metric.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "reservoirs": reservoirs,
            "collectors": self.collect(),
        }

    def reset(self) -> None:
        """Drop every metric (collectors stay registered); tests only."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()

    # ------------------------------------------------------------------ #
    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (version 0.0.4) of the whole registry.

        Push metrics export under their own names; collector values flatten
        to gauges named ``<prefix>_<collector>_<key>``.  Output is sorted and
        deterministic for a fixed registry state.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        lines: List[str] = []
        typed: set = set()

        def emit_type(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), metric in items:
            full = _prom_name(f"{prefix}_{name}")
            if isinstance(metric, Counter):
                emit_type(full, "counter")
                lines.append(f"{full}{_prom_labels(labels)} {_prom_num(metric.get())}")
            elif isinstance(metric, Gauge):
                emit_type(full, "gauge")
                lines.append(f"{full}{_prom_labels(labels)} {_prom_num(metric.get())}")
            elif isinstance(metric, Histogram):
                emit_type(full, "histogram")
                snap = metric.snapshot()
                acc = 0
                for bound, count in zip(snap["buckets"], snap["counts"]):
                    acc += count
                    le = labels + (("le", _prom_num(bound)),)
                    lines.append(f"{full}_bucket{_prom_labels(le)} {acc}")
                acc += snap["counts"][-1]
                inf = labels + (("le", "+Inf"),)
                lines.append(f"{full}_bucket{_prom_labels(inf)} {acc}")
                lines.append(f"{full}_sum{_prom_labels(labels)} {_prom_num(snap['sum'])}")
                lines.append(f"{full}_count{_prom_labels(labels)} {snap['count']}")
            elif isinstance(metric, Reservoir):
                emit_type(full, "summary")
                samples, count, total = metric.snapshot()
                ordered = sorted(samples)
                for q in (0.5, 0.95):
                    ql = labels + (("quantile", _prom_num(q)),)
                    value = _percentile_sorted(ordered, q * 100.0)
                    lines.append(f"{full}{_prom_labels(ql)} {_prom_num(value)}")
                lines.append(f"{full}_sum{_prom_labels(labels)} {_prom_num(total)}")
                lines.append(f"{full}_count{_prom_labels(labels)} {count}")
        for cname, values in self.collect().items():
            for key, value in sorted(_flatten(values).items()):
                if isinstance(value, bool):
                    value = float(value)
                elif not isinstance(value, (int, float)):
                    continue  # strings (backend names, errors) stay JSON-only
                full = _prom_name(f"{prefix}_{cname}_{key}")
                emit_type(full, "gauge")
                lines.append(f"{full} {_prom_num(value)}")
        return "\n".join(lines) + "\n"


def _flatten(values: Mapping, prefix: str = "") -> Dict[str, object]:
    """Flatten nested collector dicts: ``{"a": {"b": 1}}`` → ``{"a_b": 1}``."""
    out: Dict[str, object] = {}
    for key, value in values.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(_flatten(value, f"{name}_"))
        else:
            out[name] = value
    return out


def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)


def _prom_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_escape(v)}"' for k, v in labels)
    return f"{{{inner}}}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_num(value: float) -> str:
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


#: The process-wide default registry every adapter and span plumbs into.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
