"""``python -m repro.observe`` — the live amortization breakdown.

Runs a small scripted workload (one structure compiled once, then many
numeric solves against fresh right-hand sides — the paper's
factor-once/solve-many shape) with tracing enabled, then prints the
accumulated per-phase breakdown: inspection vs. lowering vs. codegen vs.
cc vs. numeric, cumulative.  This is the Fig. 8/9 amortization argument of
conf_sc_CheshmiKSD17 reproduced from a real run.

``--trace-out trace.json`` additionally dumps the span timeline in Chrome
trace-event format (load it at ``chrome://tracing`` or
https://ui.perfetto.dev), and ``--json snapshot.json`` writes the full
registry snapshot (including the breakdown) as one JSON document.

``--fleet`` runs the workload through a ``--shards``-wide
:class:`~repro.service.fleet.ShardFleet` instead (worker processes with
tracing on, pipelined v2 submits), prints the per-shard health summary and
the structured event log, and — with ``--trace-out`` — writes the **merged**
fleet Chrome trace: client and shard spans share trace ids, one ``pid`` per
shard process, clock-offset corrected.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import observe


def _run_workload(args) -> dict:
    """Compile once, solve ``--solves`` times; return basic sanity facts."""
    from repro.compiler.cache import ArtifactCache
    from repro.compiler.codegen.c_backend import c_compiler_available
    from repro.compiler.options import SympilerOptions
    import repro.compiler.sympiler as sympiler_module
    from repro.frontend.specialized import SpecializedSolver
    from repro.sparse.generators import laplacian_2d

    options = SympilerOptions()
    backend = args.backend
    if backend is None:
        backend = "c" if c_compiler_available(options.c_compiler) else "python"
    options = options.with_updates(backend=backend)
    if args.wavefront:
        options = options.with_updates(parallel="wavefront")

    A = laplacian_2d(args.grid, shift=0.1)
    rng = np.random.default_rng(7)

    # A fresh in-process artifact cache so the symbolic phases actually run
    # (instead of being memoized away from a previous workload in the same
    # process); the on-disk cache still applies, which is the point — a warm
    # disk means the "cc" row shows ~0s while "numeric" accumulates.
    shared_before = sympiler_module._SHARED_CACHE
    sympiler_module._SHARED_CACHE = ArtifactCache()
    try:
        front = SpecializedSolver(options=options)
        checks = 0
        for _ in range(max(1, args.solves)):
            b = rng.standard_normal(A.n)
            x = front.solve(A, b)
            checks += int(np.isfinite(x).all())
    finally:
        sympiler_module._SHARED_CACHE = shared_before
    return {
        "backend": backend,
        "n": A.n,
        "solves": max(1, args.solves),
        "solves_finite": checks,
        "frontend": front.stats.as_dict(),
    }


def _run_fleet_workload(args) -> dict:
    """Run the workload through a traced ShardFleet; return facts + trace doc."""
    import tempfile

    from repro.compiler.codegen.c_backend import c_compiler_available
    from repro.compiler.options import SympilerOptions
    from repro.service.fleet import ShardFleet
    from repro.sparse.generators import banded_spd, laplacian_2d

    backend = args.backend
    if backend is None:
        backend = (
            "c" if c_compiler_available(SympilerOptions().c_compiler) else "python"
        )
    rng = np.random.default_rng(7)
    matrices = [
        laplacian_2d(args.grid, shift=0.1),
        banded_spd(args.grid * args.grid, 3, seed=3),
    ]
    solves = max(1, args.solves)
    with tempfile.TemporaryDirectory(prefix="repro-observe-fleet-") as tmp:
        with ShardFleet(
            shards=args.shards,
            backend=backend,
            cache_dir=tmp,
            trace=True,
        ) as fleet:
            handles = [fleet.register_pattern(A) for A in matrices]
            futures = []
            for i in range(solves):
                A = matrices[i % len(matrices)]
                handle = handles[i % len(handles)]
                b = rng.standard_normal(A.n)
                futures.append(fleet.submit(handle, A.data, b))
            checks = 0
            for future in futures:
                x = future.result(timeout=120.0)
                checks += int(np.isfinite(x).all())
            health = fleet.health()
            trace_doc = fleet.chrome_trace()
    return {
        "backend": backend,
        "n": matrices[0].n,
        "shards": args.shards,
        "solves": solves,
        "solves_finite": checks,
        "health": health,
        "trace_doc": trace_doc,
    }


def _print_fleet_summary(facts: dict) -> None:
    health = facts["health"]
    sys.stdout.write(
        f"fleet: status={health['status']} shards={health['shards_healthy']}/"
        f"{health['shards']} patterns={health['registered_patterns']} "
        f"uptime={health['uptime_seconds']:.1f}s\n"
    )
    for slot, doc in sorted(health["per_shard"].items()):
        sys.stdout.write(
            f"  shard {slot}: status={doc.get('status')} "
            f"patterns={doc.get('registered_patterns', '?')} "
            f"wire=v{doc.get('wire_version', '?')} "
            f"pid={doc.get('pid', '?')}\n"
        )
    log = observe.get_event_log()
    kinds = log.kinds()
    if kinds:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        sys.stdout.write(f"events: {rendered}\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe", description=__doc__
    )
    parser.add_argument(
        "--grid", type=int, default=24, help="laplacian_2d grid side (n = grid^2)"
    )
    parser.add_argument(
        "--solves", type=int, default=32, help="numeric solves after the one compile"
    )
    parser.add_argument(
        "--backend",
        choices=["python", "c"],
        default=None,
        help="force a backend (default: c when a toolchain exists, else python)",
    )
    parser.add_argument(
        "--wavefront",
        action="store_true",
        help="compile level-parallel (parallel='wavefront') and record "
        "per-wavefront-level timings",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="run the workload through a traced ShardFleet and merge every "
        "shard's spans into one Chrome trace",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="fleet width for --fleet (default: 2)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the span timeline as Chrome trace-event JSON to this path "
        "(with --fleet: the merged multi-process trace)",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="write the full registry snapshot (plus breakdown) to this path",
    )
    args = parser.parse_args(argv)

    observe.enable(wavefront_levels=args.wavefront)
    try:
        if args.fleet:
            facts = _run_fleet_workload(args)
        else:
            facts = _run_workload(args)
    finally:
        observe.disable()

    trace_doc = facts.pop("trace_doc", None)
    data = observe.breakdown()
    sys.stdout.write(observe.format_breakdown(data) + "\n")
    sys.stdout.write(
        f"workload: backend={facts['backend']} n={facts['n']} "
        f"solves={facts['solves']}\n"
    )
    if args.fleet:
        _print_fleet_summary(facts)

    if args.trace_out:
        if trace_doc is not None:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(trace_doc, fh, indent=2, sort_keys=True)
            shard_pids = sorted(
                {e["pid"] for e in trace_doc["traceEvents"] if e.get("ph") == "X"}
            )
            sys.stdout.write(
                f"merged chrome trace written to {args.trace_out} "
                f"(pids: {shard_pids})\n"
            )
        else:
            observe.write_chrome_trace(args.trace_out)
            sys.stdout.write(f"chrome trace written to {args.trace_out}\n")
    if args.json:
        doc = {
            "workload": facts,
            "breakdown": data,
            "snapshot": observe.snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        sys.stdout.write(f"registry snapshot written to {args.json}\n")

    if facts["solves_finite"] != facts["solves"]:
        sys.stderr.write("workload produced non-finite solutions\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
