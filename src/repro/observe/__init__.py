"""Unified observability: metrics registry, pipeline tracing, exporters.

This package is the one place timing and counters live.  It replaces four
ad-hoc surfaces that grew organically (``repro.service.metrics``'s
``ServiceMetrics``, the in-memory ``ArtifactCache.stats``, the on-disk
``disk_cache_stats()``, and the frontend's ``FrontendStats``) — all four
keep their public APIs but are now visible through one
:class:`~repro.observe.registry.MetricsRegistry` via pull-mode adapters.

Three layers:

* **registry** — counters / gauges / histograms / reservoirs, labeled
  (``registry.counter("solves", kernel="cholesky")``), plus pull-mode
  *collectors* polled only at snapshot time.
* **trace** — nestable spans (``with observe.span("inspect"): ...``)
  instrumenting ingest → probe → inspection → lowering → codegen → cc →
  schedule → numeric → service dispatch, with explicit cross-thread
  propagation (:func:`capture` / :func:`attach`).  Zero-cost when disabled.
* **events** — a bounded structured event log
  (:func:`get_event_log` / :func:`emit_event`) recording fleet lifecycle
  edges (shard spawn/death/failover, re-registration, eviction, admission
  rejection, compile cold/warm, stale-lock breaks) plus sampled
  slow-request span trees; optional JSON-lines sink.
* **exporters** — JSON :func:`snapshot`, Chrome :func:`chrome_trace`,
  Prometheus :func:`prometheus_text` (served by the service's ``metrics``
  wire verb), and the paper's Fig. 8/9 amortization :func:`breakdown`.

Tracing crosses process boundaries: :func:`wire_trace_headers` /
:func:`attach_remote` propagate a :class:`SpanContext` over the service
wire protocol, and ``ShardFleet.chrome_trace()`` merges every shard's
drained span buffer into one clock-offset-corrected Chrome trace.

``python -m repro.observe`` runs a scripted workload with tracing on and
prints the accumulated per-phase breakdown (inspection vs. codegen vs. cc
vs. numeric) — the paper's amortization argument, reproduced live.
"""

from __future__ import annotations

from repro.observe.adapters import install_default_collectors
from repro.observe.events import (
    Event,
    EventLog,
    configure_events,
    emit_event,
    get_event_log,
)
from repro.observe.exporters import (
    PHASE_GROUPS,
    breakdown,
    chrome_trace,
    chrome_trace_events,
    format_breakdown,
    phase_totals,
    process_name_event,
    prometheus_text,
    relabel_prometheus_text,
    snapshot,
    write_chrome_trace,
)
from repro.observe.registry import (
    DEFAULT_RESERVOIR_SAMPLES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    get_registry,
    percentile,
)
from repro.observe.trace import (
    Span,
    SpanContext,
    Tracer,
    attach,
    attach_remote,
    capture,
    disable,
    enable,
    enabled,
    get_tracer,
    reset,
    span,
    wavefront_levels_enabled,
    wire_trace_headers,
)

__all__ = [
    "Counter",
    "DEFAULT_RESERVOIR_SAMPLES",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASE_GROUPS",
    "Reservoir",
    "Span",
    "SpanContext",
    "Tracer",
    "attach",
    "attach_remote",
    "breakdown",
    "capture",
    "chrome_trace",
    "chrome_trace_events",
    "configure_events",
    "disable",
    "emit_event",
    "enable",
    "enabled",
    "format_breakdown",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "install_default_collectors",
    "percentile",
    "phase_totals",
    "process_name_event",
    "prometheus_text",
    "relabel_prometheus_text",
    "reset",
    "snapshot",
    "span",
    "wavefront_levels_enabled",
    "wire_trace_headers",
    "write_chrome_trace",
]

# The process-wide collectors (disk cache, shared artifact cache, frontend)
# are installed on first import; they cost nothing until a snapshot is taken.
install_default_collectors()
