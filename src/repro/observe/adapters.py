"""Thin adapters plumbing the legacy stats surfaces into the registry.

The four pre-existing counter surfaces keep their APIs untouched:

* ``repro.compiler.codegen.c_backend.disk_cache_stats()`` (DiskCacheStats)
  → pull collector ``disk_cache``
* ``repro.compiler.sympiler._SHARED_CACHE.stats`` (ArtifactCache / CacheStats)
  → pull collector ``artifact_cache``
* ``repro.frontend.specialized.default_frontend().stats`` (FrontendStats)
  → pull collector ``frontend``
* ``repro.service.metrics.ServiceMetrics`` registers its *own* per-instance
  collector on construction (see that module) because services are
  per-instance, not process-wide.

Adapters are *pull-mode*: nothing is pushed on the hot path; the registry
calls these functions only when a snapshot/export is taken, so the legacy
surfaces pay zero extra cost per operation.  Imports happen inside the
collector bodies so ``repro.observe`` never participates in import cycles
with the compiler/frontend packages.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.observe.registry import MetricsRegistry, get_registry

__all__ = ["install_default_collectors"]

_installed = False


def _collect_disk_cache() -> Dict[str, Any]:
    from repro.compiler.codegen.c_backend import disk_cache_stats

    return disk_cache_stats().as_dict()


def _collect_artifact_cache() -> Dict[str, Any]:
    import repro.compiler.sympiler as sympiler_module

    return sympiler_module._SHARED_CACHE.stats.as_dict()


def _collect_frontend() -> Dict[str, Any]:
    import repro.frontend.specialized as specialized_module

    front = specialized_module._default_frontend
    if front is None:
        # No default front end has been materialised yet — report a zeroed
        # snapshot so the document shape stays stable across runs.
        return specialized_module.FrontendStats().as_dict()
    return front.stats.as_dict()


def install_default_collectors(registry: Optional[MetricsRegistry] = None) -> None:
    """Register the process-wide pull collectors (idempotent)."""
    global _installed
    reg = registry or get_registry()
    if registry is None and _installed:
        return
    reg.register_collector("disk_cache", _collect_disk_cache, replace=True)
    reg.register_collector("artifact_cache", _collect_artifact_cache, replace=True)
    reg.register_collector("frontend", _collect_frontend, replace=True)
    if registry is None:
        _installed = True
