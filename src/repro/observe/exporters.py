"""Export surfaces: JSON snapshot, Chrome trace events, Prometheus text,
and the paper's amortization breakdown.

Three consumers, one source of truth (the default registry + tracer):

* :func:`snapshot` — a JSON-serialisable document with every counter,
  gauge, histogram, reservoir summary, and pull-collector output.  This is
  what ``cache_probe --json`` embeds and what tests assert against.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``chrome://tracing`` / Perfetto trace-event format (``ph: "X"`` complete
  events, microsecond timestamps) built from the tracer's finished spans.
* :func:`prometheus_text` — the Prometheus text exposition format (0.0.4),
  served live by the service's ``metrics`` wire verb.

:func:`breakdown` reduces the per-phase counters into the paper's Fig. 8/9
accumulated-time groups (inspection / lowering / codegen / cc / numeric /
serving), and :func:`format_breakdown` renders it as the table
``python -m repro.observe`` prints.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.observe.registry import MetricsRegistry, get_registry
from repro.observe.trace import Tracer, get_tracer

__all__ = [
    "PHASE_GROUPS",
    "breakdown",
    "chrome_trace",
    "chrome_trace_events",
    "format_breakdown",
    "phase_totals",
    "process_name_event",
    "prometheus_text",
    "relabel_prometheus_text",
    "snapshot",
    "write_chrome_trace",
]

# The paper's amortization story groups leaf phases into the Fig. 8/9
# categories.  Only *leaf* span names appear here — parent spans like
# "compile" (which wraps inspect/lower/transform/codegen) and nested detail
# spans like "schedule" (inside "inspect") are excluded so a group never
# double-counts its own children.
PHASE_GROUPS: Dict[str, tuple] = {
    "ingest": ("ingest", "probe"),
    "inspection": ("inspect",),
    "lowering": ("lower", "transform"),
    "codegen": ("codegen", "py-compile"),
    "cc": ("cc",),
    "numeric": ("numeric",),
    "serving": ("coalesce", "dispatch"),
}

# Groups whose sum is the paper's one-time *symbolic* cost; "numeric" is the
# per-solve cost it amortizes against.
SYMBOLIC_GROUPS = ("inspection", "lowering", "codegen", "cc")


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """One JSON-serialisable document over the whole registry."""
    return (registry or get_registry()).snapshot()


def prometheus_text(
    registry: Optional[MetricsRegistry] = None, *, prefix: str = "repro"
) -> str:
    """Prometheus text exposition (format version 0.0.4)."""
    return (registry or get_registry()).to_prometheus(prefix=prefix)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (backslash first)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


# Consumes whole name="value" pairs left to right, so a `name=` fragment
# *inside* a quoted value is never mistaken for a label of its own.
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?:[^"\\]|\\.)*"')


def _split_sample(line: str) -> Optional[tuple]:
    """Split one exposition sample into ``(name, label_body_or_None, rest)``.

    The label block is found by scanning from the first ``{`` with
    quote/escape awareness — a label *value* may legally contain ``{``,
    ``}``, spaces, quotes and backslashes, so naive ``rsplit``/``endswith``
    parsing corrupts such lines.  Returns ``None`` for malformed samples
    (unterminated label block, no value).
    """
    brace = line.find("{")
    space = line.find(" ")
    if brace == -1 or (space != -1 and space < brace):
        name, sep, rest = line.partition(" ")
        if not sep or not name:
            return None
        return name, None, rest.strip()
    i = brace + 1
    in_quotes = False
    escaped = False
    while i < len(line):
        ch = line[i]
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            rest = line[i + 1 :].strip()
            if not rest:
                return None
            return line[:brace], line[brace + 1 : i], rest
        i += 1
    return None


def relabel_prometheus_text(text: str, **labels: str) -> str:
    """Add ``labels`` to every sample in Prometheus exposition ``text``.

    The fleet router uses this to merge per-shard ``metrics`` verb output
    into one scrape page: each shard's samples gain a ``shard="i"`` label so
    identically-named series stay distinguishable.  Pre-existing labels on a
    sample are preserved (and win over an added label of the same name —
    relabelling never silently rewrites a series' own identity); added label
    values are escaped per the exposition format (``\\``, ``"``, newline).
    ``# HELP``/``# TYPE`` comment lines are kept but deduplicated (each
    shard ships its own copy of the same metadata); blank and malformed
    lines are dropped/passed through respectively.
    """
    if not labels:
        return text
    out: List[str] = []
    seen_comments = set()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if stripped not in seen_comments:
                seen_comments.add(stripped)
                out.append(stripped)
            continue
        parsed = _split_sample(stripped)
        if parsed is None:
            out.append(stripped)
            continue
        name, label_body, rest = parsed
        existing = (label_body or "").strip().rstrip(",")
        existing_names = set(_LABEL_PAIR_RE.findall(existing))
        added = ",".join(
            f'{k}="{_escape_label_value(str(v))}"'
            for k, v in sorted(labels.items())
            if k not in existing_names
        )
        merged = ",".join(part for part in (existing, added) if part)
        out.append(f"{name}{{{merged}}} {rest}")
    return "\n".join(out) + "\n"


def phase_totals(registry: Optional[MetricsRegistry] = None) -> Dict[str, Dict[str, float]]:
    """Accumulated seconds and call counts per span name.

    Returns ``{phase: {"seconds": s, "calls": n}}`` pulled from the
    ``phase_seconds_total`` / ``phase_calls_total`` counters the tracer
    maintains.
    """
    reg = registry or get_registry()
    snap = reg.snapshot()
    totals: Dict[str, Dict[str, float]] = {}
    for key, value in snap.get("counters", {}).items():
        for base, field in (("phase_seconds_total", "seconds"), ("phase_calls_total", "calls")):
            marker = base + '{phase="'
            if key.startswith(marker) and key.endswith('"}'):
                phase = key[len(marker) : -2]
                totals.setdefault(phase, {"seconds": 0.0, "calls": 0.0})[field] = value
    return totals


def breakdown(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The amortization breakdown: accumulated seconds per paper phase group.

    Returns ``{"groups": {group: {"seconds", "calls", "phases": {...}}},
    "symbolic_seconds", "numeric_seconds", "amortization_ratio", "other": {...}}``.
    ``amortization_ratio`` is symbolic/numeric — how many "numeric units" the
    one-time inspection+compilation cost is worth (the paper's break-even
    count); 0.0 when no numeric time was recorded.
    """
    totals = phase_totals(registry)
    grouped_phases = {p for phases in PHASE_GROUPS.values() for p in phases}
    groups: Dict[str, Any] = {}
    for group, phases in PHASE_GROUPS.items():
        present = {p: totals[p] for p in phases if p in totals}
        groups[group] = {
            "seconds": sum(v["seconds"] for v in present.values()),
            "calls": sum(v["calls"] for v in present.values()),
            "phases": {p: dict(v) for p, v in sorted(present.items())},
        }
    symbolic = sum(groups[g]["seconds"] for g in SYMBOLIC_GROUPS)
    numeric = groups["numeric"]["seconds"]
    other = {p: dict(v) for p, v in sorted(totals.items()) if p not in grouped_phases}
    return {
        "groups": groups,
        "symbolic_seconds": symbolic,
        "numeric_seconds": numeric,
        "amortization_ratio": (symbolic / numeric) if numeric > 0.0 else 0.0,
        "other": other,
    }


def format_breakdown(data: Optional[Dict[str, Any]] = None) -> str:
    """Render :func:`breakdown` as the aligned table the CLI prints."""
    data = data if data is not None else breakdown()
    groups = data["groups"]
    total = sum(g["seconds"] for g in groups.values())
    lines = []
    header = f"{'phase':<12} {'seconds':>12} {'calls':>8} {'share':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, g in groups.items():
        share = (100.0 * g["seconds"] / total) if total > 0 else 0.0
        lines.append(f"{name:<12} {g['seconds']:>12.6f} {int(g['calls']):>8d} {share:>6.1f}%")
        for phase, v in g["phases"].items():
            lines.append(
                f"  {phase:<10} {v['seconds']:>12.6f} {int(v['calls']):>8d}"
            )
    lines.append("-" * len(header))
    lines.append(f"{'total':<12} {total:>12.6f}")
    sym, num = data["symbolic_seconds"], data["numeric_seconds"]
    lines.append(
        f"symbolic (inspection+lowering+codegen+cc): {sym:.6f}s"
        f"   numeric: {num:.6f}s"
    )
    if num > 0:
        lines.append(
            f"amortization: symbolic cost = {data['amortization_ratio']:.2f}x "
            "the accumulated numeric time so far"
        )
    return "\n".join(lines)


def chrome_trace_events(
    span_dicts: Sequence[Dict[str, Any]],
    *,
    pid: int = 1,
    clock_offset: float = 0.0,
) -> List[Dict[str, Any]]:
    """Span dicts (:meth:`Span.as_dict` shape) → Chrome complete events.

    The cross-process building block behind :func:`chrome_trace` and
    :meth:`ShardFleet.chrome_trace`: ``pid`` places the spans in their own
    process track, and ``clock_offset`` (seconds the *span producer's* wall
    clock runs ahead of the merger's) is subtracted from each timestamp so
    spans from differently-clocked processes line up on one timeline.
    """
    events: List[Dict[str, Any]] = []
    for sp in span_dicts:
        args = dict(sp.get("attrs") or {})
        args["trace_id"] = sp.get("trace_id")
        if sp.get("parent_id") is not None:
            args["parent_id"] = sp["parent_id"]
        events.append(
            {
                "name": sp.get("name", "?"),
                "ph": "X",
                "ts": (float(sp.get("start", 0.0)) - clock_offset) * 1e6,
                "dur": float(sp.get("duration_seconds", 0.0)) * 1e6,
                "pid": pid,
                "tid": sp.get("thread") or "main",
                "cat": "repro",
                "args": args,
            }
        )
    return events


def process_name_event(pid: int, name: str) -> Dict[str, Any]:
    """A ``process_name`` metadata record labelling ``pid``'s track."""
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }


def chrome_trace(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document.

    Loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans are
    complete events (``ph: "X"``); timestamps/durations are microseconds;
    each thread renders as its own row (``tid`` = thread name).  Single
    process (``pid: 1``); the fleet-wide merge lives in
    :meth:`ShardFleet.chrome_trace`.
    """
    spans = (tracer or get_tracer()).spans()
    events = chrome_trace_events([sp.as_dict() for sp in spans], pid=1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer: Optional[Tracer] = None) -> None:
    """Serialise :func:`chrome_trace` to ``path`` as JSON."""
    doc = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"), sort_keys=True)
