"""Structured event log: bounded, thread-safe record of fleet lifecycle edges.

Spans answer *"where did the time go"*; events answer *"what happened"*.
Every lifecycle edge in the serving stack emits one :class:`Event` here —
shard spawn/death/failover, warm/cold re-registration, artifact eviction,
admission rejection, compile cold/warm, stale-lock breaks in
``build_file_once`` — plus sampled slow requests that keep their full span
tree as a payload.

The log is a fixed-size in-memory ring (oldest events fall off) with an
optional JSON-lines sink for durable capture.  Emitting is cheap and never
raises: a broken sink disables itself rather than failing the serving path.
Unlike tracing there is no global enable flag — lifecycle edges are rare
(per-shard, per-compile, per-eviction; never per-solve), so recording them
unconditionally costs nothing measurable, and the ring means an idle
process holds at most ``max_events`` small dicts.

Schema (one JSON object per line in the sink, same shape from
:meth:`Event.as_dict`)::

    {"kind": "shard_death", "wall_time": 1754650000.123, "seq": 17,
     "attrs": {"slot": 1, "generation": 0}}

``kind`` is a small closed vocabulary (see the emit sites); ``attrs`` is
kind-specific.  ``seq`` is a process-local monotonic sequence number so
readers can order events emitted within one wall-clock tick.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SLOW_REQUEST_SECONDS",
    "Event",
    "EventLog",
    "configure",
    "configure_events",
    "emit",
    "emit_event",
    "get_event_log",
]

DEFAULT_MAX_EVENTS = 4096

# Requests slower than this keep their span tree as an event payload; chosen
# well above a warm coalesced solve (~ms) so steady state samples nothing.
DEFAULT_SLOW_REQUEST_SECONDS = 1.0


@dataclass(frozen=True)
class Event:
    """One structured lifecycle event."""

    kind: str
    wall_time: float
    seq: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "wall_time": self.wall_time,
            "seq": self.seq,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """Bounded thread-safe event ring with an optional JSON-lines sink."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        *,
        jsonl_path: Optional[str] = None,
        slow_request_seconds: Optional[float] = DEFAULT_SLOW_REQUEST_SECONDS,
    ) -> None:
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=max_events)
        self._seq = 0
        self._jsonl_path = jsonl_path
        self._sink_broken = False
        self.slow_request_seconds = slow_request_seconds

    # -- recording ----------------------------------------------------------
    def emit(self, kind: str, **attrs: Any) -> Event:
        """Record one event; never raises (a broken sink disables itself)."""
        with self._lock:
            self._seq += 1
            event = Event(kind=kind, wall_time=time.time(), seq=self._seq, attrs=attrs)
            self._events.append(event)
            path = None if self._sink_broken else self._jsonl_path
        if path is not None:
            try:
                line = json.dumps(event.as_dict(), sort_keys=True, default=repr)
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
            except (OSError, TypeError, ValueError):
                with self._lock:
                    self._sink_broken = True
        return event

    # -- reading ------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[Event]:
        """A consistent copy, oldest first; optionally filtered by ``kind``."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [ev for ev in events if ev.kind == kind]
        return events

    def kinds(self) -> Dict[str, int]:
        """Event count per kind (for asserts and the health surface)."""
        counts: Dict[str, int] = {}
        for ev in self.events():
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- configuration ------------------------------------------------------
    def configure(
        self,
        *,
        jsonl_path: Optional[str] = None,
        slow_request_seconds: Optional[float] = None,
    ) -> None:
        """Point the sink at a JSONL file and/or adjust the slow threshold.

        ``jsonl_path=None`` leaves the sink unchanged; pass ``""`` to detach
        it.  ``slow_request_seconds=None`` leaves the threshold unchanged;
        pass ``float("inf")`` to disable slow-request sampling.
        """
        with self._lock:
            if jsonl_path is not None:
                self._jsonl_path = jsonl_path or None
                self._sink_broken = False
        if slow_request_seconds is not None:
            self.slow_request_seconds = slow_request_seconds


_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide event log."""
    return _LOG


def emit(kind: str, **attrs: Any) -> Event:
    """Record one event on the process-wide log."""
    return _LOG.emit(kind, **attrs)


def configure(
    *,
    jsonl_path: Optional[str] = None,
    slow_request_seconds: Optional[float] = None,
) -> None:
    """Configure the process-wide log (see :meth:`EventLog.configure`)."""
    _LOG.configure(jsonl_path=jsonl_path, slow_request_seconds=slow_request_seconds)


# Unambiguous aliases for the package-level namespace (`repro.observe.emit`
# would read as emitting a metric or a span; these don't).
emit_event = emit
configure_events = configure
