"""Structured tracing: nestable, thread-safe spans over the whole pipeline.

A *span* is a named, timed region of work.  Spans nest through a
:class:`contextvars.ContextVar`, so ``with span("compile"): ...`` opened
inside ``with span("solve"): ...`` records ``solve`` as its parent without
any explicit plumbing.  Thread pools do **not** propagate context variables
into workers, so cross-thread attribution is explicit: the submitting side
calls :func:`capture` and the worker wraps its work in
``with attach(ctx): ...`` — the worker's spans then attach to the
submitting request's trace (this is how :class:`~repro.runtime.engine.BatchExecutor`
workers and the service coalescer dispatcher stay attributable).

Tracing is **zero-cost when disabled**: :func:`span` checks one module-level
flag and returns a shared no-op context manager, allocating nothing.  The
disabled-path overhead is bench-gated in CI (``observe`` experiment,
``disabled_overhead_pct``).

Every finished span also bumps ``phase_seconds_total{phase=...}`` /
``phase_calls_total{phase=...}`` counters in the default
:class:`~repro.observe.registry.MetricsRegistry`, which is what the
amortization breakdown (:func:`repro.observe.exporters.breakdown`) and the
``python -m repro.observe`` CLI aggregate.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.observe.registry import get_registry

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "attach",
    "attach_remote",
    "capture",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "reset",
    "span",
    "wavefront_levels_enabled",
    "wire_trace_headers",
]

DEFAULT_MAX_SPANS = 65536

_enabled = False
_wavefront_levels = False


def _fresh_id_counter() -> "itertools.count[int]":
    # Span/trace ids must stay unique across *processes*: a fleet merge
    # (`ShardFleet.chrome_trace`) interleaves spans from every shard, and two
    # shards both counting 1, 2, 3… would alias unrelated spans.  The low 40
    # bits count locally; the high bits carry a per-process random tag (xor'd
    # with the pid so even clones of a forked RNG state diverge).
    tag = int.from_bytes(os.urandom(3), "big") ^ (os.getpid() & 0xFFFFFF)
    return itertools.count((((tag << 1) | 1) << 40) + 1)


_ids = _fresh_id_counter()


@dataclass(frozen=True)
class SpanContext:
    """An immutable handle to a live span, safe to pass across threads."""

    trace_id: int
    span_id: int
    name: str


# The innermost live span of the *current* context (thread / task), or None.
_CURRENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_observe_current_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) timed region.

    ``start`` is a :func:`time.perf_counter` timestamp; ``wall_start`` is a
    :func:`time.time` epoch timestamp used only for export.  ``duration`` is
    seconds and stays 0.0 until the span closes.
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    attrs: Dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    wall_start: float = 0.0
    duration: float = 0.0
    thread: str = ""

    # -- context-manager protocol -------------------------------------------
    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self.wall_start = time.time()
        self.thread = threading.current_thread().name
        self._token = _CURRENT.set(
            SpanContext(trace_id=self.trace_id, span_id=self.span_id, name=self.name)
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        get_tracer()._finish(self)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.wall_start,
            "duration_seconds": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {}


_NOOP = _NoopSpan()


class Tracer:
    """Bounded, thread-safe store of finished spans."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._registry = get_registry()

    def _finish(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)
        self._registry.counter("phase_seconds_total", phase=sp.name).inc(sp.duration)
        self._registry.counter("phase_calls_total", phase=sp.name).inc(1)

    def spans(self) -> List[Span]:
        """A consistent copy of the finished spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def drain(self) -> List[Span]:
        """Atomically snapshot-and-clear the finished spans, oldest first.

        This is what the ``trace`` wire verb serves: each drain hands the
        caller every span finished since the previous drain exactly once, so
        repeated fleet merges never duplicate shard spans.
        """
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer holding finished spans."""
    return _TRACER


def span(name: str, **attrs: Any):
    """Open a timed span; the primary instrumentation entry point.

    Returns a context manager.  When tracing is disabled (the default) this
    is a single module-flag check returning a shared no-op object — the
    pipeline call sites stay in place at effectively zero cost.
    """
    if not _enabled:
        return _NOOP
    parent = _CURRENT.get()
    if parent is None:
        trace_id = next(_ids)
        parent_id = None
    else:
        trace_id = parent.trace_id
        parent_id = parent.span_id
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=next(_ids),
        parent_id=parent_id,
        attrs=dict(attrs) if attrs else {},
    )


def capture() -> Optional[SpanContext]:
    """Snapshot the current span context for hand-off to another thread.

    Returns ``None`` when tracing is disabled or no span is open; passing
    that ``None`` to :func:`attach` is a no-op, so call sites never branch.
    """
    if not _enabled:
        return None
    return _CURRENT.get()


class _Attach:
    """Context manager installing a captured :class:`SpanContext` in this thread."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[SpanContext]) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> Optional[SpanContext]:
        if self._ctx is not None and _enabled:
            self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


def attach(ctx: Optional[SpanContext]) -> _Attach:
    """Adopt a captured context so spans opened here join the captured trace.

    ``attach(None)`` (tracing disabled at capture time, or no open span) is
    a no-op context manager, so worker code wraps unconditionally.
    """
    return _Attach(ctx)


def wire_trace_headers() -> Dict[str, int]:
    """Header keys carrying the current span context across a process boundary.

    Returns ``{"trace_id": ..., "parent_id": ...}`` for the innermost open
    span, or ``{}`` when tracing is disabled or no span is open — so wire
    headers carry **no** trace keys unless there is something to propagate
    (the disabled hot path merges an empty dict).  v1 servers ignore unknown
    header keys, so the caller never needs to version-gate this.
    """
    if not _enabled:
        return {}
    ctx = _CURRENT.get()
    if ctx is None:
        return {}
    return {"trace_id": ctx.trace_id, "parent_id": ctx.span_id}


def attach_remote(
    trace_id: Optional[int], parent_id: Optional[int], name: str = "remote"
) -> _Attach:
    """Adopt a span context propagated from another process.

    The server side calls this with the ``trace_id``/``parent_id`` wire
    header values; spans opened under it join the remote caller's trace,
    parented at the caller's request span.  Missing/malformed ids or
    locally-disabled tracing degrade to a no-op context manager.
    """
    if not _enabled or not isinstance(trace_id, int) or not isinstance(parent_id, int):
        return _Attach(None)
    return _Attach(SpanContext(trace_id=trace_id, span_id=parent_id, name=name))


def enable(*, wavefront_levels: bool = False, max_spans: Optional[int] = None) -> None:
    """Turn tracing on.

    ``wavefront_levels=True`` additionally asks the numeric execution layer
    to read per-level wall times out of wavefront-compiled kernels (the C
    runtime records them only while its own runtime flag is raised; see
    ``repro.compiler.codegen.c_backend``).
    """
    global _enabled, _wavefront_levels, _TRACER
    if max_spans is not None:
        _TRACER = Tracer(max_spans=max_spans)
    _enabled = True
    _wavefront_levels = bool(wavefront_levels)


def disable() -> None:
    """Turn tracing off; already-recorded spans are kept until :func:`reset`."""
    global _enabled, _wavefront_levels
    _enabled = False
    _wavefront_levels = False


def enabled() -> bool:
    return _enabled


def wavefront_levels_enabled() -> bool:
    return _enabled and _wavefront_levels


def reset() -> None:
    """Drop all recorded spans (flag state is left untouched)."""
    _TRACER.clear()
