"""Assemble the transformation pipeline from the configured options."""

from __future__ import annotations

from typing import List

from repro.compiler.options import SympilerOptions
from repro.compiler.transforms.base import Transform, TransformPipeline
from repro.compiler.transforms.lowlevel import (
    LoopDistributeTransform,
    PeelTransform,
    SmallKernelTransform,
    UnrollTransform,
)
from repro.compiler.transforms.vi_prune import VIPruneTransform
from repro.compiler.transforms.vs_block import VSBlockTransform

__all__ = ["build_pipeline"]

_INSPECTOR_GUIDED = {
    "vs-block": VSBlockTransform,
    "vi-prune": VIPruneTransform,
}


def build_pipeline(options: SympilerOptions) -> TransformPipeline:
    """Create the pass sequence for the given options.

    The inspector-guided passes run first (in the configured order, VS-Block
    before VI-Prune by default, matching §4.2), followed by the low-level
    passes when enabled.  Peeling runs before unrolling so freshly peeled
    statements can be unrolled; distribution and the small-kernel switch act
    on the supernodal Cholesky loop only.
    """
    passes: List[Transform] = []
    for name in options.active_transformations():
        passes.append(_INSPECTOR_GUIDED[name]())
    if options.enable_low_level:
        passes.extend(
            [
                PeelTransform(),
                UnrollTransform(),
                LoopDistributeTransform(),
                SmallKernelTransform(),
            ]
        )
    return TransformPipeline(passes)
