"""Assemble the transformation pipeline from the configured options."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.compiler.options import SympilerOptions
from repro.compiler.registration import register_unique
from repro.compiler.transforms.base import Transform, TransformPipeline
from repro.compiler.transforms.lowlevel import (
    LoopDistributeTransform,
    PeelTransform,
    SmallKernelTransform,
    UnrollTransform,
)
from repro.compiler.transforms.vi_prune import VIPruneTransform
from repro.compiler.transforms.vs_block import VSBlockTransform

__all__ = ["build_pipeline", "register_inspector_guided_transform"]

_INSPECTOR_GUIDED = {
    "vs-block": VSBlockTransform,
    "vi-prune": VIPruneTransform,
}


def register_inspector_guided_transform(name: str, cls: type) -> None:
    """Register an additional inspector-guided pass under ``name``.

    Registering a different class under an existing name raises
    ``ValueError``; re-registering the same class is a no-op.
    """
    register_unique(_INSPECTOR_GUIDED, name, cls, kind="inspector-guided transform")


def build_pipeline(
    options: SympilerOptions,
    *,
    transforms: Optional[Iterable[str]] = None,
) -> TransformPipeline:
    """Create the pass sequence for the given options.

    The inspector-guided passes run first (in the configured order, VS-Block
    before VI-Prune by default, matching §4.2), followed by the low-level
    passes when enabled.  Peeling runs before unrolling so freshly peeled
    statements can be unrolled; distribution and the small-kernel switch act
    on the supernodal factorization loop only.

    ``transforms`` optionally restricts the inspector-guided passes to the
    ones a kernel's registry spec declares applicable; ``None`` allows all.
    """
    allowed = None if transforms is None else set(transforms)
    passes: List[Transform] = []
    for name in options.active_transformations():
        if allowed is not None and name not in allowed:
            continue
        passes.append(_INSPECTOR_GUIDED[name]())
    if options.enable_low_level:
        passes.extend(
            [
                PeelTransform(),
                UnrollTransform(),
                LoopDistributeTransform(),
                SmallKernelTransform(),
            ]
        )
    return TransformPipeline(passes)
