"""Variable Iteration-Space Pruning (VI-Prune, §2.3.1).

VI-Prune restricts a loop's iteration space to an inspection set:

* **Triangular solve** — the column loop over ``0..n`` becomes a loop over
  the reach-set computed by the DFS inspector; every use of the original loop
  index is replaced by the corresponding reach-set entry (Figure 3a→3b,
  Figure 1d/1e).
* **Cholesky / LDLᵀ** — the update loop over all columns ``r < j`` becomes a
  loop over the row sparsity pattern of row ``j`` of ``L`` (the prune-set of
  Figure 4); the transformation materializes those per-column sets, together
  with the factor pattern, into flat descriptor arrays so the numeric loop
  performs no pattern look-ups (and no transpose of ``A``) at run time.  Both
  left-looking factorizations share one implementation, differing only in the
  ``factor_kind`` of the produced domain loop.

When VS-Block has already been applied the pass operates on the blocked
structure instead: participating supernode blocks that contain no reached
column are dropped, and the single-column runs are intersected with the
reach-set.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ast import (
    Block,
    Comment,
    ForRange,
    KernelFunction,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    walk,
)
from repro.compiler.transforms.base import (
    CompilationContext,
    MethodDispatchTransform,
)
from repro.compiler.transforms.descriptors import (
    lu_simplicial_descriptors,
    simplicial_descriptors,
)
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    LUInspectionResult,
    TriangularInspectionResult,
)

__all__ = ["VIPruneTransform"]


def _find_prunable_loop(kernel: KernelFunction) -> ForRange | None:
    for node in walk(kernel.body):
        if isinstance(node, ForRange) and node.annotations.get("role") == "column-loop":
            return node
    return None


def _replace_statement(block: Block, old, new_statements: List) -> bool:
    """Replace ``old`` with ``new_statements`` inside ``block`` (recursively)."""
    for i, stmt in enumerate(block.statements):
        if stmt is old:
            block.statements[i : i + 1] = new_statements
            return True
        if isinstance(stmt, Block) and _replace_statement(stmt, old, new_statements):
            return True
        if isinstance(stmt, ForRange) and _replace_statement(stmt.body, old, new_statements):
            return True
    return False


class VIPruneTransform(MethodDispatchTransform):
    """The VI-Prune inspector-guided transformation."""

    name = "vi-prune"
    handlers = {
        "triangular-solve": "_apply_triangular",
        "cholesky": "_apply_cholesky",
        "ldlt": "_apply_ldlt",
        "lu": "_apply_lu",
    }

    # ------------------------------------------------------------------ #
    # Triangular solve
    # ------------------------------------------------------------------ #
    def _apply_triangular(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        inspection = context.inspection
        if not isinstance(inspection, TriangularInspectionResult):
            raise TypeError("triangular-solve VI-Prune needs a triangular inspection")
        reach = inspection.reach
        reach_sorted = inspection.reach_sorted

        blocked = any(
            isinstance(node, (SupernodeTriangularBlock, PrunedColumnSolveLoop))
            for node in walk(kernel.body)
        )
        if blocked:
            self._prune_blocked_triangular(kernel, reach_sorted)
            context.record(self.name, mode="blocked", reach_size=int(reach.size))
            kernel.meta["vi_prune"] = True
            return kernel

        loop = _find_prunable_loop(kernel)
        if loop is None or not loop.annotations.get("prunable", False):
            context.decisions[self.name] = {"skipped": "no prunable loop found"}
            return kernel
        pruned = PrunedColumnSolveLoop(
            columns=reach,
            constant_name="prune_set",
            vectorize=True,
            role="pruned-column-loop",
            source="reach-set",
        )
        replaced = _replace_statement(kernel.body, loop, [
            Comment(f"VI-Prune: iterate the reach-set ({reach.size} of {inspection.n} columns)"),
            pruned,
        ])
        if not replaced:
            raise RuntimeError("failed to replace the prunable column loop")
        if "prune_set" not in kernel.constants:
            kernel.add_constant("prune_set", reach)
        context.record(self.name, mode="loop", reach_size=int(reach.size))
        kernel.meta["vi_prune"] = True
        return kernel

    @staticmethod
    def _prune_blocked_triangular(kernel: KernelFunction, reach_sorted: np.ndarray) -> None:
        """Filter an already VS-Block'd body down to the reach-set."""
        reach_set = set(int(c) for c in reach_sorted)

        def prune_block(block: Block) -> None:
            new_statements: List = []
            for stmt in block.statements:
                if isinstance(stmt, SupernodeTriangularBlock):
                    cols = range(stmt.c0, stmt.c0 + stmt.width)
                    if any(c in reach_set for c in cols):
                        new_statements.append(stmt)
                elif isinstance(stmt, PrunedColumnSolveLoop):
                    kept = np.asarray(
                        [c for c in stmt.columns if int(c) in reach_set], dtype=np.int64
                    )
                    if kept.size:
                        stmt.columns = kept
                        new_statements.append(stmt)
                elif isinstance(stmt, Block):
                    prune_block(stmt)
                    new_statements.append(stmt)
                else:
                    new_statements.append(stmt)
            block.statements = new_statements

        prune_block(kernel.body)

    # ------------------------------------------------------------------ #
    # Left-looking factorizations (Cholesky and LDL^T)
    # ------------------------------------------------------------------ #
    def _apply_cholesky(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="llt")

    def _apply_ldlt(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="ldlt")

    def _apply_lu(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="lu")

    def _apply_left_looking(
        self,
        kernel: KernelFunction,
        context: CompilationContext,
        *,
        factor_kind: str,
    ) -> KernelFunction:
        """Shared left-looking lowering for the LLᵀ, LDLᵀ and LU kernels.

        The symmetric kinds prune the update loop to the row sparsity pattern
        of ``L``; LU prunes it to the symbolic ``U`` pattern of each column
        (the GP reach-set) and additionally embeds the ``U`` pattern arrays.
        Everything else — replacing the annotated column loop by the
        descriptor-carrying domain statement — is identical.
        """
        lu = factor_kind == "lu"
        inspection = context.inspection
        expected_cls = LUInspectionResult if lu else CholeskyInspectionResult
        if not isinstance(inspection, expected_cls):
            raise TypeError(
                f"left-looking VI-Prune for {factor_kind!r} needs a "
                f"{expected_cls.__name__}"
            )

        # If VS-Block already replaced the column loop with a supernodal loop,
        # the prune-sets are already embedded in its descendant descriptors.
        # (The LU handler of VS-Block never produces one.)
        if any(isinstance(node, SupernodalCholeskyLoop) for node in walk(kernel.body)):
            context.record(self.name, mode="subsumed-by-vs-block")
            kernel.meta["vi_prune"] = True
            return kernel
        if any(isinstance(node, SimplicialCholeskyLoop) for node in walk(kernel.body)):
            context.record(self.name, mode="already-applied")
            return kernel

        loop = _find_prunable_loop(kernel)
        if loop is None:
            context.decisions[self.name] = {"skipped": "no column loop found"}
            return kernel
        if lu:
            desc = lu_simplicial_descriptors(context.matrix, inspection)
            kind_kwargs = {
                "u_indptr": inspection.u_indptr,
                "u_indices": inspection.u_indices,
                "role": "simplicial-lu",
            }
            pruned_to = "the symbolic U pattern"
            extra_constants = (
                ("u_indptr", inspection.u_indptr),
                ("u_indices", inspection.u_indices),
            )
        else:
            desc = simplicial_descriptors(context.matrix, inspection)
            kind_kwargs = {"role": "simplicial-cholesky"}
            pruned_to = "the row sparsity pattern of L"
            extra_constants = ()
        simplicial = SimplicialCholeskyLoop(
            n=inspection.n,
            l_indptr=inspection.l_indptr,
            l_indices=inspection.l_indices,
            prune_ptr=desc.prune_ptr,
            update_pos=desc.update_pos,
            update_end=desc.update_end,
            a_diag_pos=desc.a_diag_pos,
            a_col_end=desc.a_col_end,
            update_col=desc.update_col,
            factor_kind=factor_kind,
            vectorize=True,
            **kind_kwargs,
        )
        replaced = _replace_statement(kernel.body, loop, [
            Comment(
                f"VI-Prune: update loop restricted to {pruned_to} "
                f"({int(desc.prune_ptr[-1])} updates in total)"
            ),
            simplicial,
        ])
        if not replaced:
            raise RuntimeError("failed to replace the left-looking column loop")
        for cname, value in (
            ("l_indptr", inspection.l_indptr),
            ("l_indices", inspection.l_indices),
            *extra_constants,
            ("prune_ptr", desc.prune_ptr),
            ("update_pos", desc.update_pos),
            ("update_end", desc.update_end),
        ):
            if cname not in kernel.constants:
                kernel.add_constant(cname, value)
        context.record(self.name, mode="loop", total_updates=int(desc.prune_ptr[-1]))
        kernel.meta["vi_prune"] = True
        return kernel
