"""Variable Iteration-Space Pruning (VI-Prune, §2.3.1).

VI-Prune restricts a loop's iteration space to an inspection set:

* **Triangular solve** — the column loop over ``0..n`` becomes a loop over
  the reach-set computed by the DFS inspector; every use of the original loop
  index is replaced by the corresponding reach-set entry (Figure 3a→3b,
  Figure 1d/1e).
* **Cholesky / LDLᵀ** — the update loop over all columns ``r < j`` becomes a
  loop over the row sparsity pattern of row ``j`` of ``L`` (the prune-set of
  Figure 4); the transformation materializes those per-column sets, together
  with the factor pattern, into flat descriptor arrays so the numeric loop
  performs no pattern look-ups (and no transpose of ``A``) at run time.  Both
  left-looking factorizations share one implementation, differing only in the
  ``factor_kind`` of the produced domain loop.

When VS-Block has already been applied the pass operates on the blocked
structure instead: participating supernode blocks that contain no reached
column are dropped, and the single-column runs are intersected with the
reach-set.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ast import (
    Block,
    Comment,
    ForRange,
    IncompleteFactorLoop,
    KernelFunction,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    walk,
)
from repro.compiler.transforms.base import (
    CompilationContext,
    MethodDispatchTransform,
)
from repro.compiler.transforms.descriptors import (
    ic0_descriptors,
    ilu0_descriptors,
    lu_simplicial_descriptors,
    simplicial_descriptors,
)
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    IC0InspectionResult,
    ILU0InspectionResult,
    LUInspectionResult,
    TriangularInspectionResult,
)

__all__ = ["VIPruneTransform"]


def _find_prunable_loop(kernel: KernelFunction) -> ForRange | None:
    for node in walk(kernel.body):
        if isinstance(node, ForRange) and node.annotations.get("role") == "column-loop":
            return node
    return None


def _replace_statement(block: Block, old, new_statements: List) -> bool:
    """Replace ``old`` with ``new_statements`` inside ``block`` (recursively)."""
    for i, stmt in enumerate(block.statements):
        if stmt is old:
            block.statements[i : i + 1] = new_statements
            return True
        if isinstance(stmt, Block) and _replace_statement(stmt, old, new_statements):
            return True
        if isinstance(stmt, ForRange) and _replace_statement(stmt.body, old, new_statements):
            return True
    return False


class VIPruneTransform(MethodDispatchTransform):
    """The VI-Prune inspector-guided transformation."""

    name = "vi-prune"
    handlers = {
        "triangular-solve": "_apply_triangular",
        "cholesky": "_apply_cholesky",
        "ldlt": "_apply_ldlt",
        "lu": "_apply_lu",
        "ic0": "_apply_ic0",
        "ilu0": "_apply_ilu0",
    }

    # ------------------------------------------------------------------ #
    # Triangular solve
    # ------------------------------------------------------------------ #
    def _apply_triangular(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        inspection = context.inspection
        if not isinstance(inspection, TriangularInspectionResult):
            raise TypeError("triangular-solve VI-Prune needs a triangular inspection")
        reach = inspection.reach
        reach_sorted = inspection.reach_sorted

        blocked = any(
            isinstance(node, (SupernodeTriangularBlock, PrunedColumnSolveLoop))
            for node in walk(kernel.body)
        )
        if blocked:
            self._prune_blocked_triangular(kernel, reach_sorted)
            context.record(self.name, mode="blocked", reach_size=int(reach.size))
            kernel.meta["vi_prune"] = True
            return kernel

        loop = _find_prunable_loop(kernel)
        if loop is None or not loop.annotations.get("prunable", False):
            context.decisions[self.name] = {"skipped": "no prunable loop found"}
            return kernel
        pruned = PrunedColumnSolveLoop(
            columns=reach,
            constant_name="prune_set",
            vectorize=True,
            role="pruned-column-loop",
            source="reach-set",
        )
        replaced = _replace_statement(kernel.body, loop, [
            Comment(f"VI-Prune: iterate the reach-set ({reach.size} of {inspection.n} columns)"),
            pruned,
        ])
        if not replaced:
            raise RuntimeError("failed to replace the prunable column loop")
        if "prune_set" not in kernel.constants:
            kernel.add_constant("prune_set", reach)
        context.record(self.name, mode="loop", reach_size=int(reach.size))
        kernel.meta["vi_prune"] = True
        return kernel

    @staticmethod
    def _prune_blocked_triangular(kernel: KernelFunction, reach_sorted: np.ndarray) -> None:
        """Filter an already VS-Block'd body down to the reach-set."""
        reach_set = set(int(c) for c in reach_sorted)

        def prune_block(block: Block) -> None:
            new_statements: List = []
            for stmt in block.statements:
                if isinstance(stmt, SupernodeTriangularBlock):
                    cols = range(stmt.c0, stmt.c0 + stmt.width)
                    if any(c in reach_set for c in cols):
                        new_statements.append(stmt)
                elif isinstance(stmt, PrunedColumnSolveLoop):
                    kept = np.asarray(
                        [c for c in stmt.columns if int(c) in reach_set], dtype=np.int64
                    )
                    if kept.size:
                        stmt.columns = kept
                        new_statements.append(stmt)
                elif isinstance(stmt, Block):
                    prune_block(stmt)
                    new_statements.append(stmt)
                else:
                    new_statements.append(stmt)
            block.statements = new_statements

        prune_block(kernel.body)

    # ------------------------------------------------------------------ #
    # Left-looking factorizations (Cholesky and LDL^T)
    # ------------------------------------------------------------------ #
    def _apply_cholesky(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="llt")

    def _apply_ldlt(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="ldlt")

    def _apply_lu(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="lu")

    def _apply_left_looking(
        self,
        kernel: KernelFunction,
        context: CompilationContext,
        *,
        factor_kind: str,
    ) -> KernelFunction:
        """Shared left-looking lowering for the LLᵀ, LDLᵀ and LU kernels.

        The symmetric kinds prune the update loop to the row sparsity pattern
        of ``L``; LU prunes it to the symbolic ``U`` pattern of each column
        (the GP reach-set) and additionally embeds the ``U`` pattern arrays.
        Everything else — replacing the annotated column loop by the
        descriptor-carrying domain statement — is identical.
        """
        lu = factor_kind == "lu"
        inspection = context.inspection
        expected_cls = LUInspectionResult if lu else CholeskyInspectionResult
        if not isinstance(inspection, expected_cls):
            raise TypeError(
                f"left-looking VI-Prune for {factor_kind!r} needs a "
                f"{expected_cls.__name__}"
            )

        # If VS-Block already replaced the column loop with a supernodal loop,
        # the prune-sets are already embedded in its descendant descriptors.
        # (The LU handler of VS-Block never produces one.)
        if any(isinstance(node, SupernodalCholeskyLoop) for node in walk(kernel.body)):
            context.record(self.name, mode="subsumed-by-vs-block")
            kernel.meta["vi_prune"] = True
            return kernel
        if any(isinstance(node, SimplicialCholeskyLoop) for node in walk(kernel.body)):
            context.record(self.name, mode="already-applied")
            return kernel

        loop = _find_prunable_loop(kernel)
        if loop is None:
            context.decisions[self.name] = {"skipped": "no column loop found"}
            return kernel
        if lu:
            desc = lu_simplicial_descriptors(context.matrix, inspection)
            kind_kwargs = {
                "u_indptr": inspection.u_indptr,
                "u_indices": inspection.u_indices,
                "role": "simplicial-lu",
            }
            pruned_to = "the symbolic U pattern"
            extra_constants = (
                ("u_indptr", inspection.u_indptr),
                ("u_indices", inspection.u_indices),
            )
        else:
            desc = simplicial_descriptors(context.matrix, inspection)
            kind_kwargs = {"role": "simplicial-cholesky"}
            pruned_to = "the row sparsity pattern of L"
            extra_constants = ()
        simplicial = SimplicialCholeskyLoop(
            n=inspection.n,
            l_indptr=inspection.l_indptr,
            l_indices=inspection.l_indices,
            prune_ptr=desc.prune_ptr,
            update_pos=desc.update_pos,
            update_end=desc.update_end,
            a_diag_pos=desc.a_diag_pos,
            a_col_end=desc.a_col_end,
            update_col=desc.update_col,
            factor_kind=factor_kind,
            vectorize=True,
            **kind_kwargs,
        )
        replaced = _replace_statement(kernel.body, loop, [
            Comment(
                f"VI-Prune: update loop restricted to {pruned_to} "
                f"({int(desc.prune_ptr[-1])} updates in total)"
            ),
            simplicial,
        ])
        if not replaced:
            raise RuntimeError("failed to replace the left-looking column loop")
        for cname, value in (
            ("l_indptr", inspection.l_indptr),
            ("l_indices", inspection.l_indices),
            *extra_constants,
            ("prune_ptr", desc.prune_ptr),
            ("update_pos", desc.update_pos),
            ("update_end", desc.update_end),
        ):
            if cname not in kernel.constants:
                kernel.add_constant(cname, value)
        context.record(self.name, mode="loop", total_updates=int(desc.prune_ptr[-1]))
        kernel.meta["vi_prune"] = True
        return kernel

    # ------------------------------------------------------------------ #
    # No-fill incomplete factorizations (IC(0) and ILU(0))
    # ------------------------------------------------------------------ #
    def _apply_ic0(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_incomplete(kernel, context, factor_kind="ic0")

    def _apply_ilu0(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_incomplete(kernel, context, factor_kind="ilu0")

    def _apply_incomplete(
        self,
        kernel: KernelFunction,
        context: CompilationContext,
        *,
        factor_kind: str,
    ) -> KernelFunction:
        """Shared lowering of the no-fill incomplete kernels.

        Both prune twice: the update loop iterates only the ``A``-pattern
        sources of each column, and every update's *scatter* is intersected
        with the destination column's ``A`` pattern at compile time (the
        dropped updates of IC(0)/ILU(0) never execute).  The factor pattern
        is the ``A`` pattern, so the loop runs in place on the gathered
        factor values — no dense work vector, no fill computation.
        """
        ilu = factor_kind == "ilu0"
        inspection = context.inspection
        expected_cls = ILU0InspectionResult if ilu else IC0InspectionResult
        if not isinstance(inspection, expected_cls):
            raise TypeError(
                f"incomplete VI-Prune for {factor_kind!r} needs a "
                f"{expected_cls.__name__}"
            )
        if any(isinstance(node, IncompleteFactorLoop) for node in walk(kernel.body)):
            context.record(self.name, mode="already-applied")
            return kernel
        loop = _find_prunable_loop(kernel)
        if loop is None:
            context.decisions[self.name] = {"skipped": "no column loop found"}
            return kernel
        if ilu:
            desc = ilu0_descriptors(context.matrix, inspection)
            kind_kwargs = {
                "u_indptr": inspection.u_indptr,
                "u_indices": inspection.u_indices,
                "a_upper_pos": desc.a_upper_pos,
                "l_gather_dst": desc.l_gather_dst,
                "u_scat_ptr": desc.u_scat_ptr,
                "u_scat_src": desc.u_scat_src,
                "u_scat_dst": desc.u_scat_dst,
                "role": "incomplete-lu",
            }
            extra_constants = (
                ("u_indptr", inspection.u_indptr),
                ("u_scat_ptr", desc.u_scat_ptr),
            )
        else:
            desc = ic0_descriptors(context.matrix, inspection)
            kind_kwargs = {"role": "incomplete-cholesky"}
            extra_constants = ()
        incomplete = IncompleteFactorLoop(
            n=inspection.n,
            l_indptr=inspection.l_indptr,
            l_indices=inspection.l_indices,
            a_lower_pos=desc.a_lower_pos,
            prune_ptr=desc.prune_ptr,
            mult_pos=desc.mult_pos,
            l_scat_ptr=desc.l_scat_ptr,
            l_scat_src=desc.l_scat_src,
            l_scat_dst=desc.l_scat_dst,
            factor_kind=factor_kind,
            vectorize=True,
            **kind_kwargs,
        )
        dropped = int(desc.prune_ptr[-1])
        replaced = _replace_statement(kernel.body, loop, [
            Comment(
                f"VI-Prune: {factor_kind.upper()} update loop pruned to the A "
                f"pattern ({dropped} pattern-intersected updates, no fill)"
            ),
            incomplete,
        ])
        if not replaced:
            raise RuntimeError("failed to replace the incomplete-factor column loop")
        for cname, value in (
            ("l_indptr", inspection.l_indptr),
            ("a_lower_pos", desc.a_lower_pos),
            ("prune_ptr", desc.prune_ptr),
            ("mult_pos", desc.mult_pos),
            ("l_scat_ptr", desc.l_scat_ptr),
            *extra_constants,
        ):
            if cname not in kernel.constants:
                kernel.add_constant(cname, value)
        context.record(self.name, mode="loop", total_updates=dropped)
        kernel.meta["vi_prune"] = True
        return kernel
