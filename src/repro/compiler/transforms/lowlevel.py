"""Enabled conventional low-level transformations (§2.4).

The inspector-guided transformations annotate the code with hints for
conventional transformations; these passes consume the hints:

* :class:`PeelTransform` — loop peeling: reach-set iterations whose column is
  a single nonzero, or whose column count exceeds a threshold, are pulled out
  of the pruned loop into straight-line specialized statements (Figure 1e).
* :class:`UnrollTransform` — unrolling: small diagonal blocks and small peeled
  columns are emitted fully unrolled with literal positions.
* :class:`LoopDistributeTransform` — loop distribution: width-1 supernodes of
  the supernodal Cholesky loop are split into a separate streamlined loop.
* :class:`SmallKernelTransform` — the BLAS-switch heuristic of §4.2: when the
  average column count of the factor is small, the generated code uses the
  hand-specialized small dense kernels instead of the library (BLAS) calls.

All of these are no-ops when their hint is absent, so they can be run
unconditionally after the inspector-guided passes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ast import (
    Block,
    ForRange,
    KernelFunction,
    PeeledColumnSolve,
    PrunedColumnSolveLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    walk,
)
from repro.compiler.transforms.base import CompilationContext, Transform
from repro.symbolic.inspector import CholeskyInspectionResult

__all__ = [
    "PeelTransform",
    "UnrollTransform",
    "LoopDistributeTransform",
    "SmallKernelTransform",
]


class PeelTransform(Transform):
    """Peel selected iterations of pruned triangular-solve loops."""

    name = "peel"

    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        # Structural pass: only kernels containing pruned column-solve loops
        # (the triangular-solve family) have anything to peel.
        if not any(isinstance(n, PrunedColumnSolveLoop) for n in walk(kernel.body)):
            return kernel
        options = context.options
        L = context.matrix
        budget = options.max_peeled_iterations
        peeled_total = 0

        def colcount(j: int) -> int:
            return int(L.indptr[j + 1] - L.indptr[j])

        def eligible(j: int) -> bool:
            c = colcount(j)
            if options.peel_single_nonzero_columns and c == 1:
                return True
            return c > options.peel_colcount_threshold

        def make_peeled(j: int) -> PeeledColumnSolve:
            start = int(L.indptr[j])
            end = int(L.indptr[j + 1])
            return PeeledColumnSolve(
                column=j,
                diag_pos=start,
                offdiag_start=start + 1,
                offdiag_end=end,
                rows=L.indices[start + 1 : end].copy(),
                unroll=False,
                role="peeled-column",
            )

        def rewrite_block(block: Block) -> None:
            nonlocal peeled_total
            new_statements: List = []
            for stmt in block.statements:
                if isinstance(stmt, Block):
                    rewrite_block(stmt)
                    new_statements.append(stmt)
                    continue
                if isinstance(stmt, ForRange):
                    rewrite_block(stmt.body)
                    new_statements.append(stmt)
                    continue
                if not isinstance(stmt, PrunedColumnSolveLoop):
                    new_statements.append(stmt)
                    continue
                segments: List = []
                pending: List[int] = []
                run_id = 0

                def flush() -> None:
                    nonlocal run_id, pending
                    if pending:
                        segments.append(
                            PrunedColumnSolveLoop(
                                columns=np.asarray(pending, dtype=np.int64),
                                constant_name=f"{stmt.constant_name}_part{run_id}",
                                vectorize=stmt.vectorize,
                                **stmt.annotations,
                            )
                        )
                        run_id += 1
                        pending = []

                for col in stmt.columns:
                    col = int(col)
                    if peeled_total < budget and eligible(col):
                        flush()
                        segments.append(make_peeled(col))
                        peeled_total += 1
                    else:
                        pending.append(col)
                flush()
                if len(segments) == 1 and isinstance(segments[0], PrunedColumnSolveLoop):
                    # Nothing was peeled; keep the original statement.
                    new_statements.append(stmt)
                else:
                    new_statements.extend(segments)
            block.statements = new_statements

        rewrite_block(kernel.body)
        if peeled_total:
            context.record(self.name, peeled_iterations=peeled_total)
            kernel.meta["peeled_iterations"] = peeled_total
        return kernel


class UnrollTransform(Transform):
    """Unroll small diagonal-block solves and small peeled columns."""

    name = "unroll"

    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        options = context.options
        unrolled = 0
        for node in walk(kernel.body):
            if isinstance(node, SupernodeTriangularBlock):
                if node.width <= options.unroll_max_width:
                    node.unroll = True
                    unrolled += 1
            elif isinstance(node, PeeledColumnSolve):
                if node.nnz - 1 <= options.unroll_max_width:
                    node.unroll = True
                    unrolled += 1
        if unrolled:
            context.record(self.name, unrolled_statements=unrolled)
            kernel.meta["unrolled_statements"] = unrolled
        return kernel


class LoopDistributeTransform(Transform):
    """Split width-1 supernodes of the supernodal Cholesky into their own loop."""

    name = "distribute"

    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        # Structural pass: acts on any supernodal left-looking loop (LL^T or
        # LDL^T); kernels without one are left untouched.
        changed = 0
        for node in walk(kernel.body):
            if isinstance(node, SupernodalCholeskyLoop) and not node.distribute_single_columns:
                node.distribute_single_columns = True
                changed += 1
        if changed:
            context.record(self.name, distributed_loops=changed)
            kernel.meta["loop_distribution"] = True
        return kernel


class SmallKernelTransform(Transform):
    """Switch between specialized small dense kernels and library BLAS calls."""

    name = "small-kernels"

    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        inspection = context.inspection
        if not isinstance(inspection, CholeskyInspectionResult):
            return kernel
        options = context.options
        avg_colcount = inspection.average_column_count
        use_small = avg_colcount < options.blas_switch_avg_colcount
        changed = 0
        for node in walk(kernel.body):
            # Unrolled small kernels exist for LL^T diagonal blocks only; the
            # LDL^T blocks always go through the dense LDL^T micro-kernel.
            if isinstance(node, SupernodalCholeskyLoop) and node.factor_kind == "llt":
                node.use_small_kernels = use_small
                node.small_kernel_max_width = options.small_kernel_max_width
                changed += 1
        if changed:
            context.record(
                self.name,
                average_column_count=float(avg_colcount),
                threshold=float(options.blas_switch_avg_colcount),
                use_small_kernels=use_small,
            )
            kernel.meta["use_small_kernels"] = use_small
        return kernel
