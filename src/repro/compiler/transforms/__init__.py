"""Inspector-guided and low-level transformations.

The passes in this package rewrite the lowered AST using the inspection sets
produced by the symbolic inspectors:

* :mod:`repro.compiler.transforms.vi_prune` — Variable Iteration-Space
  Pruning (§2.3.1),
* :mod:`repro.compiler.transforms.vs_block` — 2-D Variable-Sized Blocking
  (§2.3.2),
* :mod:`repro.compiler.transforms.lowlevel` — the enabled conventional
  low-level transformations (§2.4): loop peeling, unrolling, loop
  distribution and small-kernel specialization,
* :mod:`repro.compiler.transforms.pipeline` — assembles the pass sequence
  from :class:`repro.compiler.options.SympilerOptions`.
"""

from repro.compiler.transforms.base import CompilationContext, Transform, TransformPipeline
from repro.compiler.transforms.lowlevel import (
    LoopDistributeTransform,
    PeelTransform,
    SmallKernelTransform,
    UnrollTransform,
)
from repro.compiler.transforms.pipeline import build_pipeline
from repro.compiler.transforms.vi_prune import VIPruneTransform
from repro.compiler.transforms.vs_block import VSBlockTransform

__all__ = [
    "Transform",
    "TransformPipeline",
    "CompilationContext",
    "VIPruneTransform",
    "VSBlockTransform",
    "PeelTransform",
    "UnrollTransform",
    "LoopDistributeTransform",
    "SmallKernelTransform",
    "build_pipeline",
]
