"""2-D Variable-Sized Blocking (VS-Block, §2.3.2).

VS-Block converts column-at-a-time sparse code into code over variable-sized
dense blocks (supernodes):

* **Triangular solve** — consecutive columns with identical structure are
  solved as one block: a small dense triangular solve on the diagonal block
  followed by a dense panel update (Figure 3c→3d).  Columns not belonging to
  a participating block stay in pruned column loops.
* **Cholesky** — the column loop becomes a loop over supernodes; each
  supernode is assembled into a dense trapezoidal panel, updated by its
  descendant columns, factored with a dense Cholesky on the diagonal block
  and finished with dense triangular solves on the off-diagonal panel.

The transformation only *participates* when the inspection found supernodes
worth blocking (the paper hand-tunes a participation threshold, §4.2); the
decision and its inputs are recorded in the compilation context so ablation
benchmarks can report them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ast import (
    Comment,
    KernelFunction,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    walk,
)
from repro.compiler.transforms.base import (
    CompilationContext,
    MethodDispatchTransform,
)
from repro.compiler.transforms.descriptors import (
    supernodal_descriptors,
    triangular_block_descriptor,
)
from repro.compiler.transforms.vi_prune import _find_prunable_loop, _replace_statement
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    IC0InspectionResult,
    ILU0InspectionResult,
    LUInspectionResult,
    TriangularInspectionResult,
)
from repro.symbolic.supernodes import SupernodePartition

__all__ = ["VSBlockTransform", "vs_block_participates"]


def vs_block_participates(
    partition: SupernodePartition,
    *,
    min_supernode_width: int,
    min_avg_width: float,
) -> tuple[bool, dict]:
    """Apply the participation heuristic of §4.2.

    Returns ``(participates, details)`` where ``details`` records the inputs
    of the decision (number/average width of candidate supernodes).
    """
    sizes = partition.sizes()
    wide = sizes[sizes >= min_supernode_width]
    avg_wide = float(wide.mean()) if wide.size else 0.0
    overall_avg = float(sizes.mean()) if sizes.size else 0.0
    participates = wide.size > 0 and overall_avg >= min_avg_width
    details = {
        "n_supernodes": int(sizes.size),
        "n_wide_supernodes": int(wide.size),
        "avg_wide_width": avg_wide,
        "avg_width": overall_avg,
        "min_supernode_width": int(min_supernode_width),
        "min_avg_width": float(min_avg_width),
        "participates": participates,
    }
    return participates, details


class VSBlockTransform(MethodDispatchTransform):
    """The VS-Block inspector-guided transformation."""

    name = "vs-block"
    handlers = {
        "triangular-solve": "_apply_triangular",
        "cholesky": "_apply_cholesky",
        "ldlt": "_apply_ldlt",
        "lu": "_apply_lu",
        "ic0": "_apply_ic0",
        "ilu0": "_apply_ilu0",
    }

    # ------------------------------------------------------------------ #
    # Triangular solve
    # ------------------------------------------------------------------ #
    def _apply_triangular(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        inspection = context.inspection
        if not isinstance(inspection, TriangularInspectionResult):
            raise TypeError("triangular-solve VS-Block needs a triangular inspection")
        options = context.options
        partition = inspection.supernodes
        participates, details = vs_block_participates(
            partition,
            min_supernode_width=options.vs_block_min_supernode_width,
            min_avg_width=options.vs_block_min_avg_width,
        )
        context.decisions[self.name] = details
        if not participates:
            return kernel

        # Active columns: the reach-set if VI-Prune already ran, else all.
        existing_pruned = [
            node for node in walk(kernel.body) if isinstance(node, PrunedColumnSolveLoop)
        ]
        if existing_pruned:
            active_sorted = np.unique(
                np.concatenate([p.columns for p in existing_pruned])
            )
        else:
            active_sorted = np.arange(inspection.n, dtype=np.int64)
        active_mask = np.zeros(inspection.n, dtype=bool)
        active_mask[active_sorted] = True

        segments = self._build_triangular_segments(
            context, partition, active_mask, options.vs_block_min_supernode_width
        )

        # Replace either the original column loop or the VI-Pruned loop(s).
        new_body: List = [
            Comment(
                "VS-Block: supernode blocks solved with dense sub-kernels "
                f"({details['n_wide_supernodes']} blockable supernodes)"
            ),
            *segments,
        ]
        if existing_pruned:
            # Replace the first pruned loop with the blocked segments and drop
            # any further pruned loops (their columns are covered).
            _replace_statement(kernel.body, existing_pruned[0], new_body)
            for extra in existing_pruned[1:]:
                _replace_statement(kernel.body, extra, [])
        else:
            loop = _find_prunable_loop(kernel)
            if loop is None or not loop.annotations.get("blockable", False):
                context.decisions[self.name] = {"skipped": "no blockable loop found"}
                return kernel
            _replace_statement(kernel.body, loop, new_body)

        if "block_set" not in kernel.constants:
            kernel.add_constant("block_set", partition.super_ptr)
        context.record(self.name, **details)
        kernel.meta["vs_block"] = True
        return kernel

    @staticmethod
    def _build_triangular_segments(
        context: CompilationContext,
        partition: SupernodePartition,
        active_mask: np.ndarray,
        min_width: int,
    ) -> List:
        """Segments (blocks and column runs) in ascending column order."""
        L = context.matrix
        segments: List = []
        pending_run: List[int] = []
        run_counter = 0

        def flush_run() -> None:
            nonlocal run_counter, pending_run
            if pending_run:
                segments.append(
                    PrunedColumnSolveLoop(
                        columns=np.asarray(pending_run, dtype=np.int64),
                        constant_name=f"column_run_{run_counter}",
                        vectorize=True,
                        role="column-run",
                    )
                )
                run_counter += 1
                pending_run = []

        for s, c0, c1 in partition.iter_supernodes():
            width = c1 - c0
            block_active = bool(active_mask[c0:c1].any())
            if not block_active:
                continue
            if width >= min_width:
                flush_run()
                col_starts, rows_start, rows_end, n_rows = triangular_block_descriptor(L, c0, c1)
                segments.append(
                    SupernodeTriangularBlock(
                        sn_id=s,
                        c0=c0,
                        width=width,
                        n_rows=n_rows,
                        col_starts=col_starts,
                        rows_start=rows_start,
                        rows_end=rows_end,
                        unroll=False,
                        use_blas=False,
                        role="supernode-block",
                    )
                )
            else:
                pending_run.extend(int(c) for c in range(c0, c1) if active_mask[c])
        flush_run()
        return segments

    # ------------------------------------------------------------------ #
    # Left-looking factorizations (Cholesky and LDL^T)
    # ------------------------------------------------------------------ #
    def _apply_cholesky(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="llt")

    def _apply_ldlt(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_left_looking(kernel, context, factor_kind="ldlt")

    def _apply_lu(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        """VS-Block for the unsymmetric left-looking LU.

        The participation heuristic is evaluated on the column-etree
        supernode candidates (and recorded for the ablation benches), but the
        blocked dense sub-kernels of this pass exploit the *symmetric*
        trapezoidal panel structure — an LU supernode would also have to
        carry its per-column ``U`` panel (the SuperLU formulation).  Until a
        pivoted/supernodal LU lands, the pass therefore always defers the
        lowering to VI-Prune's simplicial LU loop; the recorded decision
        makes the deferral visible instead of silent.
        """
        inspection = context.inspection
        if not isinstance(inspection, LUInspectionResult):
            raise TypeError("LU VS-Block needs an LU inspection")
        options = context.options
        participates, details = vs_block_participates(
            inspection.supernodes,
            min_supernode_width=options.vs_block_min_supernode_width,
            min_avg_width=options.vs_block_min_avg_width,
        )
        details["factor_kind"] = "lu"
        details["deferred"] = "supernodal LU not generated (unsymmetric panels)"
        context.decisions[self.name] = details
        return kernel

    def _apply_ic0(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_incomplete(kernel, context, factor_kind="ic0")

    def _apply_ilu0(
        self, kernel: KernelFunction, context: CompilationContext
    ) -> KernelFunction:
        return self._apply_incomplete(kernel, context, factor_kind="ilu0")

    def _apply_incomplete(
        self,
        kernel: KernelFunction,
        context: CompilationContext,
        *,
        factor_kind: str,
    ) -> KernelFunction:
        """VS-Block for the no-fill incomplete factorizations.

        Like LU, the participation heuristic is evaluated (on the
        elimination-tree supernode candidates of the ``A`` pattern) and
        recorded for the ablation benches, but the lowering is deferred to
        VI-Prune's incomplete loop: a dense diagonal-block factorization
        would *introduce fill inside the block*, which the no-fill contract
        of IC(0)/ILU(0) forbids — any supernodal incomplete variant needs a
        block-sparse drop rule first.  The recorded decision makes the
        deferral visible instead of silent.
        """
        expected_cls = ILU0InspectionResult if factor_kind == "ilu0" else IC0InspectionResult
        inspection = context.inspection
        if not isinstance(inspection, expected_cls):
            raise TypeError(
                f"incomplete VS-Block for {factor_kind!r} needs a "
                f"{expected_cls.__name__}"
            )
        options = context.options
        participates, details = vs_block_participates(
            inspection.supernodes,
            min_supernode_width=options.vs_block_min_supernode_width,
            min_avg_width=options.vs_block_min_avg_width,
        )
        details["factor_kind"] = factor_kind
        details["deferred"] = "supernodal incomplete factorization would introduce in-block fill"
        context.decisions[self.name] = details
        return kernel

    def _apply_left_looking(
        self,
        kernel: KernelFunction,
        context: CompilationContext,
        *,
        factor_kind: str,
    ) -> KernelFunction:
        inspection = context.inspection
        if not isinstance(inspection, CholeskyInspectionResult):
            raise TypeError("left-looking VS-Block needs a Cholesky-style inspection")
        options = context.options
        partition = inspection.supernodes
        participates, details = vs_block_participates(
            partition,
            min_supernode_width=options.vs_block_min_supernode_width,
            min_avg_width=options.vs_block_min_avg_width,
        )
        context.decisions[self.name] = details
        if not participates:
            return kernel

        desc = supernodal_descriptors(context.matrix, inspection)
        supernodal = SupernodalCholeskyLoop(
            n=inspection.n,
            l_indptr=inspection.l_indptr,
            l_indices=inspection.l_indices,
            a_diag_pos=desc.a_diag_pos,
            a_col_end=desc.a_col_end,
            sup_start=desc.sup_start,
            sup_end=desc.sup_end,
            desc_ptr=desc.desc_ptr,
            desc_pos=desc.desc_pos,
            desc_end=desc.desc_end,
            desc_mult_end=desc.desc_mult_end,
            desc_col=desc.desc_col,
            factor_kind=factor_kind,
            # Low-level refinements (distribution, small-kernel specialization)
            # are decided by the low-level passes; default to the plain
            # blocked structure here.
            distribute_single_columns=False,
            use_small_kernels=False,
            small_kernel_max_width=options.small_kernel_max_width,
            vectorize=True,
            role="supernodal-cholesky",
        )
        target = None
        for node in walk(kernel.body):
            if isinstance(node, SimplicialCholeskyLoop):
                target = node
                break
        if target is None:
            target = _find_prunable_loop(kernel)
        if target is None:
            context.decisions[self.name] = {"skipped": "no blockable loop found"}
            return kernel
        _replace_statement(kernel.body, target, [
            Comment(
                f"VS-Block: {partition.n_supernodes} supernodes, "
                f"average width {partition.average_size():.2f}"
            ),
            supernodal,
        ])
        for cname, value in (
            ("l_indptr", inspection.l_indptr),
            ("l_indices", inspection.l_indices),
            ("block_set", partition.super_ptr),
            ("desc_ptr", desc.desc_ptr),
            ("desc_pos", desc.desc_pos),
        ):
            if cname not in kernel.constants:
                kernel.add_constant(cname, value)
        context.record(self.name, **details)
        kernel.meta["vs_block"] = True
        return kernel
