"""Transformation framework: context, base class and pipeline."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.compiler.ast import KernelFunction
from repro.compiler.options import SympilerOptions
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    TriangularInspectionResult,
)

__all__ = [
    "CompilationContext",
    "Transform",
    "MethodDispatchTransform",
    "TransformPipeline",
]

InspectionResult = Union[TriangularInspectionResult, CholeskyInspectionResult]


@dataclass
class CompilationContext:
    """Everything a transformation pass may consult.

    Attributes
    ----------
    method:
        The kernel method name (``"triangular-solve"``, ``"cholesky"``,
        ``"ldlt"``, ``"lu"``, ... — any method registered in the kernel
        registry).
    matrix:
        The input matrix pattern — ``L`` for triangular solve, ``A`` for
        Cholesky.  Transforms only read its structure, never its values.
    inspection:
        The symbolic-inspection result for this matrix (and RHS pattern).
    options:
        Code-generation options.
    rhs_pattern:
        Nonzero indices of the RHS (triangular solve only).
    cache_token:
        The driver's cache identity of this compile — the same
        ``kernel + pattern fingerprint + options fingerprint`` triple that
        keys the in-memory artifact cache, rendered as a string.  Backends
        use it to key their cross-process on-disk caches; ``None`` (e.g. a
        directly constructed context in tests) disables disk persistence.
    applied:
        Names of the transformations that actually rewrote the kernel, in
        order (reported by the compiled artifact and used in tests/benches).
    decisions:
        Free-form record of threshold decisions (e.g. why VS-Block was
        skipped), used for reporting and ablation studies.
    """

    method: str
    matrix: CSCMatrix
    inspection: InspectionResult
    options: SympilerOptions
    rhs_pattern: Optional[np.ndarray] = None
    cache_token: Optional[str] = None
    applied: List[str] = field(default_factory=list)
    decisions: Dict[str, object] = field(default_factory=dict)

    def record(self, name: str, **decision) -> None:
        """Record that transformation ``name`` ran, with optional details."""
        self.applied.append(name)
        if decision:
            self.decisions[name] = decision


class Transform(ABC):
    """A single transformation pass over a :class:`KernelFunction`."""

    #: Short name used in reports and in ``CompilationContext.applied``.
    name: str = "abstract"

    @abstractmethod
    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        """Rewrite ``kernel`` (in place or by returning a new function)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class MethodDispatchTransform(Transform):
    """A transform whose behaviour is selected per kernel method.

    Subclasses declare a ``handlers`` table mapping a method name to the name
    of the bound method implementing the pass for it.  New kernels extend a
    transform by adding a ``handlers`` entry (usually pointing at a shared,
    parametrized implementation) instead of growing an ``if/elif`` chain.
    """

    #: method name -> attribute name of the handler implementing the pass.
    handlers: Dict[str, str] = {}

    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        handler = self.handlers.get(context.method)
        if handler is None:
            raise ValueError(
                f"{self.name} does not support method {context.method!r}; "
                f"supported: {sorted(self.handlers)}"
            )
        return getattr(self, handler)(kernel, context)


class TransformPipeline:
    """An ordered sequence of transformation passes."""

    def __init__(self, passes: List[Transform]) -> None:
        self.passes = list(passes)

    def run(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        """Apply every pass in order and return the final kernel."""
        for pass_ in self.passes:
            kernel = pass_.apply(kernel, context)
        return kernel

    def pass_names(self) -> List[str]:
        """Names of the configured passes, in execution order."""
        return [p.name for p in self.passes]

    def __len__(self) -> int:
        return len(self.passes)
