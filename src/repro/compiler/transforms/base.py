"""Transformation framework: context, base class and pipeline."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.compiler.ast import KernelFunction
from repro.compiler.options import SympilerOptions
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    TriangularInspectionResult,
)

__all__ = ["CompilationContext", "Transform", "TransformPipeline"]

InspectionResult = Union[TriangularInspectionResult, CholeskyInspectionResult]


@dataclass
class CompilationContext:
    """Everything a transformation pass may consult.

    Attributes
    ----------
    method:
        ``"triangular-solve"`` or ``"cholesky"``.
    matrix:
        The input matrix pattern — ``L`` for triangular solve, ``A`` for
        Cholesky.  Transforms only read its structure, never its values.
    inspection:
        The symbolic-inspection result for this matrix (and RHS pattern).
    options:
        Code-generation options.
    rhs_pattern:
        Nonzero indices of the RHS (triangular solve only).
    applied:
        Names of the transformations that actually rewrote the kernel, in
        order (reported by the compiled artifact and used in tests/benches).
    decisions:
        Free-form record of threshold decisions (e.g. why VS-Block was
        skipped), used for reporting and ablation studies.
    """

    method: str
    matrix: CSCMatrix
    inspection: InspectionResult
    options: SympilerOptions
    rhs_pattern: Optional[np.ndarray] = None
    applied: List[str] = field(default_factory=list)
    decisions: Dict[str, object] = field(default_factory=dict)

    def record(self, name: str, **decision) -> None:
        """Record that transformation ``name`` ran, with optional details."""
        self.applied.append(name)
        if decision:
            self.decisions[name] = decision


class Transform(ABC):
    """A single transformation pass over a :class:`KernelFunction`."""

    #: Short name used in reports and in ``CompilationContext.applied``.
    name: str = "abstract"

    @abstractmethod
    def apply(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        """Rewrite ``kernel`` (in place or by returning a new function)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class TransformPipeline:
    """An ordered sequence of transformation passes."""

    def __init__(self, passes: List[Transform]) -> None:
        self.passes = list(passes)

    def run(self, kernel: KernelFunction, context: CompilationContext) -> KernelFunction:
        """Apply every pass in order and return the final kernel."""
        for pass_ in self.passes:
            kernel = pass_.apply(kernel, context)
        return kernel

    def pass_names(self) -> List[str]:
        """Names of the configured passes, in execution order."""
        return [p.name for p in self.passes]

    def __len__(self) -> int:
        return len(self.passes)
