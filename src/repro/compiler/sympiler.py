"""The Sympiler driver: symbolic inspection → transformation → code generation.

:class:`Sympiler` is the user-facing compiler.  Given a numerical method and
the sparsity pattern of its inputs it produces a *compiled artifact*
(:class:`SympiledTriangularSolve` or :class:`SympiledCholesky`) that exposes

* the specialized numeric entry point (``solve`` / ``factorize``) which only
  touches numeric arrays,
* the generated source, the applied transformations and the threshold
  decisions (for inspection, tests and ablation benchmarks), and
* a breakdown of the compile-time cost (symbolic inspection, transformation,
  code generation and compilation) — the quantities reported as "Sympiler
  (symbolic)" in Figures 8 and 9 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.ast import KernelFunction
from repro.compiler.codegen.c_backend import CBackend
from repro.compiler.codegen.python_backend import PythonBackend
from repro.compiler.codegen.runtime import pattern_fingerprint
from repro.compiler.lowering import lower_cholesky, lower_triangular_solve
from repro.compiler.options import SympilerOptions
from repro.compiler.transforms.base import CompilationContext
from repro.compiler.transforms.pipeline import build_pipeline
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    CholeskyInspector,
    TriangularInspectionResult,
    TriangularSolveInspector,
)

__all__ = ["Sympiler", "SympiledTriangularSolve", "SympiledCholesky", "PatternMismatchError"]


class PatternMismatchError(ValueError):
    """Raised when numeric inputs do not match the compile-time pattern."""


def _backend_for(options: SympilerOptions):
    if options.backend == "python":
        return PythonBackend()
    if options.backend == "c":
        return CBackend(compiler=options.c_compiler, flags=options.c_flags)
    raise ValueError(f"unknown backend {options.backend!r}")


@dataclass
class CompileTimings:
    """Breakdown of the compile-time (symbolic) cost in seconds."""

    inspection: float = 0.0
    transformation: float = 0.0
    codegen: float = 0.0
    compile: float = 0.0

    @property
    def total(self) -> float:
        """Total symbolic (compile-time) cost."""
        return self.inspection + self.transformation + self.codegen + self.compile

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark harness."""
        return {
            "inspection": self.inspection,
            "transformation": self.transformation,
            "codegen": self.codegen,
            "compile": self.compile,
            "total": self.total,
        }


@dataclass
class _CompiledArtifact:
    """State shared by the two artifact types."""

    kernel: KernelFunction = field(repr=False)
    module: object = field(repr=False)
    entry: callable = field(repr=False)
    options: SympilerOptions
    applied_transformations: List[str]
    decisions: Dict[str, object]
    timings: CompileTimings
    fingerprint: str

    @property
    def source(self) -> str:
        """The generated source code (Python or C depending on the backend)."""
        return self.module.source

    @property
    def constants(self) -> Dict[str, np.ndarray]:
        """The inspection-set constants embedded into the generated code."""
        return dict(self.kernel.constants)

    @property
    def symbolic_seconds(self) -> float:
        """Total compile-time (symbolic + codegen + compilation) cost."""
        return self.timings.total


@dataclass
class SympiledTriangularSolve(_CompiledArtifact):
    """A triangular solve specialized to one ``L`` pattern and RHS pattern."""

    inspection: TriangularInspectionResult = None

    def solve(self, L: CSCMatrix, b: np.ndarray, *, check_pattern: bool = False) -> np.ndarray:
        """Solve ``L x = b`` with the specialized numeric code.

        ``L`` must have the same sparsity pattern (and ``b`` a nonzero pattern
        covered by the compile-time RHS pattern) as at compile time; set
        ``check_pattern=True`` to verify this (at the cost of hashing the
        pattern arrays).
        """
        if check_pattern:
            self.verify_pattern(L)
        return self.solve_arrays(L.indptr, L.indices, L.data, b)

    def solve_arrays(
        self, Lp: np.ndarray, Li: np.ndarray, Lx: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Raw-array entry point (numeric arrays only)."""
        return self.entry(Lp, Li, Lx, np.asarray(b, dtype=np.float64))

    def verify_pattern(self, L: CSCMatrix) -> None:
        """Raise :class:`PatternMismatchError` if ``L`` has a different pattern."""
        fp = pattern_fingerprint(L.indptr, L.indices, extra=self._rhs_extra())
        if fp != self.fingerprint:
            raise PatternMismatchError(
                "the matrix pattern differs from the pattern this kernel was "
                "generated for; re-run Sympiler.compile_triangular_solve"
            )

    def _rhs_extra(self) -> str:
        return ",".join(str(int(i)) for i in self.inspection.rhs_pattern)

    @property
    def reach_size(self) -> int:
        """Number of columns the specialized solve visits."""
        return self.inspection.reach_size


@dataclass
class SympiledCholesky(_CompiledArtifact):
    """A Cholesky factorization specialized to one matrix pattern."""

    inspection: CholeskyInspectionResult = None

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> CSCMatrix:
        """Factorize ``A`` (same pattern as at compile time) into ``L``."""
        if check_pattern:
            self.verify_pattern(A)
        lx = self.factorize_arrays(A.indptr, A.indices, A.data)
        return CSCMatrix(
            self.inspection.n,
            self.inspection.n,
            self.inspection.l_indptr,
            self.inspection.l_indices,
            lx,
            check=False,
        )

    def factorize_arrays(self, Ap: np.ndarray, Ai: np.ndarray, Ax: np.ndarray) -> np.ndarray:
        """Raw-array entry point: returns the numeric values of ``L``."""
        return self.entry(Ap, Ai, np.asarray(Ax, dtype=np.float64))

    def verify_pattern(self, A: CSCMatrix) -> None:
        """Raise :class:`PatternMismatchError` if ``A`` has a different pattern."""
        fp = pattern_fingerprint(A.indptr, A.indices)
        if fp != self.fingerprint:
            raise PatternMismatchError(
                "the matrix pattern differs from the pattern this kernel was "
                "generated for; re-run Sympiler.compile_cholesky"
            )

    @property
    def factor_nnz(self) -> int:
        """Number of stored entries of the factor the kernel produces."""
        return self.inspection.factor_nnz

    @property
    def l_pattern(self) -> CSCMatrix:
        """The factor pattern (zero values), available before factorizing."""
        return self.inspection.l_pattern_matrix()


class Sympiler:
    """The symbolic-enabled code generator (the paper's Figure 2 pipeline)."""

    def __init__(self, options: Optional[SympilerOptions] = None) -> None:
        self.options = options or SympilerOptions()

    # ------------------------------------------------------------------ #
    def compile_triangular_solve(
        self,
        L: CSCMatrix,
        rhs_pattern: Optional[Sequence[int] | np.ndarray] = None,
        options: Optional[SympilerOptions] = None,
    ) -> SympiledTriangularSolve:
        """Generate a solver for ``L x = b`` specialized to ``L``'s pattern.

        Parameters
        ----------
        L:
            Lower-triangular matrix (only its pattern is used here).
        rhs_pattern:
            Nonzero indices of the right-hand side; ``None`` means dense.
        options:
            Per-call options overriding the compiler's defaults.
        """
        options = options or self.options
        inspector = TriangularSolveInspector()
        inspection = inspector.inspect(L, rhs_pattern=rhs_pattern)

        kernel = lower_triangular_solve()
        context = CompilationContext(
            method="triangular-solve",
            matrix=L,
            inspection=inspection,
            options=options,
            rhs_pattern=inspection.rhs_pattern,
        )
        t0 = time.perf_counter()
        kernel = build_pipeline(options).run(kernel, context)
        transform_seconds = time.perf_counter() - t0

        backend = _backend_for(options)
        module = backend.generate(kernel, context)
        entry = module.compile()
        timings = CompileTimings(
            inspection=inspection.symbolic_seconds,
            transformation=transform_seconds,
            codegen=module.codegen_seconds,
            compile=module.compile_seconds,
        )
        fingerprint = pattern_fingerprint(
            L.indptr,
            L.indices,
            extra=",".join(str(int(i)) for i in inspection.rhs_pattern),
        )
        return SympiledTriangularSolve(
            kernel=kernel,
            module=module,
            entry=entry,
            options=options,
            applied_transformations=list(context.applied),
            decisions=dict(context.decisions),
            timings=timings,
            fingerprint=fingerprint,
            inspection=inspection,
        )

    # ------------------------------------------------------------------ #
    def compile_cholesky(
        self,
        A: CSCMatrix,
        options: Optional[SympilerOptions] = None,
    ) -> SympiledCholesky:
        """Generate a Cholesky factorization specialized to ``A``'s pattern."""
        options = options or self.options
        # The numeric Cholesky code cannot exist without the predicted factor
        # pattern, i.e. VI-Prune is part of the baseline generated code (the
        # paper makes the same observation in the caption of Figure 7).
        forced_vi_prune = False
        if not options.enable_vi_prune:
            options = options.with_updates(enable_vi_prune=True)
            forced_vi_prune = True

        inspector = CholeskyInspector()
        inspection = inspector.inspect(A, max_supernode_width=options.max_supernode_width)

        kernel = lower_cholesky()
        context = CompilationContext(
            method="cholesky",
            matrix=A,
            inspection=inspection,
            options=options,
        )
        if forced_vi_prune:
            context.decisions["vi-prune-forced"] = True
        t0 = time.perf_counter()
        kernel = build_pipeline(options).run(kernel, context)
        transform_seconds = time.perf_counter() - t0

        backend = _backend_for(options)
        module = backend.generate(kernel, context)
        entry = module.compile()
        timings = CompileTimings(
            inspection=inspection.symbolic_seconds,
            transformation=transform_seconds,
            codegen=module.codegen_seconds,
            compile=module.compile_seconds,
        )
        fingerprint = pattern_fingerprint(A.indptr, A.indices)
        return SympiledCholesky(
            kernel=kernel,
            module=module,
            entry=entry,
            options=options,
            applied_transformations=list(context.applied),
            decisions=dict(context.decisions),
            timings=timings,
            fingerprint=fingerprint,
            inspection=inspection,
        )
