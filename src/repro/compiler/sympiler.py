"""The Sympiler driver: symbolic inspection → transformation → code generation.

:class:`Sympiler` is the user-facing compiler.  It is a *generic* driver: the
per-kernel knowledge (lowering, inspector, applicable transformations,
artifact type, cache fingerprint) lives in the kernel registry
(:mod:`repro.compiler.registry`), and :meth:`Sympiler.compile` walks whatever
spec the requested kernel name resolves to.  Adding a kernel therefore means
registering a :class:`~repro.compiler.registry.KernelSpec`; the driver itself
contains no kernel-specific branches.

Compiled artifacts are cached in a pattern-keyed LRU
(:mod:`repro.compiler.cache`): a second ``compile`` for an identical pattern,
kernel and option bundle returns the previously built artifact without
re-running inspection, transformation or code generation — the amortization
that makes the factor-once/solve-many scenarios of §1.2 pay off.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional, Sequence, Set

import numpy as np

from repro.compiler.artifacts import (
    CompiledArtifact,
    CompileTimings,
    PatternMismatchError,
    SympiledCholesky,
    SympiledLDLT,
    SympiledTriangularSolve,
)
from repro.compiler.cache import (
    ArtifactCache,
    CacheStats,
    cache_key,
    options_fingerprint,
)
from repro.compiler.codegen.c_backend import CBackend, c_compiler_available
from repro.compiler.codegen.python_backend import PythonBackend
from repro.compiler.options import SympilerOptions
from repro.compiler.registry import KernelRegistry, default_registry
from repro.compiler.transforms.base import CompilationContext
from repro.compiler.transforms.pipeline import build_pipeline
from repro.observe.trace import span
from repro.sparse.csc import CSCMatrix

__all__ = [
    "Sympiler",
    "SympiledTriangularSolve",
    "SympiledCholesky",
    "SympiledLDLT",
    "PatternMismatchError",
    "CompileTimings",
]


#: Compiler executables a fallback warning has already been emitted for, so a
#: toolchain-free environment sees one warning instead of one per compile.
_FALLBACK_WARNED: Set[str] = set()


def _c_backend_or_fallback(options: SympilerOptions):
    """The C backend, or the Python backend when no C toolchain exists.

    Environments without a working ``cc`` (minimal containers, bare CI
    runners) still get a functioning — just slower — compiler pipeline
    instead of an error; the degradation is announced once per missing
    compiler.  Set ``REPRO_CC`` (or ``SympilerOptions.c_compiler``) to point
    at a specific toolchain.
    """
    if not c_compiler_available(options.c_compiler):
        if options.c_compiler not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(options.c_compiler)
            warnings.warn(
                f"C compiler {options.c_compiler!r} not found; falling back to "
                "the python code-generation backend",
                RuntimeWarning,
                stacklevel=4,
            )
        return PythonBackend()
    return CBackend(compiler=options.c_compiler, flags=options.c_flags)


_BACKEND_FACTORIES = {
    "python": lambda options: PythonBackend(),
    "c": _c_backend_or_fallback,
}


def _backend_for(options: SympilerOptions):
    factory = _BACKEND_FACTORIES.get(options.backend)
    if factory is None:
        raise ValueError(f"unknown backend {options.backend!r}")
    return factory(options)


#: Process-wide artifact cache shared by every ``Sympiler()`` that does not
#: bring its own — so independent drivers (solver instances, bench harness
#: experiments) amortize compiles of the same pattern.
_SHARED_CACHE = ArtifactCache()


class Sympiler:
    """The symbolic-enabled code generator (the paper's Figure 2 pipeline).

    Parameters
    ----------
    options:
        Default code-generation options (overridable per ``compile`` call).
    registry:
        Kernel registry to resolve kernel names in; defaults to the global
        registry with the built-in kernels (triangular solve, Cholesky, LDLᵀ,
        LU).
    cache:
        Artifact cache; defaults to a process-wide shared cache.  Pass a fresh
        :class:`~repro.compiler.cache.ArtifactCache` to isolate (e.g. tests).
    """

    def __init__(
        self,
        options: Optional[SympilerOptions] = None,
        *,
        registry: Optional[KernelRegistry] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.options = options or SympilerOptions()
        self.registry = registry or default_registry()
        self.cache = cache if cache is not None else _SHARED_CACHE

    # ------------------------------------------------------------------ #
    def compile(
        self,
        kernel: str,
        matrix: CSCMatrix,
        options: Optional[SympilerOptions] = None,
        **kernel_args,
    ) -> CompiledArtifact:
        """Compile the named kernel, specialized to ``matrix``'s pattern.

        Parameters
        ----------
        kernel:
            A kernel name (or alias) registered in the registry.
        matrix:
            The input pattern — ``L`` for triangular solve, ``A`` for the
            factorizations.  Only its structure is read here.
        options:
            Per-call options overriding the compiler's defaults.
        kernel_args:
            Kernel-specific arguments declared by the spec (e.g.
            ``rhs_pattern`` for the triangular solve).

        Returns the spec's artifact; an identical (pattern, kernel, options)
        triple returns the cached artifact without recompiling.
        """
        spec = self.registry.resolve(kernel)
        spec.validate_args(kernel_args)
        # Canonicalize the arguments exactly once: one-shot iterables are
        # materialized and invalid input fails here, before the cache is
        # consulted, so error behaviour never depends on cache state.
        kernel_args = spec.normalize_args(matrix, kernel_args)
        options = options or self.options

        # The cache key uses the *spec object* (not just the kernel name, so
        # same-named kernels from different registries never alias in the
        # shared cache) and the *requested* options (a forced-VI-Prune
        # compile must not alias a compile that asked for VI-Prune outright,
        # since their decision records differ even when the code does not).
        fingerprint = spec.fingerprint(matrix, kernel_args)
        key = cache_key(spec, fingerprint, options)

        forced_vi_prune = False
        if spec.requires_vi_prune and not options.enable_vi_prune:
            options = options.with_updates(enable_vi_prune=True)
            forced_vi_prune = True

        # Single-flight through the cache: concurrent compiles of the same
        # (kernel, pattern, options) — service worker threads registering one
        # pattern — collapse to one build; the other callers share the
        # resulting artifact instead of double-compiling.
        return self.cache.get_or_build(
            key,
            lambda: self._build(
                spec, matrix, options, kernel_args, fingerprint, forced_vi_prune
            ),
        )

    def _build(
        self,
        spec,
        matrix: CSCMatrix,
        options: SympilerOptions,
        kernel_args: dict,
        fingerprint: str,
        forced_vi_prune: bool,
    ) -> CompiledArtifact:
        """Run the full inspection → transformation → codegen pipeline once."""
        with span("compile", kernel=spec.name, backend=options.backend, fingerprint=fingerprint):
            return self._build_traced(
                spec, matrix, options, kernel_args, fingerprint, forced_vi_prune
            )

    def _build_traced(
        self,
        spec,
        matrix: CSCMatrix,
        options: SympilerOptions,
        kernel_args: dict,
        fingerprint: str,
        forced_vi_prune: bool,
    ) -> CompiledArtifact:
        inspector = spec.inspector_cls()
        with span("inspect", kernel=spec.name):
            inspection = inspector.inspect(
                matrix, **spec.inspect_kwargs(options, kernel_args)
            )

        with span("lower", kernel=spec.name):
            kernel_fn = spec.lower()
        # The same identity that keys the in-memory cache, stringified for
        # the backends' cross-process on-disk caches.  The lowering callable's
        # qualified name stands in for the spec object itself, so same-named
        # kernels from *different* registries (an advertised extension point)
        # never load each other's persisted code.
        lower = spec.lower
        spec_identity = (
            f"{spec.name}/{getattr(lower, '__module__', '?')}."
            f"{getattr(lower, '__qualname__', repr(lower))}"
        )
        context = CompilationContext(
            method=spec.name,
            matrix=matrix,
            inspection=inspection,
            options=options,
            cache_token=f"{spec_identity}:{fingerprint}:{options_fingerprint(options)}",
            **spec.context_extra(inspection),
        )
        if forced_vi_prune:
            context.decisions["vi-prune-forced"] = True

        t0 = time.perf_counter()
        with span("transform", kernel=spec.name):
            kernel_fn = build_pipeline(options, transforms=spec.transforms).run(
                kernel_fn, context
            )
        transform_seconds = time.perf_counter() - t0

        backend = _backend_for(options)
        with span("codegen", kernel=spec.name, backend=options.backend):
            module = backend.generate(kernel_fn, context)
        entry = module.compile()
        timings = CompileTimings(
            inspection=inspection.symbolic_seconds,
            transformation=transform_seconds,
            codegen=module.codegen_seconds,
            compile=module.compile_seconds,
        )
        return spec.artifact_cls(
            kernel=kernel_fn,
            module=module,
            entry=entry,
            options=options,
            applied_transformations=list(context.applied),
            decisions=dict(context.decisions),
            timings=timings,
            fingerprint=fingerprint,
            inspection=inspection,
        )

    # ------------------------------------------------------------------ #
    # Convenience wrappers (thin aliases over the generic entry point)
    # ------------------------------------------------------------------ #
    def compile_triangular_solve(
        self,
        L: CSCMatrix,
        rhs_pattern: Optional[Sequence[int] | np.ndarray] = None,
        options: Optional[SympilerOptions] = None,
    ) -> SympiledTriangularSolve:
        """Generate a solver for ``L x = b`` specialized to ``L``'s pattern.

        ``rhs_pattern`` holds the nonzero indices of the right-hand side;
        ``None`` means dense.
        """
        return self.compile("triangular-solve", L, options=options, rhs_pattern=rhs_pattern)

    def compile_cholesky(
        self,
        A: CSCMatrix,
        options: Optional[SympilerOptions] = None,
    ) -> SympiledCholesky:
        """Generate a Cholesky factorization specialized to ``A``'s pattern."""
        return self.compile("cholesky", A, options=options)

    def compile_ldlt(
        self,
        A: CSCMatrix,
        options: Optional[SympilerOptions] = None,
    ) -> SympiledLDLT:
        """Generate an LDLᵀ factorization specialized to ``A``'s pattern.

        Serves symmetric indefinite systems (saddle-point/KKT matrices) that
        Cholesky rejects.
        """
        return self.compile("ldlt", A, options=options)

    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the artifact cache this driver uses.

        With the default process-wide shared cache these counters aggregate
        every driver in the process; construct ``Sympiler(cache=ArtifactCache())``
        for per-driver counters.
        """
        return self.cache.stats
