"""Pattern-keyed compiled-artifact cache.

The paper's premise is that sparsity patterns are fixed while numeric values
change, so the symbolic + codegen cost amortizes over many numeric runs.
This module makes the amortization explicit: compiled artifacts are cached
under ``(kernel name, pattern fingerprint, options fingerprint)`` so a second
``Sympiler.compile`` for an already-seen pattern is a dictionary lookup — no
inspection, no transformation, no code generation, no compilation.

The cache is a bounded thread-safe LRU (the SEJITS ``LazySpecializedFunction``
idiom of caching specialized code by argument configuration).  It is
in-memory and per-process; the C backend additionally keeps its on-disk
``.so`` cache (see :mod:`repro.compiler.codegen.c_backend`) which survives
process restarts and is shared between processes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.compiler.options import SympilerOptions

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "options_fingerprint",
    "cache_key",
    "RUNTIME_ONLY_OPTIONS",
]

#: Default maximum number of cached artifacts per cache instance.
DEFAULT_MAXSIZE = 128

#: Options fields that only steer the numeric runtime and never change the
#: generated code.  Excluded from the fingerprint, so e.g. re-tuning
#: ``num_threads`` keeps hitting the same cached artifact (in memory and on
#: disk) instead of fragmenting the warm cache per thread count.
RUNTIME_ONLY_OPTIONS = ("num_threads",)


def options_fingerprint(options: SympilerOptions) -> str:
    """A short stable fingerprint of a :class:`SympilerOptions` bundle.

    Any *code-generation* field change (backend, transformation toggles,
    thresholds, compiler flags) changes the fingerprint, so cached artifacts
    are never reused across differing configurations; runtime-only fields
    (:data:`RUNTIME_ONLY_OPTIONS`) are deliberately ignored.
    """
    payload = repr(
        sorted(
            (k, v)
            for k, v in asdict(options).items()
            if k not in RUNTIME_ONLY_OPTIONS
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cache_key(
    kernel: Hashable, pattern_fp: str, options: SympilerOptions
) -> Tuple[Hashable, str, str]:
    """The cache key of one compiled artifact.

    ``kernel`` identifies the kernel spec — the driver passes the
    :class:`~repro.compiler.registry.KernelSpec` object itself, so equal
    names from *different* registries (an advertised extension point) never
    alias each other in a shared cache.
    """
    return (kernel, pattern_fp, options_fingerprint(options))


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """A bounded, thread-safe LRU cache of compiled artifacts.

    Keys are arbitrary hashables (the driver uses
    ``(kernel, pattern fingerprint, options fingerprint)`` tuples); values are
    the artifact objects themselves, returned by reference on a hit.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = CacheStats()

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached artifact for ``key`` (marking it recently used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry

    def put(self, key: Hashable, artifact: object) -> None:
        """Insert ``artifact`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """The live counter object (read-only use expected)."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ArtifactCache(size={len(self)}/{self.maxsize}, "
            f"hits={self._stats.hits}, misses={self._stats.misses})"
        )
