"""Pattern-keyed compiled-artifact cache.

The paper's premise is that sparsity patterns are fixed while numeric values
change, so the symbolic + codegen cost amortizes over many numeric runs.
This module makes the amortization explicit: compiled artifacts are cached
under ``(kernel name, pattern fingerprint, options fingerprint)`` so a second
``Sympiler.compile`` for an already-seen pattern is a dictionary lookup — no
inspection, no transformation, no code generation, no compilation.

The cache is a bounded thread-safe LRU (the SEJITS ``LazySpecializedFunction``
idiom of caching specialized code by argument configuration).  It is
in-memory and per-process; the C backend additionally keeps its on-disk
``.so`` cache (see :mod:`repro.compiler.codegen.c_backend`) which survives
process restarts and is shared between processes.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.compiler.options import SympilerOptions

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "options_fingerprint",
    "cache_key",
    "build_file_once",
    "RUNTIME_ONLY_OPTIONS",
]

#: Default maximum number of cached artifacts per cache instance.
DEFAULT_MAXSIZE = 128

#: Options fields that only steer the numeric runtime and never change the
#: generated code.  Excluded from the fingerprint, so e.g. re-tuning
#: ``num_threads`` keeps hitting the same cached artifact (in memory and on
#: disk) instead of fragmenting the warm cache per thread count.
RUNTIME_ONLY_OPTIONS = ("num_threads",)


def options_fingerprint(options: SympilerOptions) -> str:
    """A short stable fingerprint of a :class:`SympilerOptions` bundle.

    Any *code-generation* field change (backend, transformation toggles,
    thresholds, compiler flags) changes the fingerprint, so cached artifacts
    are never reused across differing configurations; runtime-only fields
    (:data:`RUNTIME_ONLY_OPTIONS`) are deliberately ignored.
    """
    payload = repr(
        sorted(
            (k, v)
            for k, v in asdict(options).items()
            if k not in RUNTIME_ONLY_OPTIONS
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def cache_key(
    kernel: Hashable, pattern_fp: str, options: SympilerOptions
) -> Tuple[Hashable, str, str]:
    """The cache key of one compiled artifact.

    ``kernel`` identifies the kernel spec — the driver passes the
    :class:`~repro.compiler.registry.KernelSpec` object itself, so equal
    names from *different* registries (an advertised extension point) never
    alias each other in a shared cache.
    """
    return (kernel, pattern_fp, options_fingerprint(options))


def build_file_once(
    target_path: str,
    builder: Callable[[], None],
    *,
    timeout_seconds: float = 300.0,
    poll_seconds: float = 0.005,
    stale_lock_seconds: float = 60.0,
) -> str:
    """Cross-process single-flight build of one on-disk cache file.

    :meth:`ArtifactCache.get_or_build` generalized across *processes*: when
    several processes (fleet shard workers, parallel CI jobs) miss on the
    same on-disk target concurrently, exactly one runs ``builder`` while the
    others wait for the published file — the PyOP2/Firedrake
    disk-cache-under-parallelism discipline (atomic ``O_EXCL``
    compare-and-swap on a lockfile next to the target).

    ``builder`` must *atomically publish* ``target_path`` before returning
    (write to a temp name, then ``os.replace`` — the protocol
    ``atomic_write_text``/``tmp_path_for`` in the C backend already follow),
    so waiters never observe a half-written artifact.

    Returns one of:

    * ``"hit"`` — the target already existed (no coordination needed),
    * ``"built"`` — this process won the lock and ran ``builder``,
    * ``"waited"`` — another process built the target while we held back.

    Failure semantics: if the winner's ``builder`` raises, the lock is
    released with no target published; each waiter then retries the
    acquisition and (re-)runs ``builder`` itself, so every caller observes
    either a working artifact or the real build error — never a silent miss.
    Locks abandoned by a killed process are broken after
    ``stale_lock_seconds``; if the wait exceeds ``timeout_seconds`` the
    caller builds anyway (duplicate work, still correct: publication is
    atomic).
    """
    if os.path.exists(target_path):
        return "hit"
    lock_path = target_path + ".lock"
    deadline = time.monotonic() + float(timeout_seconds)
    waited = False
    while True:
        if os.path.exists(target_path):
            return "waited" if waited else "hit"
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            waited = True
            if time.monotonic() >= deadline:
                # The winner is wedged (or glacial): build redundantly rather
                # than fail — atomic publication keeps the result correct.
                builder()
                return "built"
            try:
                # Wall clock on both sides: getmtime is epoch-based, so the
                # age must be too (monotonic has an arbitrary zero).
                lock_age = time.time() - os.path.getmtime(lock_path)
            except OSError:
                continue  # lock vanished between exists() and getmtime(): retry
            if lock_age > stale_lock_seconds:
                # The lock holder died without cleaning up; break the lock.
                # Several waiters may race this unlink — suppress the losers.
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(lock_path)
                # Local import: repro.observe pulls in the adapters (and so
                # this module) at package-import time; this rare cold path is
                # the wrong place to force that cycle.
                from repro.observe import events as observe_events

                observe_events.emit(
                    "stale_lock_break",
                    lock_path=lock_path,
                    lock_age_seconds=lock_age,
                )
                continue
            time.sleep(poll_seconds)
            continue
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        try:
            # Re-check under the lock: the previous holder may have published
            # between our exists() check and the O_EXCL acquisition.
            if os.path.exists(target_path):
                return "waited" if waited else "hit"
            builder()
            return "built"
        finally:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(lock_path)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`ArtifactCache`.

    ``coalesced`` counts compile requests that piggybacked on another
    thread's in-flight build of the same key (single-flight collapsing);
    ``removals`` counts explicit :meth:`ArtifactCache.remove` calls (service
    evictions under a memory budget), as opposed to LRU ``evictions``.

    The process-wide shared cache's stats are also visible through the
    unified observability layer (:mod:`repro.observe`) as the
    ``artifact_cache`` pull collector — ``repro_artifact_cache_*`` gauges in
    the Prometheus export, same counters, zero extra hot-path cost.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    coalesced: int = 0
    removals: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced": self.coalesced,
            "removals": self.removals,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """A bounded, thread-safe LRU cache of compiled artifacts.

    Keys are arbitrary hashables (the driver uses
    ``(kernel, pattern fingerprint, options fingerprint)`` tuples); values are
    the artifact objects themselves, returned by reference on a hit.

    Concurrent builds of the same key collapse to one: :meth:`get_or_build`
    is single-flight, so two service worker threads racing to compile the
    same (kernel, pattern, options) run one compile and share the artifact.
    Keys can be *pinned* (exempt from LRU eviction — the serving layer pins
    the artifacts of registered patterns) and explicitly removed (the
    serving layer's compiled-artifact memory budget); eviction listeners
    observe both LRU evictions and explicit removals.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = CacheStats()
        #: Pin *counts* per key: independent holders (two services registering
        #: the same pattern, two kernels sharing a triangular-solve artifact)
        #: each take their own pin, and a key stays pinned until every holder
        #: released it.
        self._pinned: Dict[Hashable, int] = {}
        self._building: Dict[Hashable, threading.Event] = {}
        self._evict_listeners: List[Callable[[Hashable, object, str], None]] = []

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached artifact for ``key`` (marking it recently used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry

    def put(self, key: Hashable, artifact: object) -> None:
        """Insert ``artifact`` under ``key``, evicting the LRU entry if full.

        Pinned keys are never LRU-evicted; when every resident entry is
        pinned the cache temporarily exceeds ``maxsize`` rather than drop a
        pinned artifact.
        """
        victims: List[Tuple[Hashable, object]] = []
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                victim = next(
                    (
                        k
                        for k in self._entries
                        if k not in self._pinned and k != key
                    ),
                    None,
                )
                if victim is None:
                    break
                victims.append((victim, self._entries.pop(victim)))
                self._stats.evictions += 1
        for victim_key, victim_artifact in victims:
            self._notify_evicted(victim_key, victim_artifact, "lru")

    def get_or_build(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the cached artifact for ``key``, building it once if absent.

        Single-flight: when several threads miss on the same key
        concurrently, exactly one runs ``builder`` while the others wait and
        then share the built artifact (counted in ``stats.coalesced``).  If
        the leading builder raises, one waiter takes over the build (the
        exception propagates to the leader alone).
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        waited = False
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    if waited:
                        self._stats.coalesced += 1
                    return entry
                event = self._building.get(key)
                if event is None:
                    event = self._building[key] = threading.Event()
                    break  # this thread is the builder
            waited = True
            event.wait()
        try:
            artifact = builder()
            self.put(key, artifact)
            return artifact
        finally:
            with self._lock:
                self._building.pop(key, None)
            event.set()

    def pin(self, key: Hashable) -> bool:
        """Take one pin on ``key`` (LRU-exempt); True when the key is resident.

        Pins nest: each :meth:`pin` needs a matching :meth:`unpin` before the
        key becomes evictable again.
        """
        with self._lock:
            self._pinned[key] = self._pinned.get(key, 0) + 1
            return key in self._entries

    def unpin(self, key: Hashable) -> int:
        """Release one pin on ``key``; returns the number of pins remaining."""
        with self._lock:
            remaining = self._pinned.get(key, 0) - 1
            if remaining > 0:
                self._pinned[key] = remaining
                return remaining
            self._pinned.pop(key, None)
            return 0

    def remove(self, key: Hashable) -> Optional[object]:
        """Explicitly drop one entry (clearing its pins), returning the artifact."""
        with self._lock:
            artifact = self._entries.pop(key, None)
            self._pinned.pop(key, None)
            if artifact is not None:
                self._stats.removals += 1
        if artifact is not None:
            self._notify_evicted(key, artifact, "removed")
        return artifact

    def keys_for(self, artifact: object) -> List[Hashable]:
        """Every key under which ``artifact`` is cached (identity compare)."""
        with self._lock:
            return [k for k, v in self._entries.items() if v is artifact]

    def pin_artifact(self, artifact: object) -> List[Hashable]:
        """Take one pin on every key holding ``artifact``; returns the keys."""
        with self._lock:
            keys = [k for k, v in self._entries.items() if v is artifact]
            for key in keys:
                self._pinned[key] = self._pinned.get(key, 0) + 1
            return keys

    def unpin_artifact(self, artifact: object) -> List[Hashable]:
        """Release one pin per key holding ``artifact``; returns the keys."""
        keys = self.keys_for(artifact)
        for key in keys:
            self.unpin(key)
        return keys

    def release_artifact(self, artifact: object) -> List[Hashable]:
        """Release one pin per key of ``artifact``; drop keys left unpinned.

        The memory-reclaim path of the serving layer: an evicting holder
        gives up *its own* pins and the entry only leaves the cache when no
        other holder (another service, a sibling pattern sharing the
        artifact) still has it pinned.  Returns the keys actually removed.
        """
        removed: List[Hashable] = []
        for key in self.keys_for(artifact):
            if self.unpin(key) == 0:
                self.remove(key)
                removed.append(key)
        return removed

    def remove_artifact(self, artifact: object) -> List[Hashable]:
        """Drop every key holding ``artifact`` (pins cleared); returns the keys."""
        keys = self.keys_for(artifact)
        for key in keys:
            self.remove(key)
        return keys

    def add_eviction_listener(
        self, listener: Callable[[Hashable, object, str], None]
    ) -> None:
        """Register ``listener(key, artifact, reason)`` for evictions/removals.

        ``reason`` is ``"lru"`` or ``"removed"``.  Listeners run outside the
        cache lock and must not raise.
        """
        with self._lock:
            self._evict_listeners.append(listener)

    def _notify_evicted(self, key: Hashable, artifact: object, reason: str) -> None:
        with self._lock:
            listeners = list(self._evict_listeners)
        for listener in listeners:
            listener(key, artifact, reason)

    @property
    def pinned_count(self) -> int:
        """Number of currently pinned keys."""
        with self._lock:
            return len(self._pinned)

    def clear(self) -> None:
        """Drop every cached artifact and pin (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._pinned.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """The live counter object (read-only use expected)."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ArtifactCache(size={len(self)}/{self.maxsize}, "
            f"hits={self._stats.hits}, misses={self._stats.misses})"
        )
