"""Compiled-artifact types returned by the Sympiler driver.

Every kernel registered in :mod:`repro.compiler.registry` declares one
artifact class here.  An artifact bundles

* the specialized numeric entry point (``solve`` / ``factorize``) which only
  touches numeric arrays,
* the generated source, the applied transformations and the threshold
  decisions (for inspection, tests and ablation benchmarks), and
* a breakdown of the compile-time cost (symbolic inspection, transformation,
  code generation and compilation) — the quantities reported as "Sympiler
  (symbolic)" in Figures 8 and 9 of the paper.

Artifacts are immutable once built and are what the artifact cache stores, so
a cache hit returns the very same object (same timings, same generated code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.compiler.ast import KernelFunction
from repro.compiler.codegen.runtime import pattern_fingerprint, rhs_fingerprint_extra
from repro.compiler.options import SympilerOptions
from repro.kernels.ldlt import LDLTFactors
from repro.kernels.lu import LUFactors
from repro.observe import trace as observe_trace
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    CholeskyInspectionResult,
    IC0InspectionResult,
    ILU0InspectionResult,
    LUInspectionResult,
    TriangularInspectionResult,
)

__all__ = [
    "CompileTimings",
    "PatternMismatchError",
    "CompiledArtifact",
    "SympiledFactorization",
    "SympiledTriangularSolve",
    "SympiledCholesky",
    "SympiledLDLT",
    "SympiledLU",
    "SympiledIC0",
    "SympiledILU0",
    "LDLTFactors",
    "LUFactors",
]


class PatternMismatchError(ValueError):
    """Raised when numeric inputs do not match the compile-time pattern."""


@dataclass
class CompileTimings:
    """Breakdown of the compile-time (symbolic) cost in seconds."""

    inspection: float = 0.0
    transformation: float = 0.0
    codegen: float = 0.0
    compile: float = 0.0

    @property
    def total(self) -> float:
        """Total symbolic (compile-time) cost."""
        return self.inspection + self.transformation + self.codegen + self.compile

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark harness."""
        return {
            "inspection": self.inspection,
            "transformation": self.transformation,
            "codegen": self.codegen,
            "compile": self.compile,
            "total": self.total,
        }


@dataclass
class CompiledArtifact:
    """State shared by every compiled-kernel artifact type."""

    kernel: KernelFunction = field(repr=False)
    module: object = field(repr=False)
    entry: callable = field(repr=False)
    options: SympilerOptions
    applied_transformations: List[str]
    decisions: Dict[str, object]
    timings: CompileTimings
    fingerprint: str

    #: Registry name used in pattern-mismatch hints and trace-span labels.
    kernel_name = "kernel"

    def _traced_numeric(self, op: str, args: tuple, kwargs: Dict[str, int]):
        """Run the numeric entry under a ``numeric`` trace span.

        Only called when tracing is enabled (the raw-array entry points take
        the direct path otherwise).  With the tracer's ``wavefront_levels``
        flag up and a wavefront-compiled module, the per-level wall times
        recorded by the C runtime are attached to the span as
        ``wf_level_seconds``.
        """
        wf = (
            observe_trace.wavefront_levels_enabled()
            and self.parallel_mode == "wavefront"
        )
        if wf:
            # Raises the runtime flag in the loaded .so; the timestamp code
            # is always compiled in, so this never recompiles anything.
            self.module.set_wavefront_profiling(True)
        with observe_trace.span(
            "numeric", kernel=self.kernel_name, op=op, fingerprint=self.fingerprint
        ) as sp:
            out = self.entry(*args, **kwargs)
            if wf:
                levels = self.module.wavefront_level_seconds()
                if levels is not None:
                    sp.set(wf_level_seconds=[float(v) for v in levels])
            return out

    @property
    def source(self) -> str:
        """The generated source code (Python or C depending on the backend)."""
        return self.module.source

    @property
    def constants(self) -> Dict[str, np.ndarray]:
        """The inspection-set constants embedded into the generated code."""
        return dict(self.kernel.constants)

    @property
    def symbolic_seconds(self) -> float:
        """Total compile-time (symbolic + codegen + compilation) cost."""
        return self.timings.total

    @property
    def schedule(self):
        """The level-set :class:`~repro.runtime.levels.ExecutionSchedule`.

        Computed by the symbolic inspector at compile time, so it is cached
        under the same pattern fingerprint as the generated code.
        """
        return self.inspection.schedule

    @property
    def parallel_mode(self) -> str:
        """Within-kernel execution mode the module was compiled in.

        ``"none"`` — serial ABI (the default); ``"wavefront"`` — level-
        parallel entry point taking a runtime thread count; ``"serial-
        fallback"`` — wavefront ABI around the serial body (requested
        wavefront, but the schedule was too deep or the kernel supernodal;
        the reason is recorded under ``decisions["wavefront"]``).
        """
        return getattr(self.module, "parallel", "none")

    @property
    def accepts_num_threads(self) -> bool:
        """True when the entry point takes a per-call thread count."""
        return self.parallel_mode != "none"

    @property
    def schedule_stats(self) -> Dict[str, object]:
        """Level-structure summary of the cached schedule (empty if none)."""
        schedule = self.schedule
        if schedule is None:
            return {}
        return {
            "n_levels": schedule.n_levels,
            "n_scheduled": schedule.n_scheduled,
            "max_width": schedule.max_width,
            "average_width": schedule.average_width,
        }

    def _entry_kwargs(self, num_threads) -> Dict[str, int]:
        """Entry keyword arguments for a requested thread count.

        Serial entry points do not take a thread count, so a request is
        silently meaningful only on wavefront-ABI artifacts — callers may
        pass ``num_threads`` unconditionally and let the artifact route it.
        """
        if num_threads is not None and self.accepts_num_threads:
            return {"num_threads": num_threads}
        return {}

    def _check_fingerprint(self, fp: str, hint: str) -> None:
        if fp != self.fingerprint:
            raise PatternMismatchError(
                "the matrix pattern differs from the pattern this kernel was "
                f"generated for; re-run {hint}"
            )


@dataclass
class SympiledTriangularSolve(CompiledArtifact):
    """A triangular solve specialized to one ``L`` pattern and RHS pattern."""

    inspection: TriangularInspectionResult = None
    kernel_name = "triangular-solve"

    def solve(self, L: CSCMatrix, b: np.ndarray, *, check_pattern: bool = False) -> np.ndarray:
        """Solve ``L x = b`` with the specialized numeric code.

        ``L`` must have the same sparsity pattern (and ``b`` a nonzero pattern
        covered by the compile-time RHS pattern) as at compile time; set
        ``check_pattern=True`` to verify this (at the cost of hashing the
        pattern arrays).
        """
        if check_pattern:
            self.verify_pattern(L)
        return self.solve_arrays(L.indptr, L.indices, L.data, b)

    def solve_arrays(
        self,
        Lp: np.ndarray,
        Li: np.ndarray,
        Lx: np.ndarray,
        b: np.ndarray,
        *,
        num_threads=None,
    ) -> np.ndarray:
        """Raw-array entry point (numeric arrays only).

        ``num_threads`` applies only to wavefront-compiled artifacts (the
        level-parallel entry takes a per-call thread count); it is ignored by
        serial artifacts, so callers need not branch on the compiled mode.
        """
        args = (Lp, Li, Lx, np.asarray(b, dtype=np.float64))
        kwargs = self._entry_kwargs(num_threads)
        if not observe_trace.enabled():
            return self.entry(*args, **kwargs)
        return self._traced_numeric("solve", args, kwargs)

    def verify_pattern(self, L: CSCMatrix) -> None:
        """Raise :class:`PatternMismatchError` if ``L`` has a different pattern."""
        extra = rhs_fingerprint_extra(self.inspection.n, self.inspection.rhs_pattern)
        fp = pattern_fingerprint(L.indptr, L.indices, extra=extra)
        self._check_fingerprint(fp, 'Sympiler.compile("triangular-solve", ...)')

    @property
    def reach_size(self) -> int:
        """Number of columns the specialized solve visits."""
        return self.inspection.reach_size


@dataclass
class SympiledFactorization(CompiledArtifact):
    """Shared behaviour of the factorization artifacts (LLᵀ, LDLᵀ, ...).

    The factor pattern, its fingerprint check and the numeric raw-array entry
    point are identical across factorization kernels; subclasses only shape
    the value of :meth:`factorize` (a factor matrix, an ``(L, D)`` pair, ...).
    """

    inspection: CholeskyInspectionResult = None
    #: Registry name shown in the pattern-mismatch hint.
    kernel_name = "factorization"
    #: Whether the kernel computes an *incomplete* (preconditioner-grade)
    #: factorization.  The direct solver refuses incomplete kernels — their
    #: factors only approximate ``A``, so they belong in an iterative
    #: method's preconditioner, not in a forward/backward solve.
    is_incomplete = False

    def factorize_arrays(
        self, Ap: np.ndarray, Ai: np.ndarray, Ax: np.ndarray, *, num_threads=None
    ):
        """Raw-array entry point: returns the backend entry's numeric output.

        ``num_threads`` applies only to wavefront-compiled artifacts (the
        level-parallel entry takes a per-call thread count); it is ignored by
        serial artifacts, so callers need not branch on the compiled mode.
        """
        args = (Ap, Ai, np.asarray(Ax, dtype=np.float64))
        kwargs = self._entry_kwargs(num_threads)
        if not observe_trace.enabled():
            return self.entry(*args, **kwargs)
        return self._traced_numeric("factorize", args, kwargs)

    def verify_pattern(self, A: CSCMatrix) -> None:
        """Raise :class:`PatternMismatchError` if ``A`` has a different pattern."""
        fp = pattern_fingerprint(A.indptr, A.indices)
        self._check_fingerprint(fp, f'Sympiler.compile("{self.kernel_name}", ...)')

    def _assemble_factor(self, lx: np.ndarray) -> CSCMatrix:
        """Numeric factor values on the predicted pattern, as a CSC matrix."""
        return CSCMatrix(
            self.inspection.n,
            self.inspection.n,
            self.inspection.l_indptr,
            self.inspection.l_indices,
            lx,
            check=False,
        )

    def assemble_factors(self, raw):
        """Shape one raw ``factorize_arrays`` output into the factor object.

        The batch execution engine (:mod:`repro.runtime.engine`) produces raw
        per-item outputs off the artifact's entry point; this hook gives them
        the same shape ``factorize`` returns (a factor matrix, an ``(L, d)``
        pair, ...), so batched and sequential callers see identical types.
        """
        raise NotImplementedError

    @property
    def factor_nnz(self) -> int:
        """Number of stored entries of the factor the kernel produces."""
        return self.inspection.factor_nnz

    @property
    def l_pattern(self) -> CSCMatrix:
        """The factor pattern (zero values), available before factorizing."""
        return self.inspection.l_pattern_matrix()


@dataclass
class SympiledCholesky(SympiledFactorization):
    """A Cholesky factorization specialized to one matrix pattern."""

    kernel_name = "cholesky"

    def assemble_factors(self, raw) -> CSCMatrix:
        """The Cholesky raw output is the ``Lx`` value array."""
        return self._assemble_factor(raw)

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> CSCMatrix:
        """Factorize ``A`` (same pattern as at compile time) into ``L``."""
        if check_pattern:
            self.verify_pattern(A)
        return self.assemble_factors(self.factorize_arrays(A.indptr, A.indices, A.data))


@dataclass
class SympiledLU(SympiledFactorization):
    """An LU factorization specialized to one (unsymmetric) matrix pattern.

    Serves square diagonally dominant systems — the Newton Jacobians of the
    paper's circuit/power-grid workloads — without pivoting, which is what
    makes the factor patterns predictable at compile time.  ``factorize``
    returns :class:`LUFactors` whose unit lower-triangular ``L`` (explicit
    unit diagonal) feeds the generated triangular-solve kernels unchanged and
    whose upper-triangular ``U`` carries the pivots.
    """

    kernel_name = "lu"
    inspection: LUInspectionResult = None

    def assemble_factors(self, raw) -> LUFactors:
        """The LU raw output is the ``(Lx, Ux)`` value-array pair."""
        lx, ux = raw
        insp = self.inspection
        U = CSCMatrix(
            insp.n,
            insp.n,
            insp.u_indptr,
            insp.u_indices,
            np.asarray(ux, dtype=np.float64),
            check=False,
        )
        return LUFactors(L=self._assemble_factor(lx), U=U)

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> LUFactors:
        """Factorize ``A`` (same pattern as at compile time) into ``L, U``."""
        if check_pattern:
            self.verify_pattern(A)
        return self.assemble_factors(self.factorize_arrays(A.indptr, A.indices, A.data))

    @property
    def u_pattern(self) -> CSCMatrix:
        """The ``U`` pattern (zero values), available before factorizing."""
        return self.inspection.u_pattern_matrix()


@dataclass
class SympiledIC0(SympiledFactorization):
    """An incomplete Cholesky IC(0) specialized to one SPD pattern.

    The factor pattern is ``tril(A)`` (no fill), so ``factorize`` returns a
    lower-triangular ``L`` with ``L Lᵀ ≈ A`` — exact on the pattern of
    ``A``, the defining property of IC(0).  Built as a *preconditioner*
    kernel: the factor feeds the generated triangular solves of a
    preconditioned iterative method (see
    :func:`repro.solvers.cg.preconditioned_conjugate_gradient`), not a
    direct solve.
    """

    kernel_name = "ic0"
    is_incomplete = True
    inspection: IC0InspectionResult = None

    def assemble_factors(self, raw) -> CSCMatrix:
        """The IC(0) raw output is the ``Lx`` value array."""
        return self._assemble_factor(raw)

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> CSCMatrix:
        """Compute the incomplete factor of ``A`` (same pattern as compiled)."""
        if check_pattern:
            self.verify_pattern(A)
        return self.assemble_factors(self.factorize_arrays(A.indptr, A.indices, A.data))


@dataclass
class SympiledILU0(SympiledFactorization):
    """An incomplete LU ILU(0) specialized to one (unsymmetric) pattern.

    No fill, no pivoting: ``L`` is unit lower triangular on the strict lower
    triangle of ``A`` (explicit unit diagonal, so the generated
    triangular-solve kernels apply unchanged), ``U`` upper triangular on
    ``triu(A)``, and ``L U`` matches ``A`` exactly on the pattern of ``A``.
    A preconditioner kernel for unsymmetric iterative solves.
    """

    kernel_name = "ilu0"
    is_incomplete = True
    inspection: ILU0InspectionResult = None

    def assemble_factors(self, raw) -> LUFactors:
        """The ILU(0) raw output is the ``(Lx, Ux)`` value-array pair."""
        lx, ux = raw
        insp = self.inspection
        U = CSCMatrix(
            insp.n,
            insp.n,
            insp.u_indptr,
            insp.u_indices,
            np.asarray(ux, dtype=np.float64),
            check=False,
        )
        return LUFactors(L=self._assemble_factor(lx), U=U)

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> LUFactors:
        """Compute the incomplete factors of ``A`` (same pattern as compiled)."""
        if check_pattern:
            self.verify_pattern(A)
        return self.assemble_factors(self.factorize_arrays(A.indptr, A.indices, A.data))

    @property
    def u_pattern(self) -> CSCMatrix:
        """The ``U`` pattern (zero values), available before factorizing."""
        return self.inspection.u_pattern_matrix()


@dataclass
class SympiledLDLT(SympiledFactorization):
    """An LDLᵀ factorization specialized to one symmetric matrix pattern.

    Serves symmetric *indefinite* systems (saddle-point/KKT matrices) that
    Cholesky rejects; ``factorize`` returns :class:`LDLTFactors` whose unit
    lower-triangular ``L`` (explicit unit diagonal) shares the Cholesky factor
    pattern, so the generated triangular-solve kernels apply to it unchanged.
    """

    kernel_name = "ldlt"

    def assemble_factors(self, raw) -> LDLTFactors:
        """The LDLᵀ raw output is the ``(Lx, D)`` value-array pair."""
        lx, d = raw
        return LDLTFactors(
            L=self._assemble_factor(lx), d=np.asarray(d, dtype=np.float64)
        )

    def factorize(self, A: CSCMatrix, *, check_pattern: bool = False) -> LDLTFactors:
        """Factorize ``A`` (same pattern as at compile time) into ``L, D``."""
        if check_pattern:
            self.verify_pattern(A)
        return self.assemble_factors(self.factorize_arrays(A.indptr, A.indices, A.data))
