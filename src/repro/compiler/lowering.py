"""Lowering: numerical method → initial annotated AST.

Sympiler first lowers the requested numerical method into a loop-nest AST
whose loops are annotated with the inspector-guided transformations that may
apply to them (Figure 2a of the paper).  No sparsity-specific information is
used here: the lowered code is the generic algorithm (Figure 1b for the
triangular solve, Figure 4 for left-looking Cholesky); specialization happens
in the transformation passes.
"""

from __future__ import annotations

from repro.compiler.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Comment,
    ForRange,
    IntConst,
    KernelFunction,
    Var,
)

__all__ = [
    "lower_triangular_solve",
    "lower_cholesky",
    "lower_ldlt",
    "lower_lu",
    "lower_ic0",
    "lower_ilu0",
]


def lower_triangular_solve() -> KernelFunction:
    """Initial AST of the forward-substitution triangular solve (Fig. 1b).

    The column loop is annotated as both VI-Prune-able (its iteration space
    can be restricted to the reach-set) and VS-Block-able (consecutive columns
    with equal structure can be solved as dense blocks); the inner update is
    annotated as vectorizable.
    """
    j = Var("j")
    p = Var("p")
    lp_j = ArrayRef("Lp", j)
    lp_j1 = ArrayRef("Lp", BinOp("+", j, IntConst(1)))

    inner = ForRange(
        "p",
        BinOp("+", lp_j, IntConst(1)),
        lp_j1,
        Block(
            [
                Assign(
                    ArrayRef("x", ArrayRef("Li", p)),
                    BinOp("*", ArrayRef("Lx", p), ArrayRef("x", j)),
                    op="-=",
                )
            ]
        ),
        role="inner-update",
        vectorizable=True,
    )
    column_body = Block(
        [
            Assign(ArrayRef("x", j), ArrayRef("Lx", lp_j), op="/="),
            inner,
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=True,
        blockable=True,
    )
    body = Block(
        [
            Comment("forward substitution: L x = b, L in CSC {n, Lp, Li, Lx}"),
            Assign(Var("x"), Call("copy", (Var("b"),))),
            column_loop,
        ]
    )
    return KernelFunction(
        name="triangular_solve",
        params=["Lp", "Li", "Lx", "b"],
        body=body,
        method="triangular-solve",
        meta={"algorithm": "forward-substitution", "figure": "1b"},
    )


def lower_cholesky() -> KernelFunction:
    """Initial AST of left-looking sparse Cholesky (Fig. 4 of the paper).

    The update loop over previously factorized columns is annotated as
    VI-Prune-able (it can be restricted to the row sparsity pattern of ``L``),
    and the outer column loop as VS-Block-able (columns can be grouped into
    supernodes and processed with dense sub-kernels).
    """
    j = Var("j")
    r = Var("r")

    update_body = Block(
        [
            # f(j:n) -= L(j:n, r) * L(j, r)
            Assign(
                Var("f"),
                BinOp("*", Call("L_col_tail", (r, j)), Call("L_entry", (j, r))),
                op="-=",
            )
        ]
    )
    update_loop = ForRange(
        "r",
        IntConst(0),
        j,
        update_body,
        role="update-loop",
        prunable=True,
    )
    column_body = Block(
        [
            Comment("gather column j of A into the dense work vector f"),
            Assign(Var("f"), Call("A_col_lower", (j,))),
            update_loop,
            Comment("column factorization: diagonal then off-diagonal scaling"),
            Assign(Call("L_entry", (j, j)), Call("sqrt", (ArrayRef("f", j),))),
            Assign(
                Call("L_col_tail", (j, BinOp("+", j, IntConst(1)))),
                BinOp("/", Var("f"), Call("L_entry", (j, j))),
                op="=",
                role="off-diagonal-scale",
                vectorizable=True,
            ),
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=False,
        blockable=True,
    )
    body = Block(
        [
            Comment("left-looking sparse Cholesky: A = L * L^T"),
            column_loop,
        ]
    )
    return KernelFunction(
        name="cholesky",
        params=["Ap", "Ai", "Ax"],
        body=body,
        method="cholesky",
        meta={"algorithm": "left-looking", "figure": "4"},
    )


def lower_ldlt() -> KernelFunction:
    """Initial AST of left-looking sparse LDLᵀ (``A = L D Lᵀ``).

    Structurally the Figure 4 loop nest with the square-root column
    factorization replaced by pivot extraction (``D(j) = f(j)``) and a
    division by the pivot; every descendant update is scaled by ``D(r)``.
    The same loops carry the same transformation annotations as Cholesky:
    the update loop is VI-Prune-able, the column loop VS-Block-able.
    """
    j = Var("j")
    r = Var("r")

    update_body = Block(
        [
            # f(j:n) -= L(j:n, r) * (D(r) * L(j, r))
            Assign(
                Var("f"),
                BinOp(
                    "*",
                    Call("L_col_tail", (r, j)),
                    BinOp("*", Call("D_entry", (r,)), Call("L_entry", (j, r))),
                ),
                op="-=",
            )
        ]
    )
    update_loop = ForRange(
        "r",
        IntConst(0),
        j,
        update_body,
        role="update-loop",
        prunable=True,
    )
    column_body = Block(
        [
            Comment("gather column j of A into the dense work vector f"),
            Assign(Var("f"), Call("A_col_lower", (j,))),
            update_loop,
            Comment("column factorization: pivot extraction, then pivot scaling"),
            Assign(Call("D_entry", (j,)), ArrayRef("f", j)),
            Assign(Call("L_entry", (j, j)), IntConst(1)),
            Assign(
                Call("L_col_tail", (j, BinOp("+", j, IntConst(1)))),
                BinOp("/", Var("f"), Call("D_entry", (j,))),
                op="=",
                role="off-diagonal-scale",
                vectorizable=True,
            ),
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=False,
        blockable=True,
    )
    body = Block(
        [
            Comment("left-looking sparse LDL^T: A = L * D * L^T"),
            column_loop,
        ]
    )
    return KernelFunction(
        name="ldlt",
        params=["Ap", "Ai", "Ax"],
        body=body,
        method="ldlt",
        meta={"algorithm": "left-looking", "figure": "4 (LDL^T variant)"},
    )


def lower_lu() -> KernelFunction:
    """Initial AST of left-looking sparse LU (``A = L U``, no pivoting).

    The Figure 4 loop nest generalized to an unsymmetric matrix: the gathered
    column covers both triangles of ``A``, the update loop runs over the
    columns ``k < j`` with ``U[k, j] != 0`` (the GP reach of ``A(:, j)``) and
    the column factorization splits the work vector into ``U(:, j)`` and the
    pivot-scaled unit-diagonal ``L(:, j)``.  The update loop is annotated as
    VI-Prune-able (it can be restricted to the symbolic ``U`` pattern), the
    column loop as VS-Block-able (column-etree supernode candidates).
    """
    j = Var("j")
    k = Var("k")

    update_body = Block(
        [
            # f(k+1:n) -= L(k+1:n, k) * U(k, j)   [U(k, j) = f(k) at this point]
            Assign(
                Var("f"),
                BinOp(
                    "*",
                    Call("L_col_tail", (k, BinOp("+", k, IntConst(1)))),
                    Call("U_entry", (k, j)),
                ),
                op="-=",
            )
        ]
    )
    update_loop = ForRange(
        "k",
        IntConst(0),
        j,
        update_body,
        role="update-loop",
        prunable=True,
    )
    column_body = Block(
        [
            Comment("gather the full column j of A into the dense work vector f"),
            Assign(Var("f"), Call("A_col", (j,))),
            update_loop,
            Comment("column factorization: U split-off, then pivot scaling of L"),
            Assign(Call("U_col", (j,)), Var("f")),
            Assign(Call("L_entry", (j, j)), IntConst(1)),
            Assign(
                Call("L_col_tail", (j, BinOp("+", j, IntConst(1)))),
                BinOp("/", Var("f"), Call("U_entry", (j, j))),
                op="=",
                role="off-diagonal-scale",
                vectorizable=True,
            ),
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=False,
        blockable=True,
    )
    body = Block(
        [
            Comment("left-looking sparse LU: A = L * U (partial-pivoting-free)"),
            column_loop,
        ]
    )
    return KernelFunction(
        name="lu",
        params=["Ap", "Ai", "Ax"],
        body=body,
        method="lu",
        meta={"algorithm": "left-looking", "figure": "4 (GP LU variant)"},
    )


def lower_ic0() -> KernelFunction:
    """Initial AST of incomplete Cholesky IC(0) (``A ≈ L Lᵀ``, no fill).

    The Figure 4 loop nest with one extra constraint: every update is
    restricted to the pattern of ``tril(A)`` — updates landing outside it are
    dropped.  The update loop is annotated as VI-Prune-able (its iteration
    space *and* its scatter prune to the ``A`` pattern), the column loop as
    VS-Block-able (etree supernode candidates, recorded like LU).
    """
    j = Var("j")
    r = Var("r")

    update_body = Block(
        [
            # f(P(j:n, j)) -= L(P(j:n, j) ∩ P(:, r), r) * L(j, r)
            Assign(
                Var("f"),
                BinOp("*", Call("L_col_tail_on_pattern", (r, j)), Call("L_entry", (j, r))),
                op="-=",
            )
        ]
    )
    update_loop = ForRange(
        "r",
        IntConst(0),
        j,
        update_body,
        role="update-loop",
        prunable=True,
    )
    column_body = Block(
        [
            Comment("gather the lower part of column j of A (the factor pattern)"),
            Assign(Var("f"), Call("A_col_lower", (j,))),
            update_loop,
            Comment("column factorization: diagonal then off-diagonal scaling"),
            Assign(Call("L_entry", (j, j)), Call("sqrt", (ArrayRef("f", j),))),
            Assign(
                Call("L_col_tail", (j, BinOp("+", j, IntConst(1)))),
                BinOp("/", Var("f"), Call("L_entry", (j, j))),
                op="=",
                role="off-diagonal-scale",
                vectorizable=True,
            ),
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=False,
        blockable=True,
    )
    body = Block(
        [
            Comment("incomplete Cholesky IC(0): A ~= L * L^T on the pattern of tril(A)"),
            column_loop,
        ]
    )
    return KernelFunction(
        name="ic0",
        params=["Ap", "Ai", "Ax"],
        body=body,
        method="ic0",
        meta={"algorithm": "left-looking-no-fill", "figure": "4 (IC(0) variant)"},
    )


def lower_ilu0() -> KernelFunction:
    """Initial AST of incomplete LU ILU(0) (``A ≈ L U``, no fill, no pivoting).

    The left-looking LU loop nest restricted to the ``A`` pattern: the update
    loop runs over the above-diagonal ``U`` pattern of column ``j`` (read off
    ``A`` directly — no GP reach) and scatters only into entries of the
    column's own ``A`` pattern.  Annotations mirror LU: the update loop is
    VI-Prune-able, the column loop VS-Block-able.
    """
    j = Var("j")
    k = Var("k")

    update_body = Block(
        [
            # f(P(:, j) ∩ P(k+1:n, k)) -= L(..., k) * U(k, j)
            Assign(
                Var("f"),
                BinOp(
                    "*",
                    Call("L_col_tail_on_pattern", (k, BinOp("+", k, IntConst(1)))),
                    Call("U_entry", (k, j)),
                ),
                op="-=",
            )
        ]
    )
    update_loop = ForRange(
        "k",
        IntConst(0),
        j,
        update_body,
        role="update-loop",
        prunable=True,
    )
    column_body = Block(
        [
            Comment("gather the full column j of A (the factor pattern)"),
            Assign(Var("f"), Call("A_col", (j,))),
            update_loop,
            Comment("column factorization: U split-off, then pivot scaling of L"),
            Assign(Call("U_col", (j,)), Var("f")),
            Assign(Call("L_entry", (j, j)), IntConst(1)),
            Assign(
                Call("L_col_tail", (j, BinOp("+", j, IntConst(1)))),
                BinOp("/", Var("f"), Call("U_entry", (j, j))),
                op="=",
                role="off-diagonal-scale",
                vectorizable=True,
            ),
        ]
    )
    column_loop = ForRange(
        "j",
        IntConst(0),
        Var("n"),
        column_body,
        role="column-loop",
        prunable=False,
        blockable=True,
    )
    body = Block(
        [
            Comment("incomplete LU ILU(0): A ~= L * U on the pattern of A"),
            column_loop,
        ]
    )
    return KernelFunction(
        name="ilu0",
        params=["Ap", "Ai", "Ax"],
        body=body,
        method="ilu0",
        meta={"algorithm": "left-looking-no-fill", "figure": "4 (ILU(0) variant)"},
    )
