"""Code-generation backends.

* :mod:`repro.compiler.codegen.python_backend` — emits matrix-specialized
  Python/NumPy source and compiles it with :func:`compile`/``exec``.
* :mod:`repro.compiler.codegen.c_backend` — emits matrix-specialized C,
  compiles it with the system compiler and loads it through ``ctypes``.
* :mod:`repro.compiler.codegen.runtime` — the tiny runtime namespace the
  generated Python code links against (dense micro-kernels), plus helpers for
  caching generated artifacts on disk.
"""

from repro.compiler.codegen.c_backend import CBackend, CCompilationError, c_compiler_available
from repro.compiler.codegen.python_backend import GeneratedModule, PythonBackend

__all__ = [
    "PythonBackend",
    "GeneratedModule",
    "CBackend",
    "CCompilationError",
    "c_compiler_available",
]
