"""Runtime support for generated Python code.

The Python backend emits source that refers to a tiny runtime namespace named
``_rt`` providing the dense micro-kernels (the analogue of linking generated C
against BLAS or against Sympiler's own specialized kernels).  The namespace is
deliberately minimal and read-only so that generated code stays auditable:
everything else the generated code touches is either a NumPy primitive or an
embedded constant.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import types

import numpy as np

from repro.kernels.dense import (
    dense_cholesky,
    dense_ldlt,
    dense_lower_solve,
    dense_solve_transposed_right,
    small_cholesky,
    small_lower_solve,
)

__all__ = [
    "runtime_namespace",
    "pattern_fingerprint",
    "rhs_fingerprint_extra",
    "generated_code_dir",
]


def runtime_namespace() -> types.SimpleNamespace:
    """The ``_rt`` namespace injected into generated Python modules."""
    return types.SimpleNamespace(
        dense_cholesky=dense_cholesky,
        dense_ldlt=dense_ldlt,
        dense_lower_solve=dense_lower_solve,
        dense_solve_transposed_right=dense_solve_transposed_right,
        small_cholesky=small_cholesky,
        small_lower_solve=small_lower_solve,
    )


def pattern_fingerprint(*arrays: np.ndarray, extra: str = "") -> str:
    """A short stable fingerprint of one or more integer pattern arrays.

    Used to name cached artifacts and to verify at solve/factorize time that
    the numeric inputs carry the same sparsity pattern the code was generated
    for.
    """
    digest = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    if extra:
        digest.update(extra.encode())
    return digest.hexdigest()[:16]


def rhs_fingerprint_extra(n: int, rhs: "np.ndarray | None") -> str:
    """Fingerprint suffix encoding a (normalized) RHS pattern.

    ``rhs`` must be ``None`` (dense) or sorted unique in-range indices, as the
    triangular inspector produces.  A dense RHS — explicit or implicit — maps
    to the constant token ``"dense"`` rather than an O(n) index listing, so
    fingerprinting stays cheap on the factor-once/solve-many hot path.  Used
    by both the registry's cache fingerprint and the compiled artifact's
    ``verify_pattern``, which therefore always agree.
    """
    if rhs is None or rhs.size == n:
        return "dense"
    return ",".join(str(int(i)) for i in rhs)


def generated_code_dir() -> str:
    """Directory where generated sources / shared objects are cached.

    Controlled by the ``REPRO_SYMPILER_CACHE`` environment variable; defaults
    to a per-user directory under the system temp dir.  The directory is
    created on first use.
    """
    root = os.environ.get(
        "REPRO_SYMPILER_CACHE",
        os.path.join(tempfile.gettempdir(), f"repro-sympiler-{os.getuid()}"),
    )
    os.makedirs(root, exist_ok=True)
    return root
