"""Specialized-Python code generation backend.

Walks the transformed kernel AST and emits a Python module specialized for
one sparsity pattern:

* loop structures follow the transformed AST (pruned loops over embedded
  inspection sets, peeled straight-line columns, supernode blocks),
* every position derived from the sparsity pattern (diagonal positions, panel
  slice bounds, update positions) appears either as a literal integer or as
  an element of an embedded constant array — the generated numeric code never
  performs a symbolic computation,
* inner updates are emitted as NumPy slice operations (the backend's analogue
  of vectorization), dense blocks call the ``_rt`` micro-kernels or are fully
  unrolled when the transformation annotated them so.

The resulting :class:`GeneratedModule` holds the source text, the embedded
constants and a compiled entry point.

Cross-process artifact sharing: generated sources (``.py``) and their
embedded constant arrays (``.npz``) are persisted to the shared
``REPRO_SYMPILER_CACHE`` directory under the same
``kernel + pattern fingerprint + options fingerprint`` identity that keys
the in-memory artifact cache — the python analogue of the C backend's
on-disk ``.so`` cache, using the same temp-file + atomic-rename protocol.
A later process compiling the same pattern loads source and constants back
instead of re-walking the AST; hits and writes are counted in
:func:`~repro.compiler.codegen.c_backend.disk_cache_stats`
(``py_reuses`` / ``py_writes``), which is how CI asserts the warm-cache
zero-regeneration invariant for toolchain-free environments too.  The cache
stem additionally hashes the package version, so an upgraded emitter never
reuses a stale source.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._version import __version__

from repro.compiler.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Comment,
    Expr,
    FloatConst,
    ForRange,
    If,
    IncompleteFactorLoop,
    IntConst,
    KernelFunction,
    PeeledColumnSolve,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    Stmt,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    Var,
)
from repro.compiler.codegen.c_backend import (
    atomic_write_text,
    disk_cache_stats,
    tmp_path_for,
)
from repro.compiler.codegen.runtime import generated_code_dir, runtime_namespace
from repro.compiler.registration import register_unique
from repro.observe.trace import span as observe_span

__all__ = [
    "PythonBackend",
    "GeneratedModule",
    "CodegenError",
    "PythonMethodSpec",
    "register_python_method",
]

#: Supernode widths above this value are gathered with a small loop instead of
#: fully enumerated slice assignments, to keep generated sources compact.
_LARGE_BLOCK_LOOP_WIDTH = 24

#: Revision of the python emitters, hashed into the persisted-source cache
#: stem alongside the package version.  Bump on ANY change to the generated
#: source, so a development checkout never reloads sources a previous build
#: of the emitter persisted (releases are already separated by the version).
PY_CODEGEN_REVISION = 2


class CodegenError(RuntimeError):
    """Raised when the backend cannot emit code for a kernel."""


@dataclass(frozen=True)
class PythonMethodSpec:
    """Entry-point shape of one kernel method (params + returned expression).

    The backend dispatches on this table instead of per-kernel branches;
    registering a new kernel method means adding a spec, not editing the
    generator.
    """

    params: str
    result: str


_PY_METHOD_SPECS: Dict[str, PythonMethodSpec] = {
    "triangular-solve": PythonMethodSpec(params="Lp, Li, Lx, b", result="x"),
    "cholesky": PythonMethodSpec(params="Ap, Ai, Ax", result="Lx"),
    "ldlt": PythonMethodSpec(params="Ap, Ai, Ax", result="(Lx, D)"),
    "lu": PythonMethodSpec(params="Ap, Ai, Ax", result="(Lx, Ux)"),
    "ic0": PythonMethodSpec(params="Ap, Ai, Ax", result="Lx"),
    "ilu0": PythonMethodSpec(params="Ap, Ai, Ax", result="(Lx, Ux)"),
}


def register_python_method(method: str, spec: PythonMethodSpec) -> None:
    """Register the entry-point shape of an additional kernel method."""
    register_unique(_PY_METHOD_SPECS, method, spec, kind="python method spec")


# --------------------------------------------------------------------------- #
# On-disk persisted-source cache (cross-process sharing)
# --------------------------------------------------------------------------- #
def _disk_cache_paths(cache_token: str, entry_name: str) -> Tuple[str, str]:
    """``(.py, .npz)`` cache paths for one compile identity.

    The stem hashes the driver's cache token (kernel + pattern fingerprint +
    options fingerprint) together with the package version, so a changed
    emitter or option bundle never aliases a previously persisted source.
    """
    digest = hashlib.sha256(
        f"{cache_token}|{__version__}|r{PY_CODEGEN_REVISION}".encode()
    ).hexdigest()[:16]
    stem = os.path.join(generated_code_dir(), f"{entry_name}_py_{digest}")
    return stem + ".py", stem + ".npz"


def _load_persisted_module(py_path: str, npz_path: str) -> Optional[Tuple[str, Dict[str, np.ndarray]]]:
    """Load a persisted (source, constants) pair, or ``None`` when absent.

    A half-present or unreadable entry (e.g. written by an interrupted
    process before the atomic rename protocol existed) is treated as a miss
    rather than an error — the caller simply regenerates and overwrites it.
    """
    if not (os.path.exists(py_path) and os.path.exists(npz_path)):
        return None
    try:
        with open(py_path, "r", encoding="utf-8") as fh:
            source = fh.read()
        with np.load(npz_path) as archive:
            constants = {name: archive[name] for name in archive.files}
    except Exception:
        # Any unreadable entry — truncated copy, disk corruption, a bad zip
        # (np.load raises zipfile.BadZipFile, not ValueError) — is a miss:
        # the caller regenerates and atomically overwrites it.
        return None
    return source, constants


def _persist_module(py_path: str, npz_path: str, source: str, constants: Dict[str, np.ndarray]) -> None:
    """Persist a generated module atomically (source first, then constants).

    The loader requires *both* files, and the ``.npz`` lands last, so a
    concurrent reader either sees a complete entry or a miss.
    """
    atomic_write_text(py_path, source)
    tmp = tmp_path_for(npz_path) + ".npz"
    try:
        np.savez(tmp, **constants)
        os.replace(tmp, npz_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


@dataclass
class GeneratedModule:
    """A generated, compiled Python module specialized to one pattern."""

    source: str
    entry_name: str
    constants: Dict[str, np.ndarray]
    method: str
    codegen_seconds: float
    compile_seconds: float = 0.0
    _callable: Optional[Callable] = field(default=None, repr=False)

    def compile(self) -> Callable:
        """Compile (exec) the generated source and return the entry callable."""
        if self._callable is not None:
            return self._callable
        start = time.perf_counter()
        with observe_span("py-compile", entry=self.entry_name, method=self.method):
            namespace: Dict[str, object] = {"np": np, "_rt": runtime_namespace()}
            for name, value in self.constants.items():
                namespace[name] = value
            code = compile(self.source, f"<sympiler:{self.entry_name}>", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own generated code
        self.compile_seconds = time.perf_counter() - start
        fn = namespace.get(self.entry_name)
        if not callable(fn):
            raise CodegenError(f"generated module does not define {self.entry_name!r}")
        self._callable = fn
        return fn

    @property
    def line_count(self) -> int:
        """Number of lines of generated source."""
        return self.source.count("\n") + 1


class _Emitter:
    """Accumulates indented source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.indent) + line if line else "")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class PythonBackend:
    """Generate specialized Python source from a transformed kernel."""

    name = "python"

    def generate(self, kernel: KernelFunction, context) -> GeneratedModule:
        """Emit a :class:`GeneratedModule` for ``kernel``.

        ``context`` is the :class:`~repro.compiler.transforms.base.CompilationContext`
        used during transformation; the backend reads the matrix order from it
        for the generic (un-transformed) loops.
        """
        start = time.perf_counter()
        entry = kernel.name
        method_spec = _PY_METHOD_SPECS.get(kernel.method)
        if method_spec is None:
            raise CodegenError(f"unsupported method {kernel.method!r}")
        cache_token = getattr(context, "cache_token", None)
        paths = _disk_cache_paths(cache_token, entry) if cache_token else None
        if paths is not None:
            persisted = _load_persisted_module(*paths)
            if persisted is not None:
                # Cross-process hit: a sibling process already generated this
                # exact (kernel, pattern, options) module — skip the AST walk.
                source, self._constants = persisted
                disk_cache_stats().bump("py_reuses")
                for name, value in self._constants.items():
                    if name not in kernel.constants:
                        kernel.constants[name] = value
                return GeneratedModule(
                    source=source,
                    entry_name=entry,
                    constants=dict(self._constants),
                    method=kernel.method,
                    codegen_seconds=time.perf_counter() - start,
                )
        self._constants = {}
        self._const_counter = 0
        self._n = context.inspection.n
        out = _Emitter()
        out.emit(f'"""Sympiler-generated {kernel.method} kernel (python backend).')
        out.emit("")
        out.emit("Auto-generated; all symbolic analysis was performed at compile time.")
        out.emit('"""')
        out.emit(f"def {entry}({method_spec.params}):")
        out.push()
        self._emit_block(out, kernel.body, kernel)
        out.emit(f"return {method_spec.result}")
        out.pop()
        source = out.source()
        if paths is not None:
            _persist_module(*paths, source, dict(self._constants))
            disk_cache_stats().bump("py_writes")
        codegen_seconds = time.perf_counter() - start
        # Also expose the constants on the kernel for introspection.
        for name, value in self._constants.items():
            if name not in kernel.constants:
                kernel.constants[name] = value
        return GeneratedModule(
            source=source,
            entry_name=entry,
            constants=dict(self._constants),
            method=kernel.method,
            codegen_seconds=codegen_seconds,
        )

    # ------------------------------------------------------------------ #
    # Constant management
    # ------------------------------------------------------------------ #
    def _add_constant(self, name: str, value: np.ndarray) -> str:
        cname = f"_C_{name}"
        if cname in self._constants:
            existing = self._constants[cname]
            if existing is value or (
                existing.shape == np.asarray(value).shape and np.array_equal(existing, value)
            ):
                return cname
            self._const_counter += 1
            cname = f"_C_{name}_{self._const_counter}"
        self._constants[cname] = np.asarray(value)
        return cname

    # ------------------------------------------------------------------ #
    # Statement dispatch
    # ------------------------------------------------------------------ #
    def _emit_block(self, out: _Emitter, block: Block, kernel: KernelFunction) -> None:
        for stmt in block.statements:
            self._emit_stmt(out, stmt, kernel)

    def _emit_stmt(self, out: _Emitter, stmt: Stmt, kernel: KernelFunction) -> None:
        if isinstance(stmt, Comment):
            out.emit(f"# {stmt.text}")
        elif isinstance(stmt, Block):
            self._emit_block(out, stmt, kernel)
        elif isinstance(stmt, Assign):
            self._emit_generic_assign(out, stmt)
        elif isinstance(stmt, ForRange):
            self._emit_generic_for(out, stmt, kernel)
        elif isinstance(stmt, If):
            out.emit(f"if {self._expr(stmt.condition)}:")
            out.push()
            self._emit_block(out, stmt.body, kernel)
            out.pop()
        elif isinstance(stmt, PrunedColumnSolveLoop):
            self._emit_pruned_column_loop(out, stmt)
        elif isinstance(stmt, PeeledColumnSolve):
            self._emit_peeled_column(out, stmt)
        elif isinstance(stmt, SupernodeTriangularBlock):
            self._emit_supernode_trisolve(out, stmt)
        elif isinstance(stmt, SimplicialCholeskyLoop):
            self._emit_simplicial_cholesky(out, stmt)
        elif isinstance(stmt, SupernodalCholeskyLoop):
            self._emit_supernodal_cholesky(out, stmt)
        elif isinstance(stmt, IncompleteFactorLoop):
            self._emit_incomplete_factor(out, stmt)
        else:
            raise CodegenError(f"python backend cannot emit {type(stmt).__name__}")

    # ------------------------------------------------------------------ #
    # Generic expressions / statements (used by un-transformed kernels)
    # ------------------------------------------------------------------ #
    def _expr(self, e: Expr, subst: Optional[Dict[str, str]] = None) -> str:
        subst = subst or {}
        if isinstance(e, Var):
            if e.name in subst:
                return subst[e.name]
            if e.name == "n":
                return str(self._n)
            return e.name
        if isinstance(e, IntConst):
            return str(e.value)
        if isinstance(e, FloatConst):
            return repr(e.value)
        if isinstance(e, ArrayRef):
            return f"{e.array}[{self._expr(e.index, subst)}]"
        if isinstance(e, BinOp):
            return f"({self._expr(e.left, subst)} {e.op} {self._expr(e.right, subst)})"
        if isinstance(e, Call):
            args = [self._expr(a, subst) for a in e.args]
            if e.func == "copy":
                return f"np.array({args[0]}, dtype=np.float64)"
            if e.func == "sqrt":
                return f"({args[0]}) ** 0.5"
            return f"_rt.{e.func}({', '.join(args)})"
        raise CodegenError(f"cannot emit expression {type(e).__name__}")

    def _emit_generic_assign(self, out: _Emitter, stmt: Assign, subst: Optional[Dict[str, str]] = None) -> None:
        out.emit(f"{self._expr(stmt.target, subst)} {stmt.op} {self._expr(stmt.value, subst)}")

    def _emit_generic_for(self, out: _Emitter, stmt: ForRange, kernel: KernelFunction) -> None:
        if stmt.annotations.get("vectorizable") and self._loop_is_vectorizable(stmt):
            # Replace the loop variable by a slice over the loop bounds.
            slice_text = f"{self._expr(stmt.start)}:{self._expr(stmt.end)}"
            subst = {stmt.index: slice_text}
            for inner in stmt.body.statements:
                if isinstance(inner, Assign):
                    self._emit_generic_assign(out, inner, subst)
            return
        out.emit(
            f"for {stmt.index} in range({self._expr(stmt.start)}, {self._expr(stmt.end)}):"
        )
        out.push()
        self._emit_block(out, stmt.body, kernel)
        out.pop()

    @staticmethod
    def _loop_is_vectorizable(stmt: ForRange) -> bool:
        """A loop can be emitted as a slice when its body is plain assignments."""
        return all(isinstance(s, (Assign, Comment)) for s in stmt.body.statements)

    # ------------------------------------------------------------------ #
    # Triangular solve emitters
    # ------------------------------------------------------------------ #
    def _emit_pruned_column_loop(self, out: _Emitter, stmt: PrunedColumnSolveLoop) -> None:
        cname = self._add_constant(stmt.constant_name, stmt.columns)
        out.emit(f"# pruned column loop over {stmt.columns.size} columns")
        out.emit(f"for j in {cname}:")
        out.push()
        out.emit("p0 = Lp[j]")
        out.emit("p1 = Lp[j + 1]")
        out.emit("xj = x[j] / Lx[p0]")
        out.emit("x[j] = xj")
        if stmt.vectorize:
            out.emit("x[Li[p0 + 1:p1]] -= Lx[p0 + 1:p1] * xj")
        else:
            out.emit("for p in range(p0 + 1, p1):")
            out.push()
            out.emit("x[Li[p]] -= Lx[p] * xj")
            out.pop()
        out.pop()

    def _emit_peeled_column(self, out: _Emitter, stmt: PeeledColumnSolve) -> None:
        j = stmt.column
        out.emit(f"# peeled column {j} ({stmt.nnz} stored entries)")
        if stmt.nnz == 1:
            out.emit(f"x[{j}] /= Lx[{stmt.diag_pos}]")
            return
        out.emit(f"xj = x[{j}] / Lx[{stmt.diag_pos}]")
        out.emit(f"x[{j}] = xj")
        if stmt.unroll:
            for offset, row in enumerate(stmt.rows):
                out.emit(f"x[{int(row)}] -= Lx[{stmt.offdiag_start + offset}] * xj")
        else:
            s0, s1 = stmt.offdiag_start, stmt.offdiag_end
            out.emit(f"x[Li[{s0}:{s1}]] -= Lx[{s0}:{s1}] * xj")

    def _emit_supernode_trisolve(self, out: _Emitter, stmt: SupernodeTriangularBlock) -> None:
        c0, w, n_rows = stmt.c0, stmt.width, stmt.n_rows
        col_starts = stmt.col_starts
        n_off = stmt.n_offdiag_rows
        off_lo = stmt.rows_start + w
        off_hi = stmt.rows_end
        out.emit(
            f"# supernode {stmt.sn_id}: columns {c0}..{c0 + w}, "
            f"{n_off} off-diagonal rows"
        )
        if stmt.unroll:
            # Fully unrolled forward substitution on the diagonal block.
            for ii in range(w):
                terms = []
                for jj in range(ii):
                    pos = int(col_starts[jj]) + (ii - jj)
                    terms.append(f"Lx[{pos}] * xb{jj}")
                rhs = f"x[{c0 + ii}]"
                if terms:
                    rhs = f"({rhs} - " + " - ".join(terms) + ")"
                out.emit(f"xb{ii} = {rhs} / Lx[{int(col_starts[ii])}]")
            for ii in range(w):
                out.emit(f"x[{c0 + ii}] = xb{ii}")
            if n_off > 0:
                panel_terms = []
                for jj in range(w):
                    p0 = int(col_starts[jj]) + (w - jj)
                    p1 = int(col_starts[jj]) + (n_rows - jj)
                    panel_terms.append(f"Lx[{p0}:{p1}] * xb{jj}")
                out.emit(f"x[Li[{off_lo}:{off_hi}]] -= " + " + ".join(panel_terms))
            return
        # Gathered dense block path.
        if w <= _LARGE_BLOCK_LOOP_WIDTH:
            out.emit(f"_D = np.zeros(({w}, {w}))")
            for jj in range(w):
                p0 = int(col_starts[jj])
                out.emit(f"_D[{jj}:, {jj}] = Lx[{p0}:{p0 + (w - jj)}]")
            if n_off > 0:
                panel_cols = []
                for jj in range(w):
                    p0 = int(col_starts[jj]) + (w - jj)
                    p1 = int(col_starts[jj]) + (n_rows - jj)
                    panel_cols.append(f"Lx[{p0}:{p1}]")
                out.emit(f"_P = np.stack(({', '.join(panel_cols)},), axis=1)")
        else:
            cs_name = self._add_constant(f"sn{stmt.sn_id}_col_starts", col_starts)
            out.emit(f"_D = np.zeros(({w}, {w}))")
            out.emit(f"_P = np.empty(({n_off}, {w}))")
            out.emit(f"for _jj in range({w}):")
            out.push()
            out.emit(f"_s = {cs_name}[_jj]")
            out.emit(f"_D[_jj:, _jj] = Lx[_s:_s + ({w} - _jj)]")
            out.emit(f"_P[:, _jj] = Lx[_s + ({w} - _jj):_s + ({n_rows} - _jj)]")
            out.pop()
        out.emit(f"_xb = _rt.dense_lower_solve(_D, x[{c0}:{c0 + w}])")
        out.emit(f"x[{c0}:{c0 + w}] = _xb")
        if n_off > 0:
            out.emit(f"x[Li[{off_lo}:{off_hi}]] -= _P @ _xb")

    # ------------------------------------------------------------------ #
    # Cholesky emitters
    # ------------------------------------------------------------------ #
    def _emit_cholesky_preamble(
        self, out: _Emitter, l_indptr: np.ndarray, l_indices: np.ndarray,
        a_diag_pos: np.ndarray, a_col_end: np.ndarray, n: int,
        *, ldlt: bool = False,
    ) -> None:
        lp = self._add_constant("l_indptr", l_indptr)
        li = self._add_constant("l_indices", l_indices)
        ad = self._add_constant("a_diag_pos", a_diag_pos)
        ae = self._add_constant("a_col_end", a_col_end)
        out.emit(f"Lp = {lp}")
        out.emit(f"Li = {li}")
        out.emit(f"_ad = {ad}")
        out.emit(f"_ae = {ae}")
        out.emit(f"Lx = np.zeros({int(l_indptr[-1])})")
        if ldlt:
            out.emit(f"D = np.empty({n})")
        out.emit(f"f = np.zeros({n})")

    def _emit_simplicial_lu(self, out: _Emitter, stmt: SimplicialCholeskyLoop) -> None:
        n = stmt.n
        lp = self._add_constant("l_indptr", stmt.l_indptr)
        li = self._add_constant("l_indices", stmt.l_indices)
        up = self._add_constant("u_indptr", stmt.u_indptr)
        ui = self._add_constant("u_indices", stmt.u_indices)
        ad = self._add_constant("a_col_start", stmt.a_diag_pos)
        ae = self._add_constant("a_col_end", stmt.a_col_end)
        pp = self._add_constant("prune_ptr", stmt.prune_ptr)
        upos = self._add_constant("update_pos", stmt.update_pos)
        uend = self._add_constant("update_end", stmt.update_end)
        ucol = self._add_constant("update_col", stmt.update_col)
        out.emit(f"Lp = {lp}")
        out.emit(f"Li = {li}")
        out.emit(f"Up = {up}")
        out.emit(f"Ui = {ui}")
        out.emit(f"_a0 = {ad}")
        out.emit(f"_a1 = {ae}")
        out.emit(f"Lx = np.zeros({int(stmt.l_indptr[-1])})")
        out.emit(f"Ux = np.zeros({int(stmt.u_indptr[-1])})")
        out.emit(f"f = np.zeros({n})")
        out.emit("# simplicial left-looking LU; update loop pruned to the symbolic")
        out.emit("# U pattern (all positions resolved at compile time, no pivoting)")
        out.emit(f"for j in range({n}):")
        out.push()
        out.emit("a0 = _a0[j]; a1 = _a1[j]")
        out.emit("f[Ai[a0:a1]] = Ax[a0:a1]")
        out.emit(f"for t in range({pp}[j], {pp}[j + 1]):")
        out.push()
        out.emit(f"ps = {upos}[t]; pe = {uend}[t]")
        out.emit(f"ukj = f[{ucol}[t]]")
        if stmt.vectorize:
            out.emit("f[Li[ps:pe]] -= Lx[ps:pe] * ukj")
        else:
            out.emit("for p in range(ps, pe):")
            out.push()
            out.emit("f[Li[p]] -= Lx[p] * ukj")
            out.pop()
        out.pop()
        out.emit("u0 = Up[j]; u1 = Up[j + 1]")
        out.emit("Ux[u0:u1] = f[Ui[u0:u1]]")
        out.emit("piv = f[j]")
        out.emit("if piv == 0.0:")
        out.push()
        out.emit('raise ValueError("matrix is singular (zero pivot) at column %d" % j)')
        out.pop()
        out.emit("lp0 = Lp[j]; lp1 = Lp[j + 1]")
        out.emit("Lx[lp0] = 1.0")
        out.emit("Lx[lp0 + 1:lp1] = f[Li[lp0 + 1:lp1]] / piv")
        out.emit("f[Ui[u0:u1]] = 0.0")
        out.emit("f[Li[lp0:lp1]] = 0.0")
        out.pop()

    def _emit_simplicial_cholesky(self, out: _Emitter, stmt: SimplicialCholeskyLoop) -> None:
        if stmt.factor_kind == "lu":
            self._emit_simplicial_lu(out, stmt)
            return
        n = stmt.n
        ldlt = stmt.factor_kind == "ldlt"
        self._emit_cholesky_preamble(
            out, stmt.l_indptr, stmt.l_indices, stmt.a_diag_pos, stmt.a_col_end, n,
            ldlt=ldlt,
        )
        pp = self._add_constant("prune_ptr", stmt.prune_ptr)
        up = self._add_constant("update_pos", stmt.update_pos)
        ue = self._add_constant("update_end", stmt.update_end)
        uc = self._add_constant("update_col", stmt.update_col) if ldlt else None
        out.emit("# simplicial left-looking factorization; update loop pruned to the")
        out.emit("# row sparsity pattern of L (all positions resolved at compile time)")
        out.emit(f"for j in range({n}):")
        out.push()
        out.emit("a0 = _ad[j]; a1 = _ae[j]")
        out.emit("f[Ai[a0:a1]] = Ax[a0:a1]")
        out.emit(f"for t in range({pp}[j], {pp}[j + 1]):")
        out.push()
        out.emit(f"ps = {up}[t]; pe = {ue}[t]")
        if ldlt:
            out.emit(f"ljk = Lx[ps] * D[{uc}[t]]")
        else:
            out.emit("ljk = Lx[ps]")
        if stmt.vectorize:
            out.emit("f[Li[ps:pe]] -= Lx[ps:pe] * ljk")
        else:
            out.emit("for p in range(ps, pe):")
            out.push()
            out.emit("f[Li[p]] -= Lx[p] * ljk")
            out.pop()
        out.pop()
        out.emit("lp0 = Lp[j]; lp1 = Lp[j + 1]")
        out.emit("d = f[j]")
        if ldlt:
            out.emit("if d == 0.0:")
            out.push()
            out.emit('raise ValueError("matrix is singular (zero pivot) at column %d" % j)')
            out.pop()
            out.emit("D[j] = d")
            out.emit("Lx[lp0] = 1.0")
            out.emit("Lx[lp0 + 1:lp1] = f[Li[lp0 + 1:lp1]] / d")
        else:
            out.emit("if d <= 0.0:")
            out.push()
            out.emit('raise ValueError("matrix is not positive definite at column %d" % j)')
            out.pop()
            out.emit("ljj = np.sqrt(d)")
            out.emit("Lx[lp0] = ljj")
            out.emit("Lx[lp0 + 1:lp1] = f[Li[lp0 + 1:lp1]] / ljj")
        out.emit("f[Li[lp0:lp1]] = 0.0")
        out.pop()

    def _emit_incomplete_factor(self, out: _Emitter, stmt: IncompleteFactorLoop) -> None:
        """Emit the no-fill incomplete factorization loop (IC(0)/ILU(0)).

        The factor pattern is the ``A`` pattern, so the kernel runs *in
        place* on the gathered factor values — no dense work vector.  Every
        update scatter was intersected with the destination pattern at
        compile time; the numeric loop only moves values.  The IC(0)
        arithmetic (operation per entry, operand order, ufunc choice) matches
        :func:`repro.solvers.cg.incomplete_cholesky_ic0` exactly, so the
        generated factor is bitwise identical to the interpreted one.
        """
        n = stmt.n
        lp = self._add_constant("l_indptr", stmt.l_indptr)
        alp = self._add_constant("a_lower_pos", stmt.a_lower_pos)
        pp = self._add_constant("prune_ptr", stmt.prune_ptr)
        mp = self._add_constant("mult_pos", stmt.mult_pos)
        lsp = self._add_constant("l_scat_ptr", stmt.l_scat_ptr)
        lss = self._add_constant("l_scat_src", stmt.l_scat_src)
        lsd = self._add_constant("l_scat_dst", stmt.l_scat_dst)
        out.emit(f"Lp = {lp}")
        if stmt.factor_kind == "ilu0":
            up = self._add_constant("u_indptr", stmt.u_indptr)
            aup = self._add_constant("a_upper_pos", stmt.a_upper_pos)
            lgd = self._add_constant("l_gather_dst", stmt.l_gather_dst)
            usp = self._add_constant("u_scat_ptr", stmt.u_scat_ptr)
            uss = self._add_constant("u_scat_src", stmt.u_scat_src)
            usd = self._add_constant("u_scat_dst", stmt.u_scat_dst)
            out.emit(f"Up = {up}")
            out.emit(f"Ux = Ax[{aup}]")
            out.emit(f"Lx = np.zeros({int(stmt.l_indptr[-1])})")
            out.emit(f"Lx[{lgd}] = Ax[{alp}]")
            out.emit("# ILU(0): in-place no-fill elimination on the A pattern")
            out.emit(f"for j in range({n}):")
            out.push()
            out.emit(f"for t in range({pp}[j], {pp}[j + 1]):")
            out.push()
            out.emit(f"ukj = Ux[{mp}[t]]")
            out.emit(f"s0 = {usp}[t]; s1 = {usp}[t + 1]")
            out.emit(f"Ux[{usd}[s0:s1]] -= Lx[{uss}[s0:s1]] * ukj")
            out.emit(f"s0 = {lsp}[t]; s1 = {lsp}[t + 1]")
            out.emit(f"Lx[{lsd}[s0:s1]] -= Lx[{lss}[s0:s1]] * ukj")
            out.pop()
            out.emit("piv = Ux[Up[j + 1] - 1]")
            out.emit("if piv == 0.0:")
            out.push()
            out.emit('raise ValueError("ILU(0) breakdown: zero pivot at column %d" % j)')
            out.pop()
            out.emit("lp0 = Lp[j]; lp1 = Lp[j + 1]")
            out.emit("Lx[lp0] = 1.0")
            out.emit("Lx[lp0 + 1:lp1] /= piv")
            out.pop()
            return
        out.emit(f"Lx = Ax[{alp}]")
        out.emit("# IC(0): in-place no-fill elimination on the tril(A) pattern")
        out.emit(f"for j in range({n}):")
        out.push()
        out.emit(f"for t in range({pp}[j], {pp}[j + 1]):")
        out.push()
        out.emit(f"ljk = Lx[{mp}[t]]")
        out.emit(f"s0 = {lsp}[t]; s1 = {lsp}[t + 1]")
        out.emit(f"Lx[{lsd}[s0:s1]] -= Lx[{lss}[s0:s1]] * ljk")
        out.pop()
        out.emit("lp0 = Lp[j]; lp1 = Lp[j + 1]")
        out.emit("d = Lx[lp0]")
        out.emit("if not d > 0.0:")
        out.push()
        out.emit(
            'raise ValueError("IC(0) breakdown: non-positive pivot at column %d" % j)'
        )
        out.pop()
        out.emit("ljj = np.sqrt(d)")
        out.emit("Lx[lp0] = ljj")
        out.emit("Lx[lp0 + 1:lp1] /= ljj")
        out.pop()

    def _emit_supernodal_cholesky(self, out: _Emitter, stmt: SupernodalCholeskyLoop) -> None:
        n = stmt.n
        ldlt = stmt.factor_kind == "ldlt"
        self._emit_cholesky_preamble(
            out, stmt.l_indptr, stmt.l_indices, stmt.a_diag_pos, stmt.a_col_end, n,
            ldlt=ldlt,
        )
        ss = self._add_constant("sup_start", stmt.sup_start)
        se = self._add_constant("sup_end", stmt.sup_end)
        dp = self._add_constant("desc_ptr", stmt.desc_ptr)
        dpos = self._add_constant("desc_pos", stmt.desc_pos)
        dme = self._add_constant("desc_mult_end", stmt.desc_mult_end)
        dend = self._add_constant("desc_end", stmt.desc_end)
        dc = self._add_constant("desc_col", stmt.desc_col) if ldlt else None
        n_super = stmt.n_supernodes
        out.emit(f"_rowmap = np.empty({n}, dtype=np.int64)")
        out.emit("# supernodal left-looking factorization over the block-set")
        out.emit(f"for s in range({n_super}):")
        out.push()
        out.emit(f"c0 = {ss}[s]; c1 = {se}[s]; w = c1 - c0")
        if stmt.distribute_single_columns:
            out.emit("if w == 1:")
            out.push()
            out.emit("# streamlined single-column path (loop distribution)")
            out.emit("lp0 = Lp[c0]; lp1 = Lp[c0 + 1]")
            out.emit("a0 = _ad[c0]; a1 = _ae[c0]")
            out.emit("f[Ai[a0:a1]] = Ax[a0:a1]")
            out.emit(f"for t in range({dp}[s], {dp}[s + 1]):")
            out.push()
            out.emit(f"ps = {dpos}[t]; pe = {dend}[t]")
            if ldlt:
                out.emit(f"ljk = Lx[ps] * D[{dc}[t]]")
            else:
                out.emit("ljk = Lx[ps]")
            out.emit("f[Li[ps:pe]] -= Lx[ps:pe] * ljk")
            out.pop()
            out.emit("d = f[c0]")
            if ldlt:
                out.emit("if d == 0.0:")
                out.push()
                out.emit('raise ValueError("matrix is singular (zero pivot) at column %d" % c0)')
                out.pop()
                out.emit("D[c0] = d")
                out.emit("Lx[lp0] = 1.0")
                out.emit("Lx[lp0 + 1:lp1] = f[Li[lp0 + 1:lp1]] / d")
            else:
                out.emit("if d <= 0.0:")
                out.push()
                out.emit('raise ValueError("matrix is not positive definite at column %d" % c0)')
                out.pop()
                out.emit("ljj = np.sqrt(d)")
                out.emit("Lx[lp0] = ljj")
                out.emit("Lx[lp0 + 1:lp1] = f[Li[lp0 + 1:lp1]] / ljj")
            out.emit("f[Li[lp0:lp1]] = 0.0")
            out.emit("continue")
            out.pop()
        out.emit("r0 = Lp[c0]; r1 = Lp[c0 + 1]")
        out.emit("rows = Li[r0:r1]")
        out.emit("nr = r1 - r0")
        out.emit("_rowmap[rows] = np.arange(nr)")
        out.emit("panel = np.zeros((nr, w))")
        out.emit("for jj in range(w):")
        out.push()
        out.emit("c = c0 + jj")
        out.emit("a0 = _ad[c]; a1 = _ae[c]")
        out.emit("panel[_rowmap[Ai[a0:a1]], jj] = Ax[a0:a1]")
        out.pop()
        out.emit(f"for t in range({dp}[s], {dp}[s + 1]):")
        out.push()
        out.emit(f"ps = {dpos}[t]; pm = {dme}[t]; pe = {dend}[t]")
        out.emit("vals = Lx[ps:pe]")
        out.emit("m = np.zeros(w)")
        if ldlt:
            out.emit(f"m[Li[ps:pm] - c0] = Lx[ps:pm] * D[{dc}[t]]")
        else:
            out.emit("m[Li[ps:pm] - c0] = Lx[ps:pm]")
        out.emit("panel[_rowmap[Li[ps:pe]], :] -= np.outer(vals, m)")
        out.pop()
        if ldlt:
            out.emit("_Db = panel[:w, :w]")
            out.emit("Ld, _dv = _rt.dense_ldlt(_Db)")
            out.emit("D[c0:c1] = _dv")
            out.emit("if nr > w:")
            out.push()
            out.emit("panel[w:, :] = _rt.dense_solve_transposed_right(Ld, panel[w:, :]) / _dv")
            out.pop()
        else:
            out.emit("D = panel[:w, :w]")
            if stmt.use_small_kernels:
                out.emit(f"if w <= {stmt.small_kernel_max_width}:")
                out.push()
                out.emit("Ld = _rt.small_cholesky(D)")
                out.pop()
                out.emit("else:")
                out.push()
                out.emit("Ld = _rt.dense_cholesky(D)")
                out.pop()
            else:
                out.emit("Ld = _rt.dense_cholesky(D)")
            out.emit("if nr > w:")
            out.push()
            out.emit("panel[w:, :] = _rt.dense_solve_transposed_right(Ld, panel[w:, :])")
            out.pop()
        out.emit("for jj in range(w):")
        out.push()
        out.emit("c = c0 + jj")
        out.emit("lp0 = Lp[c]")
        out.emit("Lx[lp0:lp0 + (w - jj)] = Ld[jj:, jj]")
        out.emit("Lx[lp0 + (w - jj):Lp[c + 1]] = panel[w:, jj]")
        out.pop()
        out.pop()
