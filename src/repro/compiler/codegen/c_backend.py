"""Specialized-C code generation backend.

Emits matrix-specialized C source (inspection sets as ``static const`` arrays,
loop structure following the transformed AST), compiles it with the system C
compiler and loads the resulting shared object through :mod:`ctypes`.  This is
the closest analogue of the original Sympiler, which generates C and compiles
it with GCC ``-O3`` (§4.1); the backend is optional — environments without a
C compiler use the Python backend instead.

Entry points generated:

* triangular solve — ``void <name>(const int64_t* Lp, const int64_t* Li,
  const double* Lx, const double* b, double* x)``
* Cholesky — ``int64_t <name>(const int64_t* Ap, const int64_t* Ai,
  const double* Ax, double* Lx)`` returning 0 on success or ``j + 1`` when a
  non-positive pivot is met at column ``j``.

Under ``SympilerOptions(parallel="wavefront")`` every entry point gains a
trailing ``int64_t n_threads`` argument and executes the columns of each
level of the inspector's cached :class:`~repro.runtime.levels.ExecutionSchedule`
across a persistent pthread worker pool, with a barrier between levels (the
paper's H-Level parallelism, applied *within* one numeric call).  Levels are
antichains of the column dependency DAG, so per-column writes are disjoint
and the result is bitwise identical to the serial kernel; when the schedule
has no parallelism to mine (or the kernel is supernodal) the serial body is
emitted behind the same ABI and the fallback is recorded on the artifact.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.ast import (
    Assign,
    Block,
    Call,
    Comment,
    ForRange,
    IncompleteFactorLoop,
    KernelFunction,
    PeeledColumnSolve,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    Stmt,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    Var,
)
from repro.compiler.cache import build_file_once
from repro.compiler.codegen.runtime import generated_code_dir, pattern_fingerprint
from repro.compiler.registration import register_unique
from repro.observe.trace import span as observe_span

__all__ = [
    "CBackend",
    "CGeneratedModule",
    "CCompilationError",
    "CMethodSpec",
    "DiskCacheStats",
    "c_compiler_available",
    "disk_cache_stats",
    "reset_disk_cache_stats",
    "register_c_method",
    "atomic_write_text",
    "tmp_path_for",
]


class CCompilationError(RuntimeError):
    """Raised when the C compiler is unavailable or compilation fails."""


def c_compiler_available(compiler: str = "cc") -> bool:
    """True when the requested C compiler executable is on PATH."""
    return shutil.which(compiler) is not None


@dataclass
class DiskCacheStats:
    """Counters of the on-disk generated-code caches (process-wide).

    ``compiles`` counts actual C compiler invocations; ``reuses`` counts
    loads of a pre-existing ``.so`` for the same source fingerprint.
    ``py_writes``/``py_reuses`` are the python backend's analogues: persisted
    generated-Python modules written versus loaded back from disk (see
    :mod:`repro.compiler.codegen.python_backend`).  A warm-cache CI run
    asserts ``compiles == 0`` and ``py_writes == 0`` through these counters —
    the compile-amortization story made checkable instead of assumed.

    Also visible through the unified observability layer as the
    ``disk_cache`` collector in :func:`repro.observe.snapshot` (and as
    ``repro_disk_cache_*`` gauges in the Prometheus export); this class
    remains the mutation surface.
    """

    compiles: int = 0
    reuses: int = 0
    py_writes: int = 0
    py_reuses: int = 0
    #: Compiles avoided by waiting on another *process's* in-flight build of
    #: the same ``.so`` (cross-process single-flight via ``build_file_once``
    #: lockfiles); such waits also count as ``reuses``.
    lock_waits: int = 0

    def __post_init__(self) -> None:
        # Backends increment these counters from service worker threads; a
        # bare `stats.field += 1` is a read-modify-write that can drop
        # increments under contention, so all mutation goes through bump().
        self._lock = threading.Lock()

    def bump(self, field_name: str, n: int = 1) -> None:
        """Atomically increment one counter."""
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + n)

    def reset(self) -> None:
        """Zero every counter atomically."""
        with self._lock:
            self.compiles = 0
            self.reuses = 0
            self.py_writes = 0
            self.py_reuses = 0
            self.lock_waits = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the cache probe CLI (a consistent snapshot)."""
        with self._lock:
            return {
                "compiles": self.compiles,
                "reuses": self.reuses,
                "py_writes": self.py_writes,
                "py_reuses": self.py_reuses,
                "lock_waits": self.lock_waits,
            }


_DISK_CACHE_STATS = DiskCacheStats()


def disk_cache_stats() -> DiskCacheStats:
    """The live process-wide on-disk cache counters."""
    return _DISK_CACHE_STATS


def reset_disk_cache_stats() -> None:
    """Zero the on-disk cache counters (tests and the cache probe)."""
    _DISK_CACHE_STATS.reset()


def tmp_path_for(path: str) -> str:
    """A collision-free temp name next to ``path``.

    The uuid component keeps concurrent *threads* of one process (same pid)
    from sharing a temp file, not just concurrent processes.
    """
    return f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Parallel workers compiling the same pattern therefore never observe a
    half-written source file in the shared on-disk cache.  Shared with the
    python backend's persisted-source cache, which follows the same
    protocol.
    """
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _format_c_array(name: str, values: np.ndarray, ctype: str) -> str:
    """Render a constant array as a ``static const`` C definition."""
    flat = np.asarray(values).ravel()
    if ctype == "int64_t":
        body = ",".join(str(int(v)) for v in flat)
    else:
        body = ",".join(repr(float(v)) for v in flat)
    if flat.size == 0:
        # Zero-length arrays are not portable C; emit a one-element dummy.
        return f"static const {ctype} {name}[1] = {{0}};"
    return f"static const {ctype} {name}[{flat.size}] = {{{body}}};"


@dataclass
class CGeneratedModule:
    """Generated C source plus its compiled shared object."""

    source: str
    entry_name: str
    constants: Dict[str, np.ndarray]
    method: str
    codegen_seconds: float
    compiler: str
    flags: Tuple[str, ...]
    n: int
    factor_nnz: int = 0
    # Within-kernel execution mode of the generated entry point: "none"
    # (serial ABI), "wavefront" (level-parallel, trailing n_threads arg) or
    # "serial-fallback" (wavefront ABI around the serial body — emitted when
    # the schedule is too deep or the kernel supernodal).
    parallel: str = "none"
    meta: Dict[str, int] = field(default_factory=dict)
    compile_seconds: float = 0.0
    shared_object: Optional[str] = None
    _callable: Optional[Callable] = field(default=None, repr=False)
    _lib: Optional[ctypes.CDLL] = field(default=None, repr=False)

    @property
    def line_count(self) -> int:
        """Number of lines of generated source."""
        return self.source.count("\n") + 1

    # ------------------------------------------------------------------ #
    def compile(self) -> Callable:
        """Compile the C source and return a NumPy-friendly wrapper.

        Source and shared object are written to the on-disk cache through a
        temp-file + atomic-rename protocol, so concurrent processes working on
        the same pattern never load a half-written artifact; a pre-existing
        ``.so`` for the same source fingerprint skips compilation entirely.
        """
        if self._callable is not None:
            return self._callable
        if not c_compiler_available(self.compiler):
            raise CCompilationError(
                f"C compiler {self.compiler!r} not found; use the python backend instead"
            )
        spec = _C_METHOD_SPECS.get(self.method)
        if spec is None:  # pragma: no cover - guarded during generation
            raise CCompilationError(f"unsupported method {self.method!r}")
        start = time.perf_counter()
        cache = generated_code_dir()
        extra_flags = []
        if not any(f.startswith("-ffp-contract") for f in self.flags):
            # Uniform rounding across every generated kernel: the default
            # -ffp-contract=fast fuses multiply-subtract differently for
            # different loop shapes, which would break the bitwise identity
            # between the serial (push) and wavefront (pull) triangular
            # solves.  An explicit -ffp-contract in the flags wins.
            extra_flags.append("-ffp-contract=off")
        if "#include <pthread.h>" in self.source:
            # REPRO_CFLAGS cannot be asked to carry -pthread (serial kernels
            # must keep compiling without it), so it is derived from the
            # source itself: wavefront kernels embed the pthread runtime.
            extra_flags.append("-pthread")
        # The stem covers source AND toolchain: the same generated source
        # built with different flags (an -O0 vs -O3 ablation, say) must not
        # reuse the other's shared object.
        source_fp = pattern_fingerprint(
            np.frombuffer(self.source.encode(), dtype=np.uint8),
            extra=f"{self.compiler} {' '.join((*self.flags, *extra_flags))}",
        )
        stem = f"{self.entry_name}_{source_fp}"
        c_path = os.path.join(cache, stem + ".c")
        so_path = os.path.join(cache, stem + ".so")
        atomic_write_text(c_path, self.source)

        def _invoke_cc() -> None:
            tmp_so = tmp_path_for(so_path)
            cmd = [self.compiler, *self.flags, *extra_flags, "-o", tmp_so, c_path, "-lm"]
            try:
                with observe_span("cc", entry=self.entry_name, method=self.method):
                    proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    raise CCompilationError(
                        f"C compilation failed ({' '.join(cmd)}):\n{proc.stderr}"
                    )
                os.replace(tmp_so, so_path)
            finally:
                if os.path.exists(tmp_so):
                    os.unlink(tmp_so)

        # Cross-process single-flight: shard workers (and parallel CI jobs)
        # cold-compiling the same pattern run exactly one ``cc`` between them;
        # the losers load the winner's atomically-published ``.so``.
        outcome = build_file_once(so_path, _invoke_cc)
        if outcome == "built":
            _DISK_CACHE_STATS.bump("compiles")
        else:
            _DISK_CACHE_STATS.bump("reuses")
            if outcome == "waited":
                _DISK_CACHE_STATS.bump("lock_waits")
        lib = ctypes.CDLL(so_path)
        fn = getattr(lib, self.entry_name)
        self._lib = lib
        self.shared_object = so_path
        self.compile_seconds = time.perf_counter() - start
        self._callable = spec.wrapper_factory(self, fn)
        return self._callable

    # ------------------------------------------------------------------ #
    # Wavefront per-level profiling (observability layer)
    # ------------------------------------------------------------------ #
    def set_wavefront_profiling(self, on: bool) -> bool:
        """Raise/lower the runtime per-level timing flag in the loaded ``.so``.

        The timestamp instructions are always compiled into wavefront kernels
        (so the cache key never forks on profiling) but record only while
        this flag is up.  Returns False when this module is not a loaded
        wavefront kernel (serial fallback, python backend, not yet compiled).
        """
        if self._lib is None or self.parallel != "wavefront":
            return False
        try:
            setter = self._lib.repro_wf_set_profile
        except AttributeError:  # pragma: no cover - older cached .so
            return False
        setter.argtypes = [ctypes.c_int64]
        setter.restype = None
        setter(1 if on else 0)
        return True

    def wavefront_level_seconds(self) -> Optional[np.ndarray]:
        """Per-level durations (seconds) of the last *profiled* parallel run.

        Reads the ``{entry}_wf_level_times`` timestamp buffer written by
        participant 0 and returns its consecutive differences — one float per
        schedule level.  ``None`` when this module is not a loaded wavefront
        kernel or profiling was never enabled (the buffer is all zeros).
        Note the serial dispatch path (``n_threads <= 1``) bypasses the pool
        and records nothing.
        """
        n_levels = int(self.meta.get("wf_n_levels", 0))
        if self._lib is None or self.parallel != "wavefront" or n_levels <= 0:
            return None
        try:
            getter = getattr(self._lib, f"{self.entry_name}_wf_level_times")
        except AttributeError:  # pragma: no cover - older cached .so
            return None
        getter.restype = ctypes.POINTER(ctypes.c_double)
        getter.argtypes = []
        ts = np.ctypeslib.as_array(getter(), shape=(n_levels + 1,))
        if not ts.any():
            return None
        return np.diff(ts.copy())


# --------------------------------------------------------------------------- #
# Per-method ABI specs (entry signature + ctypes wrapper)
# --------------------------------------------------------------------------- #
_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


def _trisolve_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = None
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P]

    def wrapper(Lp, Li, Lx, b):
        Lp = np.ascontiguousarray(Lp, dtype=np.int64)
        Li = np.ascontiguousarray(Li, dtype=np.int64)
        Lx = np.ascontiguousarray(Lx, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        x = np.empty(module.n, dtype=np.float64)
        fn(Lp, Li, Lx, b, x)
        return x

    return wrapper


def _cholesky_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P]

    def wrapper(Ap, Ai, Ax):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx)
        if status != 0:
            raise ValueError(
                f"matrix is not positive definite at column {int(status) - 1}"
            )
        return Lx

    return wrapper


def _ldlt_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P]

    def wrapper(Ap, Ai, Ax):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        D = np.zeros(module.n, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, D)
        if status != 0:
            raise ValueError(
                f"matrix is singular (zero pivot) at column {int(status) - 1}"
            )
        return Lx, D

    return wrapper


def _lu_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P]

    def wrapper(Ap, Ai, Ax):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.meta["l_nnz"], dtype=np.float64)
        Ux = np.zeros(module.meta["u_nnz"], dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, Ux)
        if status != 0:
            raise ValueError(
                f"matrix is singular (zero pivot) at column {int(status) - 1}"
            )
        return Lx, Ux

    return wrapper


def _ic0_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P]

    def wrapper(Ap, Ai, Ax):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx)
        if status != 0:
            raise ValueError(
                f"IC(0) breakdown: non-positive pivot at column {int(status) - 1}"
            )
        return Lx

    return wrapper


def _ilu0_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P]

    def wrapper(Ap, Ai, Ax):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.meta["l_nnz"], dtype=np.float64)
        Ux = np.zeros(module.meta["u_nnz"], dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, Ux)
        if status != 0:
            raise ValueError(
                f"ILU(0) breakdown: zero pivot at column {int(status) - 1}"
            )
        return Lx, Ux

    return wrapper


def _wavefront_threads(num_threads: Optional[int]) -> int:
    """Resolve the thread count of one wavefront entry call.

    Precedence: explicit argument > ``REPRO_NUM_THREADS`` environment
    override > one thread per available CPU (``0`` means "one per CPU" at
    any level).  Mirrors :func:`repro.runtime.engine.resolve_num_threads`
    except for the last step — a wavefront kernel called without any request
    should saturate the machine, that being its purpose — and lives here
    rather than in the runtime because the runtime imports this module.
    """
    if num_threads is None:
        env = os.environ.get("REPRO_NUM_THREADS", "").strip()
        num_threads = int(env) if env else 0
    num_threads = int(num_threads)
    if num_threads < 0:
        raise ValueError("num_threads must be non-negative (0 means one per CPU)")
    if num_threads == 0:
        return os.cpu_count() or 1
    return num_threads


# Wavefront variants of the wrappers: same array handling, but the entry
# takes a trailing n_threads and the wrapper a num_threads=None keyword
# (resolved per call — the thread count is a runtime knob, never baked in).
def _trisolve_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = None
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Lp, Li, Lx, b, num_threads=None):
        Lp = np.ascontiguousarray(Lp, dtype=np.int64)
        Li = np.ascontiguousarray(Li, dtype=np.int64)
        Lx = np.ascontiguousarray(Lx, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        x = np.empty(module.n, dtype=np.float64)
        fn(Lp, Li, Lx, b, x, _wavefront_threads(num_threads))
        return x

    return wrapper


def _cholesky_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Ap, Ai, Ax, num_threads=None):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, _wavefront_threads(num_threads))
        if status != 0:
            raise ValueError(
                f"matrix is not positive definite at column {int(status) - 1}"
            )
        return Lx

    return wrapper


def _ldlt_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Ap, Ai, Ax, num_threads=None):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        D = np.zeros(module.n, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, D, _wavefront_threads(num_threads))
        if status != 0:
            raise ValueError(
                f"matrix is singular (zero pivot) at column {int(status) - 1}"
            )
        return Lx, D

    return wrapper


def _lu_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Ap, Ai, Ax, num_threads=None):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.meta["l_nnz"], dtype=np.float64)
        Ux = np.zeros(module.meta["u_nnz"], dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, Ux, _wavefront_threads(num_threads))
        if status != 0:
            raise ValueError(
                f"matrix is singular (zero pivot) at column {int(status) - 1}"
            )
        return Lx, Ux

    return wrapper


def _ic0_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Ap, Ai, Ax, num_threads=None):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.factor_nnz, dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, _wavefront_threads(num_threads))
        if status != 0:
            raise ValueError(
                f"IC(0) breakdown: non-positive pivot at column {int(status) - 1}"
            )
        return Lx

    return wrapper


def _ilu0_wf_wrapper(module: "CGeneratedModule", fn) -> Callable:
    fn.restype = ctypes.c_int64
    fn.argtypes = [_I64P, _I64P, _F64P, _F64P, _F64P, ctypes.c_int64]

    def wrapper(Ap, Ai, Ax, num_threads=None):
        Ap = np.ascontiguousarray(Ap, dtype=np.int64)
        Ai = np.ascontiguousarray(Ai, dtype=np.int64)
        Ax = np.ascontiguousarray(Ax, dtype=np.float64)
        Lx = np.zeros(module.meta["l_nnz"], dtype=np.float64)
        Ux = np.zeros(module.meta["u_nnz"], dtype=np.float64)
        status = fn(Ap, Ai, Ax, Lx, Ux, _wavefront_threads(num_threads))
        if status != 0:
            raise ValueError(
                f"ILU(0) breakdown: zero pivot at column {int(status) - 1}"
            )
        return Lx, Ux

    return wrapper


@dataclass(frozen=True)
class CMethodSpec:
    """ABI description of one kernel method for the C backend.

    ``signature`` is a format template over ``{name}``; ``body_emitter`` names
    the :class:`CBackend` method emitting the function body;
    ``wrapper_factory`` builds the NumPy-friendly ctypes wrapper;
    ``module_meta`` optionally derives extra integers the wrapper needs (e.g.
    the per-factor allocation sizes of LU) from the compilation context.  The
    backend dispatches on this table, so registering a new kernel method means
    adding a spec instead of editing the generator.
    """

    signature: str
    body_emitter: str
    wrapper_factory: Callable
    needs_factor_nnz: bool = False
    module_meta: Optional[Callable[[object], Dict[str, int]]] = None


_C_METHOD_SPECS: Dict[str, CMethodSpec] = {
    "triangular-solve": CMethodSpec(
        signature=(
            "void {name}(const int64_t* Lp, const int64_t* Li, "
            "const double* Lx, const double* b, double* x)"
        ),
        body_emitter="_emit_trisolve_body",
        wrapper_factory=_trisolve_wrapper,
    ),
    "cholesky": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx)"
        ),
        body_emitter="_emit_factorization_body",
        wrapper_factory=_cholesky_wrapper,
        needs_factor_nnz=True,
    ),
    "ldlt": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* D)"
        ),
        body_emitter="_emit_factorization_body",
        wrapper_factory=_ldlt_wrapper,
        needs_factor_nnz=True,
    ),
    "lu": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* Ux)"
        ),
        body_emitter="_emit_lu_body",
        wrapper_factory=_lu_wrapper,
        needs_factor_nnz=True,
        module_meta=lambda context: {
            "l_nnz": int(context.inspection.l_nnz),
            "u_nnz": int(context.inspection.u_nnz),
        },
    ),
    "ic0": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx)"
        ),
        body_emitter="_emit_ic0_body",
        wrapper_factory=_ic0_wrapper,
        needs_factor_nnz=True,
    ),
    "ilu0": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* Ux)"
        ),
        body_emitter="_emit_ilu0_body",
        wrapper_factory=_ilu0_wrapper,
        needs_factor_nnz=True,
        module_meta=lambda context: {
            "l_nnz": int(context.inspection.l_nnz),
            "u_nnz": int(context.inspection.u_nnz),
        },
    ),
    # Level-parallel (wavefront) variants: same kernels behind an ABI with a
    # trailing runtime thread count.  Selected by options.parallel, which is
    # part of the options fingerprint, so serial and wavefront artifacts of
    # one pattern cache independently in memory and on disk.
    "triangular-solve@wavefront": CMethodSpec(
        signature=(
            "void {name}(const int64_t* Lp, const int64_t* Li, "
            "const double* Lx, const double* b, double* x, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_trisolve_body",
        wrapper_factory=_trisolve_wf_wrapper,
    ),
    "cholesky@wavefront": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_factorization_body",
        wrapper_factory=_cholesky_wf_wrapper,
        needs_factor_nnz=True,
    ),
    "ldlt@wavefront": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* D, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_factorization_body",
        wrapper_factory=_ldlt_wf_wrapper,
        needs_factor_nnz=True,
    ),
    "lu@wavefront": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* Ux, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_lu_body",
        wrapper_factory=_lu_wf_wrapper,
        needs_factor_nnz=True,
        module_meta=lambda context: {
            "l_nnz": int(context.inspection.l_nnz),
            "u_nnz": int(context.inspection.u_nnz),
        },
    ),
    "ic0@wavefront": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_ic0_body",
        wrapper_factory=_ic0_wf_wrapper,
        needs_factor_nnz=True,
    ),
    "ilu0@wavefront": CMethodSpec(
        signature=(
            "int64_t {name}(const int64_t* Ap, const int64_t* Ai, "
            "const double* Ax, double* Lx, double* Ux, int64_t n_threads)"
        ),
        body_emitter="_emit_wf_ilu0_body",
        wrapper_factory=_ilu0_wf_wrapper,
        needs_factor_nnz=True,
        module_meta=lambda context: {
            "l_nnz": int(context.inspection.l_nnz),
            "u_nnz": int(context.inspection.u_nnz),
        },
    ),
}


def register_c_method(method: str, spec: CMethodSpec) -> None:
    """Register the ABI spec of an additional kernel method."""
    register_unique(_C_METHOD_SPECS, method, spec, kind="C method spec")


class _CEmitter:
    """Accumulates indented C source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.indent) + line if line else "")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


_DENSE_HELPERS = r"""
static void repro_dense_chol(double* D, int64_t w) {
    for (int64_t k = 0; k < w; k++) {
        double piv = sqrt(D[k * w + k]);
        D[k * w + k] = piv;
        for (int64_t i = k + 1; i < w; i++) D[i * w + k] /= piv;
        for (int64_t j = k + 1; j < w; j++) {
            double djk = D[j * w + k];
            for (int64_t i = j; i < w; i++) D[i * w + j] -= D[i * w + k] * djk;
        }
    }
}

static void repro_dense_trsm_rt(const double* Ld, int64_t w, double* B, int64_t nrow) {
    /* Solve X * Ld^T = B in place, B row-major (nrow x w). */
    for (int64_t r = 0; r < nrow; r++) {
        double* row = B + r * w;
        for (int64_t k = 0; k < w; k++) {
            double v = row[k];
            for (int64_t j = 0; j < k; j++) v -= Ld[k * w + j] * row[j];
            row[k] = v / Ld[k * w + k];
        }
    }
}
"""


_WF_RUNTIME = r"""
/* --------------------------------------------------------------------- */
/* Wavefront (H-Level) runtime: a persistent detached worker pool plus a */
/* sense-reversing barrier.  One loaded kernel runs one wavefront job at */
/* a time (pool and barrier are module state); concurrent callers        */
/* serialize on the job mutex — the batched runtime threads across items */
/* instead of stacking within-item pools.                                */
/* --------------------------------------------------------------------- */
typedef struct {
    void (*run)(int64_t tid, int64_t nt, void* job);
    void* job;
    int64_t active;
} repro_wf_task_t;

static pthread_mutex_t repro_wf_job_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t repro_wf_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t repro_wf_cv = PTHREAD_COND_INITIALIZER;
static pthread_cond_t repro_wf_done_cv = PTHREAD_COND_INITIALIZER;
static repro_wf_task_t repro_wf_cur;
static int64_t repro_wf_gen = 0;
static int64_t repro_wf_outstanding = 0;
static int64_t repro_wf_nworkers = 0;

static _Atomic int64_t repro_wf_bar_count;
static _Atomic int64_t repro_wf_bar_sense;
static _Atomic int64_t repro_wf_status;

/* Per-level profiling is opt-in at *runtime* (the observability layer's
   wavefront_levels flag): the timestamp code is always compiled in — so the
   source fingerprint, and therefore the on-disk cache key, does not fork on
   a profiling toggle — but records only while this flag is raised. */
static _Atomic int64_t repro_wf_profile_flag;

void repro_wf_set_profile(int64_t on) {
    atomic_store_explicit(&repro_wf_profile_flag, on, memory_order_relaxed);
}

static int64_t repro_wf_profile_on(void) {
    return atomic_load_explicit(&repro_wf_profile_flag, memory_order_relaxed);
}

static double repro_wf_now(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

static void repro_wf_barrier(int64_t nparts, int64_t* sense) {
    int64_t s = 1 - *sense;
    *sense = s;
    if (atomic_fetch_add_explicit(&repro_wf_bar_count, 1, memory_order_acq_rel)
        == nparts - 1) {
        atomic_store_explicit(&repro_wf_bar_count, 0, memory_order_relaxed);
        atomic_store_explicit(&repro_wf_bar_sense, s, memory_order_release);
    } else {
        while (atomic_load_explicit(&repro_wf_bar_sense, memory_order_acquire) != s)
            sched_yield();
    }
}

static int64_t repro_wf_ok(void) {
    return atomic_load_explicit(&repro_wf_status, memory_order_relaxed) == INT64_MAX;
}

static void repro_wf_fail(int64_t status) {
    /* CAS-min: the smallest failing column wins, whatever thread found it,
       so the reported status matches the serial kernel's first failure. */
    int64_t seen = atomic_load_explicit(&repro_wf_status, memory_order_relaxed);
    while (status < seen &&
           !atomic_compare_exchange_weak_explicit(
               &repro_wf_status, &seen, status,
               memory_order_acq_rel, memory_order_relaxed)) {}
}

static void* repro_wf_worker(void* arg) {
    int64_t tid = (int64_t)(intptr_t)arg;
    int64_t seen = 0;
    for (;;) {
        pthread_mutex_lock(&repro_wf_mu);
        while (repro_wf_gen == seen) pthread_cond_wait(&repro_wf_cv, &repro_wf_mu);
        seen = repro_wf_gen;
        repro_wf_task_t task = repro_wf_cur;
        pthread_mutex_unlock(&repro_wf_mu);
        if (tid < task.active) {
            task.run(tid, task.active, task.job);
            pthread_mutex_lock(&repro_wf_mu);
            if (--repro_wf_outstanding == 0)
                pthread_cond_signal(&repro_wf_done_cv);
            pthread_mutex_unlock(&repro_wf_mu);
        }
    }
    return 0;
}

static int64_t repro_wf_launch(void (*run)(int64_t, int64_t, void*),
                               void* job, int64_t n_threads) {
    pthread_mutex_lock(&repro_wf_job_mu);
    atomic_store_explicit(&repro_wf_status, INT64_MAX, memory_order_relaxed);
    atomic_store_explicit(&repro_wf_bar_count, 0, memory_order_relaxed);
    atomic_store_explicit(&repro_wf_bar_sense, 0, memory_order_relaxed);
    pthread_mutex_lock(&repro_wf_mu);
    while (repro_wf_nworkers < n_threads - 1) {
        pthread_t th;
        if (pthread_create(&th, 0, repro_wf_worker,
                           (void*)(intptr_t)(repro_wf_nworkers + 1)) != 0)
            break;  /* degraded: run with the workers that did start */
        pthread_detach(th);
        repro_wf_nworkers++;
    }
    int64_t active =
        n_threads < repro_wf_nworkers + 1 ? n_threads : repro_wf_nworkers + 1;
    repro_wf_cur.run = run;
    repro_wf_cur.job = job;
    repro_wf_cur.active = active;
    repro_wf_outstanding = active - 1;
    repro_wf_gen++;
    pthread_cond_broadcast(&repro_wf_cv);
    pthread_mutex_unlock(&repro_wf_mu);
    run(0, active, job);
    pthread_mutex_lock(&repro_wf_mu);
    while (repro_wf_outstanding != 0)
        pthread_cond_wait(&repro_wf_done_cv, &repro_wf_mu);
    pthread_mutex_unlock(&repro_wf_mu);
    int64_t status = atomic_load_explicit(&repro_wf_status, memory_order_acquire);
    pthread_mutex_unlock(&repro_wf_job_mu);
    return status == INT64_MAX ? 0 : status;
}
"""


class CBackend:
    """Generate and compile specialized C code from a transformed kernel."""

    name = "c"

    def __init__(
        self,
        compiler: str = "cc",
        flags: Tuple[str, ...] = ("-O3", "-march=native", "-fPIC", "-shared"),
    ) -> None:
        self.compiler = compiler
        self.flags = tuple(flags)

    # ------------------------------------------------------------------ #
    def generate(self, kernel: KernelFunction, context) -> CGeneratedModule:
        """Emit a :class:`CGeneratedModule` for ``kernel``."""
        start = time.perf_counter()
        self._constants: Dict[str, np.ndarray] = {}
        self._const_counter = 0
        self._n = context.inspection.n
        # Wavefront state, filled in by the wavefront body emitters: helper
        # functions to place before the entry point, whether the pthread
        # runtime is needed, and the mode the artifact reports.
        self._prelude: List[str] = []
        self._needs_wf_runtime = False
        self._parallel_mode = "none"
        method_key = kernel.method
        if getattr(context.options, "parallel", "none") == "wavefront":
            wf_key = f"{kernel.method}@wavefront"
            if wf_key in _C_METHOD_SPECS:
                method_key = wf_key
        method_spec = _C_METHOD_SPECS.get(method_key)
        if method_spec is None:
            raise CCompilationError(f"unsupported method {kernel.method!r}")
        body_out = _CEmitter()
        body_out.indent = 1
        factor_nnz = (
            int(context.inspection.factor_nnz) if method_spec.needs_factor_nnz else 0
        )
        getattr(self, method_spec.body_emitter)(body_out, kernel, context)
        signature = method_spec.signature.format(name=kernel.name)

        out = _CEmitter()
        out.emit("/* Sympiler-generated kernel (C backend). */")
        out.emit("#include <stdint.h>")
        out.emit("#include <math.h>")
        out.emit("#include <string.h>")
        if self._needs_wf_runtime:
            out.emit("#include <pthread.h>")
            out.emit("#include <stdatomic.h>")
            out.emit("#include <sched.h>")
            out.emit("#include <time.h>")
        out.emit("")
        for name, value in sorted(self._constants.items()):
            out.emit(_format_c_array(name, value, "int64_t"))
        out.emit("")
        # Static work buffers and dense helpers are keyed off the domain
        # statements actually present, not off the kernel name.
        has_factor_loop = bool(
            self._domain_nodes(kernel, (SimplicialCholeskyLoop, SupernodalCholeskyLoop))
        )
        if has_factor_loop:
            out.emit(_DENSE_HELPERS)
            # Work buffers are _Thread_local so one loaded kernel may run
            # concurrently over many value sets (the batched runtime maps the
            # entry point over a thread pool; ctypes releases the GIL).
            out.emit(f"static _Thread_local double repro_f[{self._n}];")
            out.emit(f"static _Thread_local int64_t repro_rowmap[{self._n}];")
            max_panel = self._max_panel_size(kernel)
            if max_panel:
                out.emit(f"static _Thread_local double repro_panel[{max_panel}];")
                max_w = self._max_supernode_width(kernel)
                out.emit(f"static _Thread_local double repro_mult[{max(max_w, 1)}];")
            out.emit("")
        if self._needs_wf_runtime:
            out.emit(_WF_RUNTIME)
            out.lines.extend(self._prelude)
            out.emit("")
        out.emit(signature + " {")
        out.lines.extend(body_out.lines)
        out.emit("}")
        source = out.source()
        codegen_seconds = time.perf_counter() - start
        for name, value in self._constants.items():
            if name not in kernel.constants:
                kernel.constants[name] = value
        meta = dict(method_spec.module_meta(context)) if method_spec.module_meta else {}
        if self._parallel_mode == "wavefront":
            # The per-level profiling buffer length, needed by
            # wavefront_level_seconds() to read the timestamps back out.
            meta["wf_n_levels"] = int(context.inspection.schedule.n_levels)
        return CGeneratedModule(
            source=source,
            entry_name=kernel.name,
            constants=dict(self._constants),
            method=method_key,
            codegen_seconds=codegen_seconds,
            compiler=self.compiler,
            flags=self.flags,
            n=self._n,
            factor_nnz=factor_nnz,
            parallel=self._parallel_mode,
            meta=meta,
        )

    # ------------------------------------------------------------------ #
    # Constant management / helpers
    # ------------------------------------------------------------------ #
    def _add_constant(self, name: str, value: np.ndarray) -> str:
        cname = f"_C_{name}"
        if cname in self._constants:
            existing = self._constants[cname]
            if existing.shape == np.asarray(value).shape and np.array_equal(existing, value):
                return cname
            self._const_counter += 1
            cname = f"_C_{name}_{self._const_counter}"
        self._constants[cname] = np.asarray(value, dtype=np.int64)
        return cname

    @staticmethod
    def _domain_nodes(kernel: KernelFunction, node_type) -> List[Stmt]:
        from repro.compiler.ast import walk

        return [node for node in walk(kernel.body) if isinstance(node, node_type)]

    def _max_panel_size(self, kernel: KernelFunction) -> int:
        loops = self._domain_nodes(kernel, SupernodalCholeskyLoop)
        best = 0
        for loop in loops:
            for s in range(loop.n_supernodes):
                c0 = int(loop.sup_start[s])
                c1 = int(loop.sup_end[s])
                w = c1 - c0
                nr = int(loop.l_indptr[c0 + 1] - loop.l_indptr[c0])
                best = max(best, nr * w)
        return best

    def _max_supernode_width(self, kernel: KernelFunction) -> int:
        loops = self._domain_nodes(kernel, SupernodalCholeskyLoop)
        best = 0
        for loop in loops:
            widths = loop.sup_end - loop.sup_start
            if widths.size:
                best = max(best, int(widths.max()))
        return best

    # ------------------------------------------------------------------ #
    # Triangular solve
    # ------------------------------------------------------------------ #
    def _emit_trisolve_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        n = self._n
        out.emit(f"for (int64_t i = 0; i < {n}; i++) x[i] = b[i];")
        self._emit_trisolve_block(out, kernel.body, context)

    def _emit_trisolve_block(self, out: _CEmitter, block: Block, context) -> None:
        for stmt in block.statements:
            if isinstance(stmt, Comment):
                out.emit(f"/* {stmt.text} */")
            elif isinstance(stmt, Block):
                self._emit_trisolve_block(out, stmt, context)
            elif isinstance(stmt, Assign):
                # The only generic assignment in the lowered trisolve is the
                # initial copy of b into x, already emitted in the preamble.
                if isinstance(stmt.target, Var) and stmt.target.name == "x" and isinstance(stmt.value, Call):
                    continue
                raise CCompilationError("unexpected generic assignment in C trisolve")
            elif isinstance(stmt, ForRange):
                if stmt.annotations.get("role") == "column-loop":
                    self._emit_trisolve_all_columns(out)
                else:
                    raise CCompilationError("unexpected generic loop in C trisolve")
            elif isinstance(stmt, PrunedColumnSolveLoop):
                self._emit_pruned_loop_c(out, stmt)
            elif isinstance(stmt, PeeledColumnSolve):
                self._emit_peeled_c(out, stmt)
            elif isinstance(stmt, SupernodeTriangularBlock):
                self._emit_supernode_trisolve_c(out, stmt)
            else:
                raise CCompilationError(f"C backend cannot emit {type(stmt).__name__}")

    def _emit_trisolve_all_columns(self, out: _CEmitter) -> None:
        n = self._n
        out.emit(f"for (int64_t j = 0; j < {n}; j++) {{")
        out.push()
        out.emit("int64_t p0 = Lp[j], p1 = Lp[j + 1];")
        out.emit("double xj = x[j] / Lx[p0];")
        out.emit("x[j] = xj;")
        out.emit("for (int64_t p = p0 + 1; p < p1; p++) x[Li[p]] -= Lx[p] * xj;")
        out.pop()
        out.emit("}")

    def _emit_pruned_loop_c(self, out: _CEmitter, stmt: PrunedColumnSolveLoop) -> None:
        cname = self._add_constant(stmt.constant_name, stmt.columns)
        out.emit(f"/* pruned column loop over {stmt.columns.size} columns */")
        out.emit(f"for (int64_t t = 0; t < {stmt.columns.size}; t++) {{")
        out.push()
        out.emit(f"int64_t j = {cname}[t];")
        out.emit("int64_t p0 = Lp[j], p1 = Lp[j + 1];")
        out.emit("double xj = x[j] / Lx[p0];")
        out.emit("x[j] = xj;")
        out.emit("for (int64_t p = p0 + 1; p < p1; p++) x[Li[p]] -= Lx[p] * xj;")
        out.pop()
        out.emit("}")

    def _emit_peeled_c(self, out: _CEmitter, stmt: PeeledColumnSolve) -> None:
        j = stmt.column
        out.emit(f"/* peeled column {j} */")
        if stmt.nnz == 1:
            out.emit(f"x[{j}] /= Lx[{stmt.diag_pos}];")
            return
        out.emit("{")
        out.push()
        out.emit(f"double xj = x[{j}] / Lx[{stmt.diag_pos}];")
        out.emit(f"x[{j}] = xj;")
        if stmt.unroll:
            for offset, row in enumerate(stmt.rows):
                out.emit(f"x[{int(row)}] -= Lx[{stmt.offdiag_start + offset}] * xj;")
        else:
            out.emit(
                f"for (int64_t p = {stmt.offdiag_start}; p < {stmt.offdiag_end}; p++) "
                "x[Li[p]] -= Lx[p] * xj;"
            )
        out.pop()
        out.emit("}")

    def _emit_supernode_trisolve_c(self, out: _CEmitter, stmt: SupernodeTriangularBlock) -> None:
        c0, w, n_rows = stmt.c0, stmt.width, stmt.n_rows
        col_starts = stmt.col_starts
        n_off = stmt.n_offdiag_rows
        off_lo = stmt.rows_start + w
        out.emit(f"/* supernode {stmt.sn_id}: columns {c0}..{c0 + w} */")
        out.emit("{")
        out.push()
        if stmt.unroll:
            for ii in range(w):
                terms = []
                for jj in range(ii):
                    pos = int(col_starts[jj]) + (ii - jj)
                    terms.append(f"Lx[{pos}] * xb{jj}")
                rhs = f"x[{c0 + ii}]"
                if terms:
                    rhs = f"({rhs} - " + " - ".join(terms) + ")"
                out.emit(f"double xb{ii} = {rhs} / Lx[{int(col_starts[ii])}];")
            for ii in range(w):
                out.emit(f"x[{c0 + ii}] = xb{ii};")
            for jj in range(w):
                p0 = int(col_starts[jj]) + (w - jj)
                out.emit(
                    f"for (int64_t r = 0; r < {n_off}; r++) "
                    f"x[Li[{off_lo} + r]] -= Lx[{p0} + r] * xb{jj};"
                )
        else:
            cs_name = self._add_constant(f"sn{stmt.sn_id}_col_starts", col_starts)
            out.emit(f"for (int64_t jj = 0; jj < {w}; jj++) {{")
            out.push()
            out.emit(f"int64_t cs = {cs_name}[jj];")
            out.emit(f"double xj = x[{c0} + jj] / Lx[cs];")
            out.emit(f"x[{c0} + jj] = xj;")
            out.emit(f"for (int64_t i = 1; i < {w} - jj; i++) x[{c0} + jj + i] -= Lx[cs + i] * xj;")
            out.emit(
                f"for (int64_t r = 0; r < {n_off}; r++) "
                f"x[Li[{off_lo} + r]] -= Lx[cs + ({w} - jj) + r] * xj;"
            )
            out.pop()
            out.emit("}")
        out.pop()
        out.emit("}")

    # ------------------------------------------------------------------ #
    # Left-looking factorizations (Cholesky and LDL^T)
    # ------------------------------------------------------------------ #
    def _emit_factorization_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        simplicial = self._domain_nodes(kernel, SimplicialCholeskyLoop)
        supernodal = self._domain_nodes(kernel, SupernodalCholeskyLoop)
        out.emit("(void)Ap;  /* the A pattern is baked into the generated constants */")
        if supernodal:
            self._emit_supernodal_cholesky_c(out, supernodal[0])
        elif simplicial:
            self._emit_simplicial_cholesky_c(out, simplicial[0])
        else:
            raise CCompilationError(
                "the C backend requires a VI-Pruned or VS-Block'd factorization kernel"
            )

    def _emit_lu_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        simplicial = [
            node
            for node in self._domain_nodes(kernel, SimplicialCholeskyLoop)
            if node.factor_kind == "lu"
        ]
        if not simplicial:
            raise CCompilationError("the C backend requires a VI-Pruned LU kernel")
        out.emit("(void)Ap;  /* the A pattern is baked into the generated constants */")
        self._emit_simplicial_lu_c(out, simplicial[0])

    # ------------------------------------------------------------------ #
    # No-fill incomplete factorizations (IC(0) and ILU(0))
    # ------------------------------------------------------------------ #
    def _emit_ic0_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        loops = [
            node
            for node in self._domain_nodes(kernel, IncompleteFactorLoop)
            if node.factor_kind == "ic0"
        ]
        if not loops:
            raise CCompilationError("the C backend requires a VI-Pruned IC(0) kernel")
        out.emit("(void)Ap; (void)Ai;  /* the A pattern is baked into the constants */")
        self._emit_incomplete_ic0_c(out, loops[0])

    def _emit_ilu0_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        loops = [
            node
            for node in self._domain_nodes(kernel, IncompleteFactorLoop)
            if node.factor_kind == "ilu0"
        ]
        if not loops:
            raise CCompilationError("the C backend requires a VI-Pruned ILU(0) kernel")
        out.emit("(void)Ap; (void)Ai;  /* the A pattern is baked into the constants */")
        self._emit_incomplete_ilu0_c(out, loops[0])

    def _incomplete_ic0_names(self, stmt: IncompleteFactorLoop) -> Dict[str, str]:
        return {
            "lp": self._add_constant("l_indptr", stmt.l_indptr),
            "alp": self._add_constant("a_lower_pos", stmt.a_lower_pos),
            "pp": self._add_constant("prune_ptr", stmt.prune_ptr),
            "mp": self._add_constant("mult_pos", stmt.mult_pos),
            "lsp": self._add_constant("l_scat_ptr", stmt.l_scat_ptr),
            "lss": self._add_constant("l_scat_src", stmt.l_scat_src),
            "lsd": self._add_constant("l_scat_dst", stmt.l_scat_dst),
        }

    def _emit_ic0_column(self, out: _CEmitter, c: Dict[str, str]) -> None:
        # The body of one elimination step j.  Writes land only in column j
        # of Lx (the scatter destinations are column-j positions), which is
        # what lets the wavefront variant run a whole level of steps at once.
        out.emit(f"for (int64_t t = {c['pp']}[j]; t < {c['pp']}[j + 1]; t++) {{")
        out.push()
        out.emit(f"double ljk = Lx[{c['mp']}[t]];")
        out.emit(
            f"for (int64_t s = {c['lsp']}[t]; s < {c['lsp']}[t + 1]; s++) "
            f"Lx[{c['lsd']}[s]] -= Lx[{c['lss']}[s]] * ljk;"
        )
        out.pop()
        out.emit("}")
        out.emit(f"int64_t lp0 = {c['lp']}[j], lp1 = {c['lp']}[j + 1];")
        out.emit("double d = Lx[lp0];")
        out.emit("if (!(d > 0.0)) return j + 1;")
        out.emit("double ljj = sqrt(d);")
        out.emit("Lx[lp0] = ljj;")
        out.emit("for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] /= ljj;")

    def _emit_incomplete_ic0_c(self, out: _CEmitter, stmt: IncompleteFactorLoop) -> None:
        c = self._incomplete_ic0_names(stmt)
        nnzl = int(stmt.l_indptr[-1])
        out.emit("/* IC(0): in-place no-fill elimination on the tril(A) pattern */")
        out.emit(f"for (int64_t i = 0; i < {nnzl}; i++) Lx[i] = Ax[{c['alp']}[i]];")
        out.emit(f"for (int64_t j = 0; j < {stmt.n}; j++) {{")
        out.push()
        self._emit_ic0_column(out, c)
        out.pop()
        out.emit("}")
        out.emit("return 0;")

    def _incomplete_ilu0_names(self, stmt: IncompleteFactorLoop) -> Dict[str, str]:
        return {
            "lp": self._add_constant("l_indptr", stmt.l_indptr),
            "up": self._add_constant("u_indptr", stmt.u_indptr),
            "alp": self._add_constant("a_lower_pos", stmt.a_lower_pos),
            "aup": self._add_constant("a_upper_pos", stmt.a_upper_pos),
            "lgd": self._add_constant("l_gather_dst", stmt.l_gather_dst),
            "pp": self._add_constant("prune_ptr", stmt.prune_ptr),
            "mp": self._add_constant("mult_pos", stmt.mult_pos),
            "usp": self._add_constant("u_scat_ptr", stmt.u_scat_ptr),
            "uss": self._add_constant("u_scat_src", stmt.u_scat_src),
            "usd": self._add_constant("u_scat_dst", stmt.u_scat_dst),
            "lsp": self._add_constant("l_scat_ptr", stmt.l_scat_ptr),
            "lss": self._add_constant("l_scat_src", stmt.l_scat_src),
            "lsd": self._add_constant("l_scat_dst", stmt.l_scat_dst),
        }

    def _emit_ilu0_column(self, out: _CEmitter, c: Dict[str, str]) -> None:
        # One elimination step j: all writes land in column j of Ux and Lx,
        # all reads come from columns k < j (strictly earlier wavefronts).
        out.emit(f"for (int64_t t = {c['pp']}[j]; t < {c['pp']}[j + 1]; t++) {{")
        out.push()
        out.emit(f"double ukj = Ux[{c['mp']}[t]];")
        out.emit(
            f"for (int64_t s = {c['usp']}[t]; s < {c['usp']}[t + 1]; s++) "
            f"Ux[{c['usd']}[s]] -= Lx[{c['uss']}[s]] * ukj;"
        )
        out.emit(
            f"for (int64_t s = {c['lsp']}[t]; s < {c['lsp']}[t + 1]; s++) "
            f"Lx[{c['lsd']}[s]] -= Lx[{c['lss']}[s]] * ukj;"
        )
        out.pop()
        out.emit("}")
        out.emit(f"double piv = Ux[{c['up']}[j + 1] - 1];")
        out.emit("if (piv == 0.0) return j + 1;")
        out.emit(f"int64_t lp0 = {c['lp']}[j], lp1 = {c['lp']}[j + 1];")
        out.emit("Lx[lp0] = 1.0;")
        out.emit("for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] /= piv;")

    def _emit_ilu0_preamble(self, out: _CEmitter, stmt: IncompleteFactorLoop, c: Dict[str, str]) -> None:
        nnzl = int(stmt.l_indptr[-1])
        nnzu = int(stmt.u_indptr[-1])
        n_below = int(stmt.a_lower_pos.size)
        out.emit(f"for (int64_t i = 0; i < {nnzu}; i++) Ux[i] = Ax[{c['aup']}[i]];")
        out.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));")
        out.emit(
            f"for (int64_t i = 0; i < {n_below}; i++) Lx[{c['lgd']}[i]] = Ax[{c['alp']}[i]];"
        )

    def _emit_incomplete_ilu0_c(self, out: _CEmitter, stmt: IncompleteFactorLoop) -> None:
        c = self._incomplete_ilu0_names(stmt)
        out.emit("/* ILU(0): in-place no-fill elimination on the A pattern */")
        self._emit_ilu0_preamble(out, stmt, c)
        out.emit(f"for (int64_t j = 0; j < {stmt.n}; j++) {{")
        out.push()
        self._emit_ilu0_column(out, c)
        out.pop()
        out.emit("}")
        out.emit("return 0;")

    def _simplicial_lu_names(self, stmt: SimplicialCholeskyLoop) -> Dict[str, str]:
        return {
            "lp": self._add_constant("l_indptr", stmt.l_indptr),
            "li": self._add_constant("l_indices", stmt.l_indices),
            "up": self._add_constant("u_indptr", stmt.u_indptr),
            "ui": self._add_constant("u_indices", stmt.u_indices),
            "ad": self._add_constant("a_col_start", stmt.a_diag_pos),
            "ae": self._add_constant("a_col_end", stmt.a_col_end),
            "pp": self._add_constant("prune_ptr", stmt.prune_ptr),
            "upos": self._add_constant("update_pos", stmt.update_pos),
            "uend": self._add_constant("update_end", stmt.update_end),
            "ucol": self._add_constant("update_col", stmt.update_col),
        }

    def _emit_simplicial_lu_column(self, out: _CEmitter, c: Dict[str, str]) -> None:
        # One left-looking LU step: scatter A(:, j) into the thread-local
        # work vector, apply the update columns, store column j of U and L,
        # restore the work vector to zero.  Writes outside the work vector
        # land only in columns j of Lx/Ux.
        out.emit(f"for (int64_t p = {c['ad']}[j]; p < {c['ae']}[j]; p++) repro_f[Ai[p]] = Ax[p];")
        out.emit(f"for (int64_t t = {c['pp']}[j]; t < {c['pp']}[j + 1]; t++) {{")
        out.push()
        out.emit(f"int64_t ps = {c['upos']}[t], pe = {c['uend']}[t];")
        out.emit(f"double ukj = repro_f[{c['ucol']}[t]];")
        out.emit(f"for (int64_t p = ps; p < pe; p++) repro_f[{c['li']}[p]] -= Lx[p] * ukj;")
        out.pop()
        out.emit("}")
        out.emit(f"int64_t u0 = {c['up']}[j], u1 = {c['up']}[j + 1];")
        out.emit(f"for (int64_t p = u0; p < u1; p++) Ux[p] = repro_f[{c['ui']}[p]];")
        out.emit("double piv = repro_f[j];")
        out.emit("if (piv == 0.0) return j + 1;")
        out.emit(f"int64_t lp0 = {c['lp']}[j], lp1 = {c['lp']}[j + 1];")
        out.emit("Lx[lp0] = 1.0;")
        out.emit(f"for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] = repro_f[{c['li']}[p]] / piv;")
        out.emit(f"for (int64_t p = u0; p < u1; p++) repro_f[{c['ui']}[p]] = 0.0;")
        out.emit(f"for (int64_t p = lp0; p < lp1; p++) repro_f[{c['li']}[p]] = 0.0;")

    def _emit_simplicial_lu_c(self, out: _CEmitter, stmt: SimplicialCholeskyLoop) -> None:
        c = self._simplicial_lu_names(stmt)
        nnzl = int(stmt.l_indptr[-1])
        nnzu = int(stmt.u_indptr[-1])
        out.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));")
        out.emit(f"memset(Ux, 0, {nnzu} * sizeof(double));")
        out.emit(f"memset(repro_f, 0, {stmt.n} * sizeof(double));")
        out.emit(f"for (int64_t j = 0; j < {stmt.n}; j++) {{")
        out.push()
        self._emit_simplicial_lu_column(out, c)
        out.pop()
        out.emit("}")
        out.emit("return 0;")

    def _simplicial_chol_names(self, stmt: SimplicialCholeskyLoop) -> Dict[str, str]:
        ldlt = stmt.factor_kind == "ldlt"
        return {
            "lp": self._add_constant("l_indptr", stmt.l_indptr),
            "li": self._add_constant("l_indices", stmt.l_indices),
            "ad": self._add_constant("a_diag_pos", stmt.a_diag_pos),
            "ae": self._add_constant("a_col_end", stmt.a_col_end),
            "pp": self._add_constant("prune_ptr", stmt.prune_ptr),
            "up": self._add_constant("update_pos", stmt.update_pos),
            "ue": self._add_constant("update_end", stmt.update_end),
            "uc": self._add_constant("update_col", stmt.update_col) if ldlt else None,
        }

    def _emit_simplicial_chol_column(
        self, out: _CEmitter, stmt: SimplicialCholeskyLoop, c: Dict[str, str]
    ) -> None:
        # One left-looking Cholesky/LDL^T step over the thread-local work
        # vector; the only shared-array writes are column j of Lx (and D[j]).
        ldlt = stmt.factor_kind == "ldlt"
        out.emit(f"for (int64_t p = {c['ad']}[j]; p < {c['ae']}[j]; p++) repro_f[Ai[p]] = Ax[p];")
        out.emit(f"for (int64_t t = {c['pp']}[j]; t < {c['pp']}[j + 1]; t++) {{")
        out.push()
        out.emit(f"int64_t ps = {c['up']}[t], pe = {c['ue']}[t];")
        if ldlt:
            out.emit(f"double ljk = Lx[ps] * D[{c['uc']}[t]];")
        else:
            out.emit("double ljk = Lx[ps];")
        out.emit(f"for (int64_t p = ps; p < pe; p++) repro_f[{c['li']}[p]] -= Lx[p] * ljk;")
        out.pop()
        out.emit("}")
        out.emit(f"int64_t lp0 = {c['lp']}[j], lp1 = {c['lp']}[j + 1];")
        out.emit("double d = repro_f[j];")
        if ldlt:
            out.emit("if (d == 0.0) return j + 1;")
            out.emit("D[j] = d;")
            out.emit("Lx[lp0] = 1.0;")
            out.emit(f"for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] = repro_f[{c['li']}[p]] / d;")
        else:
            out.emit("if (!(d > 0.0)) return j + 1;")
            out.emit("double ljj = sqrt(d);")
            out.emit("Lx[lp0] = ljj;")
            out.emit(f"for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] = repro_f[{c['li']}[p]] / ljj;")
        out.emit(f"for (int64_t p = lp0; p < lp1; p++) repro_f[{c['li']}[p]] = 0.0;")

    def _emit_simplicial_cholesky_c(self, out: _CEmitter, stmt: SimplicialCholeskyLoop) -> None:
        c = self._simplicial_chol_names(stmt)
        nnzl = int(stmt.l_indptr[-1])
        out.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));")
        out.emit(f"memset(repro_f, 0, {stmt.n} * sizeof(double));")
        out.emit(f"for (int64_t j = 0; j < {stmt.n}; j++) {{")
        out.push()
        self._emit_simplicial_chol_column(out, stmt, c)
        out.pop()
        out.emit("}")
        out.emit("return 0;")

    def _emit_supernodal_cholesky_c(self, out: _CEmitter, stmt: SupernodalCholeskyLoop) -> None:
        n = stmt.n
        ldlt = stmt.factor_kind == "ldlt"
        lp = self._add_constant("l_indptr", stmt.l_indptr)
        li = self._add_constant("l_indices", stmt.l_indices)
        ad = self._add_constant("a_diag_pos", stmt.a_diag_pos)
        ae = self._add_constant("a_col_end", stmt.a_col_end)
        ss = self._add_constant("sup_start", stmt.sup_start)
        se = self._add_constant("sup_end", stmt.sup_end)
        dp = self._add_constant("desc_ptr", stmt.desc_ptr)
        dpos = self._add_constant("desc_pos", stmt.desc_pos)
        dme = self._add_constant("desc_mult_end", stmt.desc_mult_end)
        dend = self._add_constant("desc_end", stmt.desc_end)
        dc = self._add_constant("desc_col", stmt.desc_col) if ldlt else None
        nnzl = int(stmt.l_indptr[-1])
        n_super = stmt.n_supernodes
        out.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));")
        out.emit(f"memset(repro_f, 0, {n} * sizeof(double));")
        out.emit(f"for (int64_t s = 0; s < {n_super}; s++) {{")
        out.push()
        out.emit(f"int64_t c0 = {ss}[s], c1 = {se}[s];")
        out.emit("int64_t w = c1 - c0;")
        if stmt.distribute_single_columns:
            out.emit("if (w == 1) {")
            out.push()
            out.emit(f"int64_t lp0 = {lp}[c0], lp1 = {lp}[c0 + 1];")
            out.emit(f"for (int64_t p = {ad}[c0]; p < {ae}[c0]; p++) repro_f[Ai[p]] = Ax[p];")
            out.emit(f"for (int64_t t = {dp}[s]; t < {dp}[s + 1]; t++) {{")
            out.push()
            out.emit(f"int64_t ps = {dpos}[t], pe = {dend}[t];")
            if ldlt:
                out.emit(f"double ljk = Lx[ps] * D[{dc}[t]];")
            else:
                out.emit("double ljk = Lx[ps];")
            out.emit(f"for (int64_t p = ps; p < pe; p++) repro_f[{li}[p]] -= Lx[p] * ljk;")
            out.pop()
            out.emit("}")
            out.emit("double d = repro_f[c0];")
            if ldlt:
                out.emit("if (d == 0.0) return c0 + 1;")
                out.emit("D[c0] = d;")
                out.emit("Lx[lp0] = 1.0;")
                out.emit(f"for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] = repro_f[{li}[p]] / d;")
            else:
                out.emit("if (!(d > 0.0)) return c0 + 1;")
                out.emit("double ljj = sqrt(d);")
                out.emit("Lx[lp0] = ljj;")
                out.emit(f"for (int64_t p = lp0 + 1; p < lp1; p++) Lx[p] = repro_f[{li}[p]] / ljj;")
            out.emit(f"for (int64_t p = lp0; p < lp1; p++) repro_f[{li}[p]] = 0.0;")
            out.emit("continue;")
            out.pop()
            out.emit("}")
        out.emit(f"int64_t r0 = {lp}[c0], r1 = {lp}[c0 + 1];")
        out.emit("int64_t nr = r1 - r0;")
        out.emit(f"for (int64_t i = 0; i < nr; i++) repro_rowmap[{li}[r0 + i]] = i;")
        out.emit("for (int64_t i = 0; i < nr * w; i++) repro_panel[i] = 0.0;")
        out.emit("for (int64_t jj = 0; jj < w; jj++) {")
        out.push()
        out.emit("int64_t c = c0 + jj;")
        out.emit(
            f"for (int64_t p = {ad}[c]; p < {ae}[c]; p++) "
            "repro_panel[repro_rowmap[Ai[p]] * w + jj] = Ax[p];"
        )
        out.pop()
        out.emit("}")
        out.emit(f"for (int64_t t = {dp}[s]; t < {dp}[s + 1]; t++) {{")
        out.push()
        out.emit(f"int64_t ps = {dpos}[t], pm = {dme}[t], pe = {dend}[t];")
        out.emit("for (int64_t i = 0; i < w; i++) repro_mult[i] = 0.0;")
        if ldlt:
            out.emit(f"double dk = D[{dc}[t]];")
            out.emit(f"for (int64_t p = ps; p < pm; p++) repro_mult[{li}[p] - c0] = Lx[p] * dk;")
        else:
            out.emit(f"for (int64_t p = ps; p < pm; p++) repro_mult[{li}[p] - c0] = Lx[p];")
        out.emit("for (int64_t p = ps; p < pe; p++) {")
        out.push()
        out.emit(f"double* row = repro_panel + repro_rowmap[{li}[p]] * w;")
        out.emit("double lv = Lx[p];")
        out.emit("for (int64_t i = 0; i < w; i++) row[i] -= lv * repro_mult[i];")
        out.pop()
        out.emit("}")
        out.pop()
        out.emit("}")
        if ldlt:
            # Dense LDL^T of the diagonal block; pivots go straight into D.
            out.emit("/* dense LDL^T of the w x w diagonal block (in place) */")
            out.emit("for (int64_t k = 0; k < w; k++) {")
            out.push()
            out.emit("double piv = repro_panel[k * w + k];")
            out.emit("if (piv == 0.0) return c0 + k + 1;")
            out.emit("D[c0 + k] = piv;")
            out.emit("repro_panel[k * w + k] = 1.0;")
            out.emit("for (int64_t i = k + 1; i < w; i++) repro_panel[i * w + k] /= piv;")
            out.emit("for (int64_t j = k + 1; j < w; j++) {")
            out.push()
            out.emit("double cjk = repro_panel[j * w + k] * piv;")
            out.emit("for (int64_t i = j; i < w; i++) repro_panel[i * w + j] -= repro_panel[i * w + k] * cjk;")
            out.pop()
            out.emit("}")
            out.pop()
            out.emit("}")
            # Off-diagonal panel: X (D L_d^T) = B -> trsm by L_d^T, then /= D.
            out.emit("repro_dense_trsm_rt(repro_panel, w, repro_panel + w * w, nr - w);")
            out.emit("for (int64_t r = 0; r < nr - w; r++)")
            out.push()
            out.emit("for (int64_t k = 0; k < w; k++) repro_panel[(w + r) * w + k] /= D[c0 + k];")
            out.pop()
        else:
            # Dense factorization of the diagonal block (row-major, stride w).
            out.emit("/* dense Cholesky of the w x w diagonal block (in place) */")
            out.emit("for (int64_t k = 0; k < w; k++) {")
            out.push()
            out.emit("double piv = repro_panel[k * w + k];")
            out.emit("if (!(piv > 0.0)) return c0 + k + 1;")
            out.emit("piv = sqrt(piv);")
            out.emit("repro_panel[k * w + k] = piv;")
            out.emit("for (int64_t i = k + 1; i < w; i++) repro_panel[i * w + k] /= piv;")
            out.emit("for (int64_t j = k + 1; j < w; j++) {")
            out.push()
            out.emit("double djk = repro_panel[j * w + k];")
            out.emit("for (int64_t i = j; i < w; i++) repro_panel[i * w + j] -= repro_panel[i * w + k] * djk;")
            out.pop()
            out.emit("}")
            out.pop()
            out.emit("}")
            out.emit("repro_dense_trsm_rt(repro_panel, w, repro_panel + w * w, nr - w);")
        out.emit("for (int64_t jj = 0; jj < w; jj++) {")
        out.push()
        out.emit("int64_t c = c0 + jj;")
        out.emit(f"int64_t lp0 = {lp}[c];")
        out.emit("for (int64_t i = jj; i < w; i++) Lx[lp0 + (i - jj)] = repro_panel[i * w + jj];")
        out.emit(
            "for (int64_t r = 0; r < nr - w; r++) "
            "Lx[lp0 + (w - jj) + r] = repro_panel[(w + r) * w + jj];"
        )
        out.pop()
        out.emit("}")
        out.pop()
        out.emit("}")
        out.emit("return 0;")

    # ------------------------------------------------------------------ #
    # Wavefront (level-parallel) kernel variants
    # ------------------------------------------------------------------ #
    def _wf_fallback_reason(self, context, *, supernodal: bool = False) -> Optional[str]:
        """Why a wavefront body cannot (usefully) be emitted, or ``None``.

        The wavefront ABI is kept either way — on fallback the serial body is
        emitted behind it — so artifact callers never need to care which body
        the compile chose.
        """
        schedule = getattr(context.inspection, "schedule", None)
        if schedule is None:
            return "no-schedule"
        if supernodal:
            # VS-Block panels update ancestor supernodes in place; scheduling
            # them by column levels would break the disjoint-write argument.
            # Tracked as follow-up in ROADMAP.md.
            return "supernodal"
        if schedule.n_scheduled == 0:
            return "empty-schedule"
        min_avg = getattr(context.options, "wavefront_min_avg_width", 1.5)
        if schedule.average_width < min_avg:
            # n_levels close to n: a deep elimination tree, where per-level
            # barriers cost more than the parallelism they unlock.
            return "deep-etree"
        return None

    def _record_wf_decision(self, context, fallback: Optional[str]) -> None:
        schedule = getattr(context.inspection, "schedule", None)
        mode = "wavefront" if fallback is None else "serial-fallback"
        info: Dict[str, object] = {"mode": mode}
        if fallback is not None:
            info["fallback_reason"] = fallback
        if schedule is not None:
            info["n_levels"] = schedule.n_levels
            info["max_width"] = schedule.max_width
            info["average_width"] = round(schedule.average_width, 3)
        context.decisions["wavefront"] = info
        self._parallel_mode = mode

    def _emit_wavefront_scaffold(
        self,
        out: _CEmitter,
        kernel: KernelFunction,
        context,
        *,
        params: List[Tuple[str, str]],
        emit_column: Callable[[_CEmitter], None],
        emit_parallel_preamble: Optional[Callable[[_CEmitter], None]],
        emit_serial: Callable[[_CEmitter], None],
        returns_status: bool,
        participant_clears_f: bool,
    ) -> None:
        """Emit the level-parallel entry body plus its prelude functions.

        ``{entry}_wf_col`` holds the per-column body shared verbatim with the
        serial emitters (``return j + 1`` failure lines become its status);
        ``{entry}_wf_run`` is the per-participant loop over levels with a
        barrier after each; the entry body itself dispatches: serial body for
        ``n_threads <= 1``, preamble + pool launch otherwise.
        """
        schedule = context.inspection.schedule
        entry = kernel.name
        worder = self._add_constant("wf_order", schedule.order)
        wlp = self._add_constant("wf_level_ptr", schedule.level_ptr)
        self._needs_wf_runtime = True

        p = _CEmitter()
        arg_decls = "".join(f", {decl} {name}" for decl, name in params)
        p.emit(f"static int64_t {entry}_wf_col(int64_t t{arg_decls}) {{")
        p.push()
        p.emit(f"int64_t j = {worder}[t];")
        emit_column(p)
        p.emit("return 0;")
        p.pop()
        p.emit("}")
        p.emit("")
        fields = " ".join(f"{decl} {name};" for decl, name in params)
        p.emit(f"typedef struct {{ {fields} }} {entry}_wf_job_t;")
        p.emit("")
        # Per-level wall-clock timestamps, recorded by participant 0 only
        # (after each barrier every level's columns are complete, so tid 0's
        # clock reads bound the level) and only while the runtime profiling
        # flag is raised.  Exported for ctypes via {entry}_wf_level_times.
        p.emit(f"static double {entry}_wf_level_ts[{schedule.n_levels} + 1];")
        p.emit(f"double* {entry}_wf_level_times(void) {{ return {entry}_wf_level_ts; }}")
        p.emit("")
        p.emit(f"static void {entry}_wf_run(int64_t tid, int64_t nt, void* jobv) {{")
        p.push()
        p.emit(f"{entry}_wf_job_t* job = ({entry}_wf_job_t*)jobv;")
        p.emit("int64_t wf_sense = 0;")
        p.emit("int64_t wf_prof = tid == 0 && repro_wf_profile_on();")
        p.emit(f"if (wf_prof) {entry}_wf_level_ts[0] = repro_wf_now();")
        if participant_clears_f:
            # A failed earlier call may have bailed out of a column body with
            # the thread-local work vector still scattered; restore the
            # all-zeros invariant the column bodies rely on.
            p.emit(f"memset(repro_f, 0, {self._n} * sizeof(double));")
        p.emit(f"for (int64_t l = 0; l < {schedule.n_levels}; l++) {{")
        p.push()
        p.emit(f"int64_t lo = {wlp}[l], hi = {wlp}[l + 1];")
        p.emit("int64_t chunk = (hi - lo + nt - 1) / nt;")
        p.emit("int64_t s = lo + tid * chunk;")
        p.emit("int64_t e = s + chunk < hi ? s + chunk : hi;")
        p.emit("if (repro_wf_ok()) {")
        p.push()
        p.emit("for (int64_t t = s; t < e; t++) {")
        p.push()
        call_args = "".join(f", job->{name}" for _, name in params)
        p.emit(f"int64_t st = {entry}_wf_col(t{call_args});")
        p.emit("if (st != 0) { repro_wf_fail(st); break; }")
        p.pop()
        p.emit("}")
        p.pop()
        p.emit("}")
        p.emit("repro_wf_barrier(nt, &wf_sense);")
        p.emit(f"if (wf_prof) {entry}_wf_level_ts[l + 1] = repro_wf_now();")
        p.pop()
        p.emit("}")
        p.pop()
        p.emit("}")
        self._prelude.extend(p.lines)

        out.emit(f"if (n_threads > {schedule.max_width}) n_threads = {schedule.max_width};")
        out.emit("if (n_threads <= 1) {")
        out.push()
        emit_serial(out)
        out.pop()
        out.emit("}")
        if emit_parallel_preamble is not None:
            emit_parallel_preamble(out)
        init = ", ".join(name for _, name in params)
        out.emit(f"{entry}_wf_job_t wf_job = {{ {init} }};")
        if returns_status:
            out.emit(f"return repro_wf_launch({entry}_wf_run, &wf_job, n_threads);")
        else:
            out.emit(f"repro_wf_launch({entry}_wf_run, &wf_job, n_threads);")

    def _trisolve_serial_order(self, kernel: KernelFunction) -> List[int]:
        """Columns in the order the *serial* body processes them.

        The serial trisolve does not visit columns in ascending index order:
        VI-Prune emits the reach set in the inspector's topological order,
        peeling hoists columns out of the pruned loops, and VS-Block walks
        supernode panels.  The pull-form wavefront body must subtract each
        row's updates in this exact order to stay bitwise identical, so the
        order is recovered by walking the lowered IR the same way the serial
        emitter does.
        """
        cols: List[int] = []

        def walk(block: Block) -> None:
            for stmt in block.statements:
                if isinstance(stmt, Block):
                    walk(stmt)
                elif isinstance(stmt, ForRange):
                    if stmt.annotations.get("role") == "column-loop":
                        cols.extend(range(self._n))
                elif isinstance(stmt, PrunedColumnSolveLoop):
                    cols.extend(int(c) for c in stmt.columns)
                elif isinstance(stmt, PeeledColumnSolve):
                    cols.append(int(stmt.column))
                elif isinstance(stmt, SupernodeTriangularBlock):
                    cols.extend(range(int(stmt.c0), int(stmt.c0) + int(stmt.width)))

        walk(kernel.body)
        return cols

    def _trisolve_pull_structure(
        self, context, schedule, serial_order: List[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Row-oriented (pull) view of the scheduled triangular solve.

        The serial kernels push column updates ``x[Li[p]] -= Lx[p] * xj`` as
        each source column executes; two same-level columns may push into the
        same ``x[i]``, so the push form cannot run a level concurrently.  The
        pull form makes column ``j`` gather its own updates instead — and
        because it subtracts them in the serial body's own column-execution
        order (``serial_order``), the float operation sequence per entry is
        identical and the result bitwise equal to the serial kernel.
        """
        Lp = np.asarray(context.matrix.indptr, dtype=np.int64)
        Li = np.asarray(context.matrix.indices, dtype=np.int64)
        order = np.asarray(schedule.order, dtype=np.int64)
        rows: Dict[int, List[Tuple[int, int]]] = {int(j): [] for j in order}
        if sorted(serial_order) != sorted(int(j) for j in order):
            raise CCompilationError(
                "the serial trisolve body and the level-set schedule cover "
                "different column sets"
            )
        for c in serial_order:
            for p in range(int(Lp[c]) + 1, int(Lp[c + 1])):
                i = int(Li[p])
                if i not in rows:
                    # Reach sets are closed under L-edges, so every update
                    # target of a scheduled column is itself scheduled.
                    raise CCompilationError(
                        f"trisolve schedule is not closed: column {c} updates "
                        f"unscheduled row {i}"
                    )
                rows[i].append((p, c))
        row_ptr = [0]
        row_pos: List[int] = []
        row_col: List[int] = []
        diag_pos: List[int] = []
        for j in order:
            for p, c in rows[int(j)]:
                row_pos.append(p)
                row_col.append(c)
            row_ptr.append(len(row_pos))
            diag_pos.append(int(Lp[int(j)]))
        return (
            np.asarray(row_ptr, dtype=np.int64),
            np.asarray(row_pos, dtype=np.int64),
            np.asarray(row_col, dtype=np.int64),
            np.asarray(diag_pos, dtype=np.int64),
        )

    def _emit_wf_trisolve_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        fallback = self._wf_fallback_reason(context)
        self._record_wf_decision(context, fallback)
        if fallback is not None:
            out.emit(f"(void)n_threads;  /* serial fallback: {fallback} */")
            self._emit_trisolve_body(out, kernel, context)
            return
        schedule = context.inspection.schedule
        wrp, wpos, wcol, wdiag = self._trisolve_pull_structure(
            context, schedule, self._trisolve_serial_order(kernel)
        )
        rp = self._add_constant("wf_row_ptr", wrp)
        rpos = self._add_constant("wf_row_pos", wpos)
        rcol = self._add_constant("wf_row_col", wcol)
        dg = self._add_constant("wf_diag_pos", wdiag)
        n = self._n

        def emit_column(p: _CEmitter) -> None:
            p.emit("double acc = b[j];")
            p.emit(
                f"for (int64_t s = {rp}[t]; s < {rp}[t + 1]; s++) "
                f"acc -= Lx[{rpos}[s]] * x[{rcol}[s]];"
            )
            p.emit(f"x[j] = acc / Lx[{dg}[t]];")

        def emit_parallel_preamble(p: _CEmitter) -> None:
            p.emit(f"for (int64_t i = 0; i < {n}; i++) x[i] = b[i];")

        def emit_serial(p: _CEmitter) -> None:
            self._emit_trisolve_body(p, kernel, context)
            p.emit("return;")

        self._emit_wavefront_scaffold(
            out,
            kernel,
            context,
            params=[("const double*", "Lx"), ("const double*", "b"), ("double*", "x")],
            emit_column=emit_column,
            emit_parallel_preamble=emit_parallel_preamble,
            emit_serial=emit_serial,
            returns_status=False,
            participant_clears_f=False,
        )

    def _emit_wf_factorization_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        simplicial = self._domain_nodes(kernel, SimplicialCholeskyLoop)
        supernodal = self._domain_nodes(kernel, SupernodalCholeskyLoop)
        out.emit("(void)Ap;  /* the A pattern is baked into the generated constants */")
        fallback = self._wf_fallback_reason(context, supernodal=bool(supernodal))
        self._record_wf_decision(context, fallback)
        if fallback is not None:
            out.emit(f"(void)n_threads;  /* serial fallback: {fallback} */")
            if supernodal:
                self._emit_supernodal_cholesky_c(out, supernodal[0])
            elif simplicial:
                self._emit_simplicial_cholesky_c(out, simplicial[0])
            else:
                raise CCompilationError(
                    "the C backend requires a VI-Pruned or VS-Block'd factorization kernel"
                )
            return
        if not simplicial:
            raise CCompilationError(
                "the C backend requires a VI-Pruned or VS-Block'd factorization kernel"
            )
        stmt = simplicial[0]
        names = self._simplicial_chol_names(stmt)
        nnzl = int(stmt.l_indptr[-1])
        params = [("const int64_t*", "Ai"), ("const double*", "Ax"), ("double*", "Lx")]
        if stmt.factor_kind == "ldlt":
            params.append(("double*", "D"))

        self._emit_wavefront_scaffold(
            out,
            kernel,
            context,
            params=params,
            emit_column=lambda p: self._emit_simplicial_chol_column(p, stmt, names),
            emit_parallel_preamble=lambda p: p.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));"),
            emit_serial=lambda p: self._emit_simplicial_cholesky_c(p, stmt),
            returns_status=True,
            participant_clears_f=True,
        )

    def _emit_wf_lu_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        simplicial = [
            node
            for node in self._domain_nodes(kernel, SimplicialCholeskyLoop)
            if node.factor_kind == "lu"
        ]
        if not simplicial:
            raise CCompilationError("the C backend requires a VI-Pruned LU kernel")
        out.emit("(void)Ap;  /* the A pattern is baked into the generated constants */")
        stmt = simplicial[0]
        fallback = self._wf_fallback_reason(context)
        self._record_wf_decision(context, fallback)
        if fallback is not None:
            out.emit(f"(void)n_threads;  /* serial fallback: {fallback} */")
            self._emit_simplicial_lu_c(out, stmt)
            return
        names = self._simplicial_lu_names(stmt)
        nnzl = int(stmt.l_indptr[-1])
        nnzu = int(stmt.u_indptr[-1])

        def emit_parallel_preamble(p: _CEmitter) -> None:
            p.emit(f"memset(Lx, 0, {nnzl} * sizeof(double));")
            p.emit(f"memset(Ux, 0, {nnzu} * sizeof(double));")

        self._emit_wavefront_scaffold(
            out,
            kernel,
            context,
            params=[
                ("const int64_t*", "Ai"),
                ("const double*", "Ax"),
                ("double*", "Lx"),
                ("double*", "Ux"),
            ],
            emit_column=lambda p: self._emit_simplicial_lu_column(p, names),
            emit_parallel_preamble=emit_parallel_preamble,
            emit_serial=lambda p: self._emit_simplicial_lu_c(p, stmt),
            returns_status=True,
            participant_clears_f=True,
        )

    def _emit_wf_ic0_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        loops = [
            node
            for node in self._domain_nodes(kernel, IncompleteFactorLoop)
            if node.factor_kind == "ic0"
        ]
        if not loops:
            raise CCompilationError("the C backend requires a VI-Pruned IC(0) kernel")
        out.emit("(void)Ap; (void)Ai;  /* the A pattern is baked into the constants */")
        stmt = loops[0]
        fallback = self._wf_fallback_reason(context)
        self._record_wf_decision(context, fallback)
        if fallback is not None:
            out.emit(f"(void)n_threads;  /* serial fallback: {fallback} */")
            self._emit_incomplete_ic0_c(out, stmt)
            return
        names = self._incomplete_ic0_names(stmt)
        nnzl = int(stmt.l_indptr[-1])

        def emit_parallel_preamble(p: _CEmitter) -> None:
            p.emit(f"for (int64_t i = 0; i < {nnzl}; i++) Lx[i] = Ax[{names['alp']}[i]];")

        self._emit_wavefront_scaffold(
            out,
            kernel,
            context,
            params=[("double*", "Lx")],
            emit_column=lambda p: self._emit_ic0_column(p, names),
            emit_parallel_preamble=emit_parallel_preamble,
            emit_serial=lambda p: self._emit_incomplete_ic0_c(p, stmt),
            returns_status=True,
            participant_clears_f=False,
        )

    def _emit_wf_ilu0_body(self, out: _CEmitter, kernel: KernelFunction, context) -> None:
        loops = [
            node
            for node in self._domain_nodes(kernel, IncompleteFactorLoop)
            if node.factor_kind == "ilu0"
        ]
        if not loops:
            raise CCompilationError("the C backend requires a VI-Pruned ILU(0) kernel")
        out.emit("(void)Ap; (void)Ai;  /* the A pattern is baked into the constants */")
        stmt = loops[0]
        fallback = self._wf_fallback_reason(context)
        self._record_wf_decision(context, fallback)
        if fallback is not None:
            out.emit(f"(void)n_threads;  /* serial fallback: {fallback} */")
            self._emit_incomplete_ilu0_c(out, stmt)
            return
        names = self._incomplete_ilu0_names(stmt)

        self._emit_wavefront_scaffold(
            out,
            kernel,
            context,
            params=[("double*", "Lx"), ("double*", "Ux")],
            emit_column=lambda p: self._emit_ilu0_column(p, names),
            emit_parallel_preamble=lambda p: self._emit_ilu0_preamble(p, stmt, names),
            emit_serial=lambda p: self._emit_incomplete_ilu0_c(p, stmt),
            returns_status=True,
            participant_clears_f=False,
        )
