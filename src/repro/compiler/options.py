"""Configuration of the Sympiler code generator.

The options gather every tunable the paper mentions:

* which inspector-guided transformations run and in which order (§4.2 notes
  VS-Block is applied before VI-Prune in the current Sympiler),
* the VS-Block *participation* threshold — supernodal code is only generated
  when the average participating supernode is large enough (the paper uses a
  hand-tuned value of 160 on full-scale SuiteSparse matrices; the default
  here is expressed as an average supernode width suited to the down-scaled
  synthetic suite, see DESIGN.md),
* the BLAS-switch threshold on the average column count (§4.2): below it the
  generated code uses the hand-specialized small dense kernels, above it the
  library (NumPy/BLAS) routines,
* low-level transformation thresholds (peeling, unrolling, vectorization),
* the code-generation backend,
* the numeric-runtime thread count used by the batched execution engine
  (:mod:`repro.runtime`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["SympilerOptions"]

_VALID_BACKENDS = ("python", "c")
_VALID_TRANSFORM_NAMES = ("vs-block", "vi-prune")
_VALID_PARALLEL_MODES = ("none", "wavefront")


def _default_c_flags() -> Tuple[str, ...]:
    """Default C flags, overridable through ``REPRO_CFLAGS``.

    The built-in default tunes for the local machine (``-march=native``),
    which is wrong for caches shared between heterogeneous hosts — CI sets
    ``REPRO_CFLAGS`` to a portable flag set so restored ``.so`` artifacts
    run on whichever runner picks up the next job.
    """
    env = os.environ.get("REPRO_CFLAGS")
    if env:
        return tuple(env.split())
    return ("-O3", "-march=native", "-fPIC", "-shared")


@dataclass(frozen=True)
class SympilerOptions:
    """Immutable bundle of code-generation options.

    Attributes
    ----------
    backend:
        ``"python"`` (specialized Python/NumPy source, always available) or
        ``"c"`` (specialized C compiled with the system compiler and loaded
        via ``ctypes``).
    enable_vi_prune, enable_vs_block, enable_low_level:
        Toggles for the transformation stages; disabling all of them produces
        the un-transformed lowered kernel (useful for ablations).
    transformation_order:
        Order in which the enabled inspector-guided transformations run.  The
        paper's default applies VS-Block before VI-Prune.
    vs_block_min_avg_width:
        VS-Block participation threshold: if the average width of supernodes
        with at least two columns is below this value the transformation is
        skipped for the matrix (the analogue of the paper's hand-tuned 160 on
        full-scale matrices).
    vs_block_min_supernode_width:
        Individual supernodes narrower than this are handled by the pruned
        column loop rather than the dense block path.
    max_supernode_width:
        Optional cap on supernode width (limits panel size).
    blas_switch_avg_colcount:
        If the average column count of the factor is at least this value the
        generated code calls the library (NumPy/BLAS) dense kernels for every
        block; otherwise blocks up to ``small_kernel_max_width`` use the
        hand-specialized unrolled kernels.
    small_kernel_max_width:
        Largest block order handled by the specialized unrolled kernels.
    peel_single_nonzero_columns:
        Peel reach-set iterations whose column holds only a diagonal entry
        into a single specialized statement.
    peel_colcount_threshold:
        Reach-set iterations whose column count exceeds this value are peeled
        into straight-line specialized statements (Figure 1(e) peels columns
        with more than 2 nonzeros).
    max_peeled_iterations:
        Upper bound on the number of peeled iterations, to keep generated
        sources bounded.
    unroll_max_width:
        Supernode diagonal solves up to this width are emitted fully unrolled.
    vectorize_min_length:
        Inner updates at least this long are annotated for vectorization
        (emitted as NumPy slice operations / contiguous C loops).
    parallel:
        Within-kernel execution mode of the *generated code*.  ``"none"``
        (the default) emits the sequential kernels; ``"wavefront"`` makes
        the C backend emit a level-parallel variant whose entry point walks
        the inspector's cached level-set schedule and dispatches the columns
        of each wavefront across a persistent worker pool (per-level
        barriers between wavefronts).  Results are bitwise identical to the
        serial kernel — levels are antichains of the column dependency DAG,
        so per-column writes are disjoint and every read crosses a barrier.
        Unlike ``num_threads`` this changes the generated code, so it *is*
        part of the cache fingerprints: serial and wavefront artifacts of
        one pattern cache (in memory and on disk) independently.  The
        backend automatically falls back to the serial body when the
        schedule has no parallelism to mine (see
        ``wavefront_min_avg_width``) or when the kernel is supernodal
        (VS-Block interaction — tracked as follow-up in ROADMAP.md); the
        python backend ignores the mode (it has no in-kernel threading).
    wavefront_min_avg_width:
        Serial-fallback threshold for ``parallel="wavefront"``: when the
        schedule's average level width is below this value (``n_levels``
        close to ``n`` — a deep elimination tree, e.g. a chain/tridiagonal
        pattern), the barrier overhead cannot pay off and the backend emits
        the serial body instead, recording the decision on the artifact.
    num_threads:
        Worker-thread count for the batched numeric runtime
        (:class:`repro.runtime.BatchExecutor`).  ``1`` (the default) runs
        batch items sequentially; ``N > 1`` maps them over a thread pool when
        the backend can execute concurrently (the C backend releases the GIL
        inside the generated shared object, and its work buffers are
        thread-local); ``0`` means "one thread per available CPU".  Purely a
        runtime knob — the generated code is identical for every value, and
        the field is excluded from the cache fingerprints
        (:data:`repro.compiler.cache.RUNTIME_ONLY_OPTIONS`), so re-tuning it
        keeps hitting the same cached artifacts.
    c_compiler, c_flags:
        Compiler executable and flags for the C backend.  The executable
        defaults to the ``REPRO_CC`` environment variable (read at option
        construction time), then ``"cc"``; when the executable cannot be
        found the driver falls back to the Python backend with a warning
        instead of erroring.  The flags default to ``REPRO_CFLAGS``
        (whitespace-split), then ``-O3 -march=native -fPIC -shared`` —
        override with a portable set when the on-disk ``.so`` cache is
        shared between machines with different CPUs.
    """

    backend: str = "python"
    enable_vi_prune: bool = True
    enable_vs_block: bool = True
    enable_low_level: bool = True
    transformation_order: Tuple[str, ...] = ("vs-block", "vi-prune")

    vs_block_min_avg_width: float = 1.2
    vs_block_min_supernode_width: int = 2
    max_supernode_width: Optional[int] = None

    blas_switch_avg_colcount: float = 12.0
    small_kernel_max_width: int = 3

    peel_single_nonzero_columns: bool = True
    peel_colcount_threshold: int = 2
    max_peeled_iterations: int = 64
    unroll_max_width: int = 4
    vectorize_min_length: int = 4

    parallel: str = "none"
    wavefront_min_avg_width: float = 1.5

    num_threads: int = 1

    c_compiler: str = field(default_factory=lambda: os.environ.get("REPRO_CC", "cc"))
    c_flags: Tuple[str, ...] = field(default_factory=_default_c_flags)

    def __post_init__(self) -> None:
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_VALID_BACKENDS}"
            )
        for name in self.transformation_order:
            if name not in _VALID_TRANSFORM_NAMES:
                raise ValueError(
                    f"unknown transformation {name!r}; expected names from "
                    f"{_VALID_TRANSFORM_NAMES}"
                )
        if len(set(self.transformation_order)) != len(self.transformation_order):
            raise ValueError("transformation_order must not repeat a transformation")
        if self.vs_block_min_supernode_width < 1:
            raise ValueError("vs_block_min_supernode_width must be at least 1")
        if self.max_supernode_width is not None and self.max_supernode_width < 1:
            raise ValueError("max_supernode_width must be positive when given")
        if self.peel_colcount_threshold < 1:
            raise ValueError("peel_colcount_threshold must be at least 1")
        if self.max_peeled_iterations < 0:
            raise ValueError("max_peeled_iterations must be non-negative")
        if self.unroll_max_width < 1:
            raise ValueError("unroll_max_width must be at least 1")
        if self.vectorize_min_length < 1:
            raise ValueError("vectorize_min_length must be at least 1")
        if self.parallel not in _VALID_PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {self.parallel!r}; expected one of "
                f"{_VALID_PARALLEL_MODES}"
            )
        if self.wavefront_min_avg_width < 1.0:
            raise ValueError("wavefront_min_avg_width must be at least 1.0")
        if self.num_threads < 0:
            raise ValueError("num_threads must be non-negative (0 means one per CPU)")

    # ------------------------------------------------------------------ #
    def with_updates(self, **changes) -> "SympilerOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def active_transformations(self) -> Tuple[str, ...]:
        """The inspector-guided transformations that will actually run."""
        active = []
        for name in self.transformation_order:
            if name == "vs-block" and self.enable_vs_block:
                active.append(name)
            elif name == "vi-prune" and self.enable_vi_prune:
                active.append(name)
        return tuple(active)

    @classmethod
    def baseline(cls) -> "SympilerOptions":
        """Options with every transformation disabled (un-transformed code)."""
        return cls(enable_vi_prune=False, enable_vs_block=False, enable_low_level=False)

    @classmethod
    def vi_prune_only(cls) -> "SympilerOptions":
        """Options enabling only VI-Prune."""
        return cls(enable_vs_block=False, enable_low_level=False)

    @classmethod
    def vs_block_only(cls) -> "SympilerOptions":
        """Options enabling only VS-Block."""
        return cls(enable_vi_prune=False, enable_low_level=False)

    @classmethod
    def all_transformations(cls) -> "SympilerOptions":
        """Options enabling both inspector-guided passes and low-level ones."""
        return cls()
