"""Deterministic cache probe: prove cold-vs-warm compile behaviour.

``python -m repro.compiler.cache_probe`` compiles a fixed workload — one
kernel of every registered family on fixed generator matrices — through a
fresh :class:`~repro.compiler.sympiler.Sympiler` and reports the on-disk
shared-object cache counters (:func:`~repro.compiler.codegen.c_backend.disk_cache_stats`)
as JSON.  Because the workload is deterministic, a second run in a *new
process* against the same ``REPRO_SYMPILER_CACHE`` directory must reuse every
``.so`` it produced; ``--assert-warm`` turns that expectation into a nonzero
exit code, which is how CI asserts "warm cache ⇒ zero C recompiles" with
counters instead of hoping a pytest re-run exercised the path.

The python backend participates in the same protocol: generated Python
sources (and their constants) are persisted to the cache directory, so a
warm run must also *regenerate* nothing — ``--assert-warm`` checks
``py_writes == 0`` alongside ``so_compiles == 0``.  ``--json`` appends the
unified observability registry snapshot (:func:`repro.observe.snapshot`) to
the report, so CI can assert the warm-cache counters *and* the registry's
view of them from one JSON document.  Without a C toolchain
the probe still runs (the driver falls back to the Python backend) and the
python counters carry the warm-cache assertion on their own.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Dict

import numpy as np

from repro.compiler.cache import ArtifactCache
from repro.compiler.codegen.c_backend import (
    c_compiler_available,
    disk_cache_stats,
    reset_disk_cache_stats,
)
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.sparse.generators import (
    fem_stencil_2d,
    laplacian_2d,
    saddle_point_indefinite,
    sparse_rhs,
    unsymmetric_diag_dominant,
)

__all__ = ["run_probe", "main"]


def run_probe(backend: str | None = None) -> Dict[str, object]:
    """Compile the fixed probe workload and return the cache counters.

    ``backend`` defaults to ``"c"`` when a C toolchain is available and
    ``"python"`` otherwise.  The driver uses a fresh in-memory artifact cache
    so the on-disk counters reflect disk state, not in-process memoization.
    """
    options = SympilerOptions()
    have_cc = c_compiler_available(options.c_compiler)
    if backend is None:
        backend = "c" if have_cc else "python"
    options = options.with_updates(backend=backend)
    reset_disk_cache_stats()
    sym = Sympiler(options, cache=ArtifactCache())

    spd = laplacian_2d(12, shift=0.1)
    fem = fem_stencil_2d(9, shift=0.25)
    kkt = saddle_point_indefinite(24, 10, seed=5)
    jac = unsymmetric_diag_dominant(48, seed=5)
    rhs = sparse_rhs(spd.n, nnz=3, seed=5)

    results = {}
    chol = sym.compile("cholesky", spd)
    L = chol.factorize(spd)
    results["cholesky_ok"] = bool(L.nnz > 0)
    tri = sym.compile("triangular-solve", L, rhs_pattern=np.nonzero(rhs)[0])
    results["trisolve_ok"] = bool(np.isfinite(tri.solve(L, rhs)).all())
    ldlt = sym.compile("ldlt", kkt)
    results["ldlt_ok"] = bool(np.isfinite(ldlt.factorize(kkt).d).all())
    chol_fem = sym.compile("cholesky", fem)
    results["cholesky_fem_ok"] = bool(chol_fem.factorize(fem).nnz > 0)
    lu = sym.compile("lu", jac)
    fac = lu.factorize(jac)
    results["lu_ok"] = bool(
        np.allclose(fac.reconstruct_dense(), jac.to_dense(), atol=1e-8)
    )
    # The incomplete kernels join the warm-cache contract: a second probe run
    # must reuse their generated code too (zero recompiles, zero py_writes).
    ic0 = sym.compile("ic0", spd)
    L_inc = ic0.factorize(spd)
    results["ic0_ok"] = bool(
        L_inc.nnz == ic0.factor_nnz and np.isfinite(L_inc.data).all()
    )
    ilu0 = sym.compile("ilu0", jac)
    inc = ilu0.factorize(jac)
    results["ilu0_ok"] = bool(
        np.isfinite(inc.L.data).all() and np.isfinite(inc.U.data).all()
    )
    # A wavefront-compiled kernel joins the warm-cache contract too: the
    # parallel mode is part of the options fingerprint, so this artifact
    # keys (and persists) separately from the serial cholesky above — a
    # warm probe run must reload *both* with zero recompiles.
    sym_wf = Sympiler(options.with_updates(parallel="wavefront"), cache=ArtifactCache())
    chol_wf = sym_wf.compile("cholesky", spd)
    L_wf = chol_wf.factorize(spd)
    results["cholesky_wavefront_ok"] = bool(
        L_wf.nnz > 0
        and np.array_equal(L_wf.data, L.data)
        and chol_wf.parallel_mode in ("wavefront", "serial-fallback", "none")
    )
    # The front end joins the warm-cache contract: repro.solve's mindeg-
    # ordered compiles (a pattern distinct from the natural-order compiles
    # above) must persist to disk and reload on the warm run, and its second
    # same-structure call must be served from the specialization cache.  The
    # front end compiles through the process-wide shared artifact cache,
    # which would make a second in-process probe run skip the disk — swap in
    # a fresh one for the probe's duration so the counters stay
    # deterministic, exactly like the fresh ArtifactCache drivers above.
    import repro.compiler.sympiler as _sympiler_module
    from repro.frontend.specialized import SpecializedSolver

    shared_before = _sympiler_module._SHARED_CACHE
    _sympiler_module._SHARED_CACHE = ArtifactCache()
    try:
        front = SpecializedSolver(options=options)
        x1 = front.solve(spd, np.cos(np.arange(spd.n, dtype=np.float64)))
        x2 = front.solve(spd, np.ones(spd.n, dtype=np.float64))
    finally:
        _sympiler_module._SHARED_CACHE = shared_before
    results["frontend_ok"] = bool(
        np.isfinite(x1).all()
        and np.isfinite(x2).all()
        and front.stats.specializations == 1
        and front.stats.structure_hits == 1
    )

    disk = disk_cache_stats()
    return {
        "backend": backend,
        "c_toolchain": bool(have_cc),
        "workload": results,
        "so_compiles": disk.compiles,
        "so_reuses": disk.reuses,
        "py_writes": disk.py_writes,
        "py_reuses": disk.py_reuses,
        "artifact_cache": sym.cache_stats.as_dict(),
    }


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler.cache_probe", description=__doc__
    )
    parser.add_argument(
        "--backend",
        choices=["python", "c"],
        default=None,
        help="force a backend (default: c when a toolchain exists, else python)",
    )
    parser.add_argument(
        "--assert-warm",
        action="store_true",
        help="exit nonzero unless every shared object was reused from disk "
        "(zero C recompiles)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="include the unified observability registry snapshot "
        "(repro.observe) in the report under an 'observe' key, so CI can "
        "assert cache counters and registry state from one document",
    )
    args = parser.parse_args(argv)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = run_probe(backend=args.backend)
    report["asserted_warm"] = bool(args.assert_warm)
    if args.json:
        from repro.observe import snapshot as observe_snapshot

        report["observe"] = observe_snapshot()
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")
    if not all(report["workload"].values()):
        sys.stderr.write("cache probe workload produced wrong results\n")
        return 2
    if args.assert_warm and report["c_toolchain"] and report["so_compiles"] != 0:
        sys.stderr.write(
            f"warm-cache assertion failed: {report['so_compiles']} shared "
            "object(s) were recompiled (expected 0)\n"
        )
        return 1
    if args.assert_warm and report["py_writes"] != 0:
        sys.stderr.write(
            f"warm-cache assertion failed: {report['py_writes']} generated "
            "python module(s) were regenerated (expected 0)\n"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
