"""Shared conflict-checked registration for the compiler's extension tables.

The compiler exposes several per-method extension points (kernel specs,
backend ABI specs, inspector-guided transforms).  They all follow one
contract, implemented here once: registering the *same object* again is a
no-op (safe re-imports), registering a *different* object under a taken key
raises ``ValueError`` — identity, not equality, so two equivalent-looking
specs with distinct callables still conflict loudly instead of silently
shadowing each other.
"""

from __future__ import annotations

from typing import Dict, Sequence, Type, TypeVar

__all__ = ["register_unique", "register_unique_many"]

T = TypeVar("T")


def register_unique_many(
    table: Dict[str, T],
    keys: Sequence[str],
    value: T,
    *,
    kind: str,
    error: Type[Exception] = ValueError,
) -> T:
    """Insert ``value`` under every key in ``keys`` with conflict checking.

    Every key is validated before any is written, so a conflicting key never
    leaves a partial registration behind.  ``kind`` names the extension point
    in the error message; ``error`` lets callers raise their own exception
    type.  Returns ``value``.
    """
    for key in keys:
        existing = table.get(key)
        if existing is not None and existing is not value:
            raise error(f"a {kind} is already registered for {key!r}")
    for key in keys:
        table[key] = value
    return value


def register_unique(table: Dict[str, T], key: str, value: T, *, kind: str) -> T:
    """Insert ``value`` under ``key`` in ``table`` with conflict checking."""
    return register_unique_many(table, (key,), value, kind=kind)
