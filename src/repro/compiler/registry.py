"""The kernel registry: one declarative spec per sparse kernel.

The paper's pipeline (symbolic inspection → inspector-guided transformation →
code generation) is the same for every numerical method; what differs per
kernel is *which* inspector runs, *which* lowering produces the initial AST,
*which* transformations apply and *what* artifact the user gets back.  A
:class:`KernelSpec` declares exactly those ingredients once, and the
:class:`~repro.compiler.sympiler.Sympiler` driver walks the spec generically —
adding a kernel means registering a spec, not editing the driver.

Registered kernels (the default registry):

==================  =============================  ==========================
name                inspector                      artifact
==================  =============================  ==========================
``triangular-solve``  :class:`TriangularSolveInspector`  :class:`SympiledTriangularSolve`
``cholesky``          :class:`CholeskyInspector`         :class:`SympiledCholesky`
``ldlt``              :class:`LDLTInspector`             :class:`SympiledLDLT`
``lu``                :class:`LUInspector`               :class:`SympiledLU`
``ic0``               :class:`IC0Inspector`              :class:`SympiledIC0`
``ilu0``              :class:`ILU0Inspector`             :class:`SympiledILU0`
==================  =============================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.compiler.artifacts import (
    SympiledCholesky,
    SympiledIC0,
    SympiledILU0,
    SympiledLDLT,
    SympiledLU,
    SympiledTriangularSolve,
)
from repro.compiler.codegen.runtime import pattern_fingerprint, rhs_fingerprint_extra
from repro.compiler.lowering import (
    lower_cholesky,
    lower_ic0,
    lower_ilu0,
    lower_ldlt,
    lower_lu,
    lower_triangular_solve,
)
from repro.compiler.options import SympilerOptions
from repro.compiler.registration import register_unique_many
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    CholeskyInspector,
    IC0Inspector,
    ILU0Inspector,
    LDLTInspector,
    LUInspector,
    TriangularSolveInspector,
    normalize_rhs_pattern,
)

__all__ = [
    "KernelSpec",
    "KernelRegistry",
    "KernelRegistryError",
    "DuplicateKernelError",
    "UnknownKernelError",
    "default_registry",
    "register_kernel",
    "kernel_spec",
    "registered_kernels",
]


class KernelRegistryError(ValueError):
    """Base class of kernel-registry errors."""


class DuplicateKernelError(KernelRegistryError):
    """Raised when a spec is registered under an already-taken name/alias."""


class UnknownKernelError(KernelRegistryError):
    """Raised when no spec is registered under the requested name."""


# --------------------------------------------------------------------------- #
# Default spec hooks
# --------------------------------------------------------------------------- #
def _pattern_only_fingerprint(matrix: CSCMatrix, kernel_args: Dict) -> str:
    """Fingerprint of the matrix pattern alone (factorization kernels)."""
    return pattern_fingerprint(matrix.indptr, matrix.indices)


def _no_normalize_args(matrix: CSCMatrix, kernel_args: Dict) -> Dict:
    return kernel_args


def _trisolve_normalize_args(matrix: CSCMatrix, kernel_args: Dict) -> Dict:
    """Materialize, de-duplicate, sort and range-check the RHS pattern once.

    Delegates to :func:`normalize_rhs_pattern` (shared with the inspector, so
    fingerprint and inspection can never disagree).  The result feeds both
    the cache fingerprint and the inspector, so a one-shot iterable is
    consumed exactly once and invalid indices fail *before* the cache is
    consulted (error behaviour must not depend on cache state).
    """
    rhs = normalize_rhs_pattern(matrix.n, kernel_args.get("rhs_pattern"))
    if rhs is not None:
        kernel_args = dict(kernel_args, rhs_pattern=rhs)
    return kernel_args


def _trisolve_fingerprint(matrix: CSCMatrix, kernel_args: Dict) -> str:
    """Fingerprint of the ``L`` pattern plus the (normalized) RHS pattern.

    ``kernel_args`` has been through :func:`_trisolve_normalize_args`:
    ``rhs_pattern`` is ``None`` (dense) or a sorted unique in-range index
    array; a dense RHS — explicit or implicit — is a constant token.
    """
    extra = rhs_fingerprint_extra(matrix.n, kernel_args.get("rhs_pattern"))
    return pattern_fingerprint(matrix.indptr, matrix.indices, extra=extra)


def _no_inspect_kwargs(options: SympilerOptions, kernel_args: Dict) -> Dict:
    return {}


def _trisolve_inspect_kwargs(options: SympilerOptions, kernel_args: Dict) -> Dict:
    return {"rhs_pattern": kernel_args.get("rhs_pattern")}


def _factorization_inspect_kwargs(options: SympilerOptions, kernel_args: Dict) -> Dict:
    return {"max_supernode_width": options.max_supernode_width}


def _no_context_extra(inspection) -> Dict:
    return {}


def _trisolve_context_extra(inspection) -> Dict:
    return {"rhs_pattern": inspection.rhs_pattern}


# --------------------------------------------------------------------------- #
# KernelSpec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one compilable kernel.

    Attributes
    ----------
    name:
        Canonical kernel name; also the ``method`` tag carried by the lowered
        AST and the compilation context.
    lower:
        Zero-argument lowering function producing the initial annotated AST.
    inspector_cls:
        The :class:`~repro.symbolic.inspector.SymbolicInspector` subclass run
        at compile time.
    artifact_cls:
        The compiled-artifact class the driver instantiates.
    runtime_signature:
        Names of the numeric arrays the generated entry point consumes, in
        order (documentation + sanity checks; the backends own the ABI).
    transforms:
        The inspector-guided transformations applicable to this kernel; the
        pipeline only runs passes that are both enabled in the options and
        listed here.
    requires_vi_prune:
        Whether the kernel cannot be generated without VI-Prune (the numeric
        left-looking factorizations need the predicted factor pattern — the
        paper makes the same observation in the caption of Figure 7).
    kernel_args:
        Names of per-compile keyword arguments accepted by ``compile`` for
        this kernel (e.g. ``rhs_pattern``); anything else is a ``TypeError``.
    aliases:
        Alternative lookup names.
    normalize_args / fingerprint / inspect_kwargs / context_extra:
        Hooks canonicalizing the per-compile arguments (run once, before
        anything consumes them) and mapping them to the cache fingerprint,
        the inspector keyword arguments and extra compilation-context fields.
    description:
        One-line human-readable summary (shown in docs and error messages).
    """

    name: str
    lower: Callable[[], object]
    inspector_cls: type
    artifact_cls: type
    runtime_signature: Tuple[str, ...]
    transforms: Tuple[str, ...] = ("vs-block", "vi-prune")
    requires_vi_prune: bool = False
    kernel_args: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()
    normalize_args: Callable[[CSCMatrix, Dict], Dict] = _no_normalize_args
    fingerprint: Callable[[CSCMatrix, Dict], str] = _pattern_only_fingerprint
    inspect_kwargs: Callable[[SympilerOptions, Dict], Dict] = _no_inspect_kwargs
    context_extra: Callable[[object], Dict] = _no_context_extra
    description: str = ""

    def validate_args(self, kernel_args: Dict) -> None:
        """Reject keyword arguments this kernel does not accept."""
        unknown = sorted(set(kernel_args) - set(self.kernel_args))
        if unknown:
            raise TypeError(
                f"kernel {self.name!r} does not accept argument(s) {unknown}; "
                f"accepted: {sorted(self.kernel_args)}"
            )


# --------------------------------------------------------------------------- #
# KernelRegistry
# --------------------------------------------------------------------------- #
class KernelRegistry:
    """Name → :class:`KernelSpec` mapping with alias resolution."""

    def __init__(self) -> None:
        self._specs: Dict[str, KernelSpec] = {}
        self._lookup: Dict[str, KernelSpec] = {}

    def register(self, spec: KernelSpec) -> KernelSpec:
        """Register ``spec`` under its name and aliases.

        Raises :class:`DuplicateKernelError` when the name or any alias is
        already taken (by a different spec object); every key is validated
        before any is written, so a conflict leaves no partial registration.
        """
        register_unique_many(
            self._lookup,
            (spec.name, *spec.aliases),
            spec,
            kind="kernel",
            error=DuplicateKernelError,
        )
        self._specs[spec.name] = spec
        return spec

    def resolve(self, name: str) -> KernelSpec:
        """Return the spec registered under ``name`` (or an alias of it)."""
        spec = self._lookup.get(name)
        if spec is None:
            raise UnknownKernelError(
                f"no kernel registered under {name!r}; "
                f"available: {sorted(self._specs)}"
            )
        return spec

    def names(self) -> Tuple[str, ...]:
        """Canonical names of every registered kernel."""
        return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._lookup

    def __iter__(self) -> Iterator[KernelSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


_DEFAULT_REGISTRY = KernelRegistry()


def default_registry() -> KernelRegistry:
    """The process-wide registry holding the built-in kernels."""
    return _DEFAULT_REGISTRY


def register_kernel(spec: KernelSpec, *, registry: Optional[KernelRegistry] = None) -> KernelSpec:
    """Register ``spec`` in ``registry`` (the default registry when omitted)."""
    return (registry or _DEFAULT_REGISTRY).register(spec)


def kernel_spec(name: str) -> KernelSpec:
    """Resolve ``name`` in the default registry."""
    return _DEFAULT_REGISTRY.resolve(name)


def registered_kernels() -> Tuple[str, ...]:
    """Canonical names of the kernels in the default registry."""
    return _DEFAULT_REGISTRY.names()


# --------------------------------------------------------------------------- #
# Built-in kernels
# --------------------------------------------------------------------------- #
register_kernel(
    KernelSpec(
        name="triangular-solve",
        lower=lower_triangular_solve,
        inspector_cls=TriangularSolveInspector,
        artifact_cls=SympiledTriangularSolve,
        runtime_signature=("Lp", "Li", "Lx", "b"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=False,
        kernel_args=("rhs_pattern",),
        aliases=("trisolve", "triangular"),
        normalize_args=_trisolve_normalize_args,
        fingerprint=_trisolve_fingerprint,
        inspect_kwargs=_trisolve_inspect_kwargs,
        context_extra=_trisolve_context_extra,
        description="sparse lower-triangular solve L x = b (Fig. 1)",
    )
)

register_kernel(
    KernelSpec(
        name="cholesky",
        lower=lower_cholesky,
        inspector_cls=CholeskyInspector,
        artifact_cls=SympiledCholesky,
        runtime_signature=("Ap", "Ai", "Ax"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=True,
        inspect_kwargs=_factorization_inspect_kwargs,
        description="left-looking sparse Cholesky A = L L^T (Fig. 4)",
    )
)

register_kernel(
    KernelSpec(
        name="ldlt",
        lower=lower_ldlt,
        inspector_cls=LDLTInspector,
        artifact_cls=SympiledLDLT,
        runtime_signature=("Ap", "Ai", "Ax"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=True,
        aliases=("ldl",),
        inspect_kwargs=_factorization_inspect_kwargs,
        description="left-looking sparse LDL^T for symmetric indefinite A",
    )
)

register_kernel(
    KernelSpec(
        name="lu",
        lower=lower_lu,
        inspector_cls=LUInspector,
        artifact_cls=SympiledLU,
        runtime_signature=("Ap", "Ai", "Ax"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=True,
        aliases=("gp-lu",),
        inspect_kwargs=_factorization_inspect_kwargs,
        description=(
            "left-looking sparse LU A = L U (partial-pivoting-free, for "
            "diagonally dominant unsymmetric A)"
        ),
    )
)

register_kernel(
    KernelSpec(
        name="ic0",
        lower=lower_ic0,
        inspector_cls=IC0Inspector,
        artifact_cls=SympiledIC0,
        runtime_signature=("Ap", "Ai", "Ax"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=True,
        aliases=("incomplete-cholesky",),
        inspect_kwargs=_factorization_inspect_kwargs,
        description=(
            "incomplete Cholesky IC(0): A ~= L L^T on the pattern of "
            "tril(A) (no fill; preconditioner for SPD iterative solves)"
        ),
    )
)

register_kernel(
    KernelSpec(
        name="ilu0",
        lower=lower_ilu0,
        inspector_cls=ILU0Inspector,
        artifact_cls=SympiledILU0,
        runtime_signature=("Ap", "Ai", "Ax"),
        transforms=("vs-block", "vi-prune"),
        requires_vi_prune=True,
        aliases=("incomplete-lu",),
        inspect_kwargs=_factorization_inspect_kwargs,
        description=(
            "incomplete LU ILU(0): A ~= L U on the pattern of A (no fill, "
            "no pivoting; preconditioner for unsymmetric iterative solves)"
        ),
    )
)
