"""The Sympiler core: symbolic-enabled code generation.

This package implements the paper's primary contribution — a domain-specific
code generator that

1. runs a *symbolic inspector* over the input sparsity pattern at compile
   time (:mod:`repro.symbolic`),
2. lowers the requested numerical method (triangular solve or Cholesky) into
   a domain-specific AST annotated with where inspector-guided
   transformations may apply (:mod:`repro.compiler.lowering`),
3. applies the inspector-guided transformations **VI-Prune** and **VS-Block**
   followed by enabled low-level transformations — peeling, unrolling, loop
   distribution, vectorization (:mod:`repro.compiler.transforms`), and
4. emits matrix-specific source code through one of two backends — a
   specialized-Python/NumPy backend (always available) or a C backend
   compiled with the system compiler and loaded through ``ctypes``
   (:mod:`repro.compiler.codegen`).

The user-facing entry point is :class:`repro.compiler.sympiler.Sympiler`, a
generic driver over the kernel registry (:mod:`repro.compiler.registry`):
every kernel — triangular solve, Cholesky, LDLᵀ, LU, IC(0), ILU(0) — is
declared once as a
:class:`~repro.compiler.registry.KernelSpec` and compiled through the same
``compile(kernel_name, pattern, options)`` path, with compiled artifacts
cached by pattern fingerprint (:mod:`repro.compiler.cache`).
"""

from repro.compiler.artifacts import (
    CompileTimings,
    LDLTFactors,
    LUFactors,
    PatternMismatchError,
    SympiledCholesky,
    SympiledIC0,
    SympiledILU0,
    SympiledLDLT,
    SympiledLU,
    SympiledTriangularSolve,
)
from repro.compiler.cache import ArtifactCache, CacheStats
from repro.compiler.options import SympilerOptions
from repro.compiler.registry import (
    DuplicateKernelError,
    KernelRegistry,
    KernelSpec,
    UnknownKernelError,
    default_registry,
    kernel_spec,
    register_kernel,
    registered_kernels,
)
from repro.compiler.sympiler import Sympiler

__all__ = [
    "Sympiler",
    "SympilerOptions",
    "SympiledTriangularSolve",
    "SympiledCholesky",
    "SympiledLDLT",
    "SympiledLU",
    "SympiledIC0",
    "SympiledILU0",
    "LDLTFactors",
    "LUFactors",
    "PatternMismatchError",
    "CompileTimings",
    "ArtifactCache",
    "CacheStats",
    "KernelSpec",
    "KernelRegistry",
    "DuplicateKernelError",
    "UnknownKernelError",
    "default_registry",
    "register_kernel",
    "kernel_spec",
    "registered_kernels",
]
