"""Domain-specific AST for sparse kernels.

The code implementing a numerical solver is represented in a domain-specific
AST (§2.1 of the paper).  Lowering produces *generic* loop nests annotated
with the places where inspector-guided transformations may apply (the
analogue of Figure 2a); the VI-Prune and VS-Block passes then replace those
annotated loops with *domain statements* that carry the inspection sets they
consume (the analogue of Figures 2b/2c), and the low-level passes refine the
annotations (peel / unroll / vectorize / distribute).  Code-generation
backends walk the final AST and emit matrix-specialized source.

Two node families therefore coexist:

* generic expression/statement nodes (:class:`Var`, :class:`ArrayRef`,
  :class:`Assign`, :class:`ForRange`, ...) — enough to express the kernels of
  Figure 1 and to be pretty-printed for inspection, and
* domain statements (:class:`PeeledColumnSolve`,
  :class:`SupernodeTriangularBlock`, :class:`SimplicialCholeskyLoop`,
  :class:`SupernodalCholeskyLoop`, :class:`PrunedColumnSolveLoop`) introduced
  by the transformations, each carrying the compile-time constant arrays that
  the backends embed into generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Node",
    "Expr",
    "Var",
    "IntConst",
    "FloatConst",
    "ArrayRef",
    "BinOp",
    "Call",
    "Stmt",
    "Assign",
    "ForRange",
    "If",
    "Block",
    "Comment",
    "KernelFunction",
    "PrunedColumnSolveLoop",
    "PeeledColumnSolve",
    "SupernodeTriangularBlock",
    "SimplicialCholeskyLoop",
    "SupernodalCholeskyLoop",
    "IncompleteFactorLoop",
    "walk",
    "pretty",
]


# --------------------------------------------------------------------------- #
# Base classes
# --------------------------------------------------------------------------- #
class Node:
    """Base class of every AST node."""

    def children(self) -> Iterable["Node"]:
        """Direct child nodes (used by :func:`walk`)."""
        return ()


class Expr(Node):
    """Base class of expressions."""


class Stmt(Node):
    """Base class of statements.  Every statement carries an annotation dict.

    Annotations are the communication channel between phases: lowering marks
    loops with ``role``/``prunable``/``blockable``; inspector-guided passes
    add hints such as ``peel``/``vectorize``/``unroll`` that the low-level
    passes and backends honour.
    """

    def __init__(self, annotations: Optional[Dict[str, object]] = None) -> None:
        self.annotations: Dict[str, object] = dict(annotations or {})

    def annotate(self, **kwargs) -> "Stmt":
        """Add annotations in place and return ``self`` (builder style)."""
        self.annotations.update(kwargs)
        return self


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable or array name."""

    name: str


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class FloatConst(Expr):
    """A floating-point literal."""

    value: float


@dataclass(frozen=True)
class ArrayRef(Expr):
    """``array[index]`` with an arbitrary index expression."""

    array: str
    index: Expr

    def children(self) -> Iterable[Node]:
        return (self.index,)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterable[Node]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Call(Expr):
    """A call to a named (runtime or intrinsic) function."""

    func: str
    args: Tuple[Expr, ...]

    def children(self) -> Iterable[Node]:
        return self.args


# --------------------------------------------------------------------------- #
# Generic statements
# --------------------------------------------------------------------------- #
class Assign(Stmt):
    """``target op value`` where ``op`` is one of ``=, +=, -=, *=, /=``."""

    VALID_OPS = ("=", "+=", "-=", "*=", "/=")

    def __init__(self, target: Expr, value: Expr, op: str = "=", **annotations) -> None:
        super().__init__(annotations)
        if op not in self.VALID_OPS:
            raise ValueError(f"invalid assignment operator {op!r}")
        self.target = target
        self.value = value
        self.op = op

    def children(self) -> Iterable[Node]:
        return (self.target, self.value)


class Block(Stmt):
    """A sequence of statements."""

    def __init__(self, statements: Sequence[Stmt] = (), **annotations) -> None:
        super().__init__(annotations)
        self.statements: List[Stmt] = list(statements)

    def append(self, stmt: Stmt) -> None:
        """Append a statement."""
        self.statements.append(stmt)

    def children(self) -> Iterable[Node]:
        return tuple(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


class ForRange(Stmt):
    """``for index in range(start, end): body``."""

    def __init__(self, index: str, start: Expr, end: Expr, body: Block, **annotations) -> None:
        super().__init__(annotations)
        self.index = index
        self.start = start
        self.end = end
        self.body = body

    def children(self) -> Iterable[Node]:
        return (self.start, self.end, self.body)


class If(Stmt):
    """``if condition: body`` (used by the library-style guard of Fig. 1c)."""

    def __init__(self, condition: Expr, body: Block, **annotations) -> None:
        super().__init__(annotations)
        self.condition = condition
        self.body = body

    def children(self) -> Iterable[Node]:
        return (self.condition, self.body)


class Comment(Stmt):
    """A free-form comment emitted verbatim by the backends."""

    def __init__(self, text: str, **annotations) -> None:
        super().__init__(annotations)
        self.text = text


# --------------------------------------------------------------------------- #
# Domain statements produced by the inspector-guided transformations
# --------------------------------------------------------------------------- #
class PrunedColumnSolveLoop(Stmt):
    """A triangular-solve column loop restricted to a pruned iteration space.

    Produced by VI-Prune from the annotated column loop: iterates over the
    embedded ``columns`` array (the reach-set or a contiguous run of it) in
    the stored order, performing the standard column solve for each entry.

    Attributes
    ----------
    columns:
        Column indices to visit, in a valid topological order.
    constant_name:
        Name under which ``columns`` is embedded in the generated code.
    vectorize:
        Whether the inner update is emitted as a vector operation.
    """

    def __init__(
        self,
        columns: np.ndarray,
        constant_name: str,
        *,
        vectorize: bool = True,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        self.columns = np.asarray(columns, dtype=np.int64)
        self.constant_name = constant_name
        self.vectorize = bool(vectorize)


class PeeledColumnSolve(Stmt):
    """One peeled triangular-solve iteration, fully specialized.

    Produced by the loop-peeling low-level transformation for reach-set
    iterations that deserve straight-line code (Figure 1e): the column index,
    its diagonal position and the off-diagonal slice bounds are literals in
    the generated code; when ``unroll`` is set the off-diagonal update is also
    emitted entry-by-entry.
    """

    def __init__(
        self,
        column: int,
        diag_pos: int,
        offdiag_start: int,
        offdiag_end: int,
        rows: np.ndarray,
        *,
        unroll: bool = False,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        self.column = int(column)
        self.diag_pos = int(diag_pos)
        self.offdiag_start = int(offdiag_start)
        self.offdiag_end = int(offdiag_end)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.unroll = bool(unroll)

    @property
    def nnz(self) -> int:
        """Stored entries of the peeled column (diagonal included)."""
        return self.offdiag_end - self.offdiag_start + 1


class SupernodeTriangularBlock(Stmt):
    """One VS-Block'd supernode of a triangular solve.

    The diagonal block is solved densely (unrolled when ``unroll`` is set) and
    the off-diagonal panel is applied as a dense matrix–vector product.  All
    positions below are *compile-time constants* referring into ``Lx``/``Li``.

    Attributes
    ----------
    sn_id: supernode index in the partition.
    c0, width: first column and number of columns.
    n_rows: rows of the supernode (width + off-diagonal rows).
    col_starts: position of each column's diagonal entry in ``Lx``.
    rows_start, rows_end: slice of ``Li`` holding the supernode's row pattern
        (the pattern of its first column).
    unroll: emit the diagonal solve unrolled.
    use_blas: call the library dense kernels instead of specialized ones.
    """

    def __init__(
        self,
        sn_id: int,
        c0: int,
        width: int,
        n_rows: int,
        col_starts: np.ndarray,
        rows_start: int,
        rows_end: int,
        *,
        unroll: bool = False,
        use_blas: bool = False,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        self.sn_id = int(sn_id)
        self.c0 = int(c0)
        self.width = int(width)
        self.n_rows = int(n_rows)
        self.col_starts = np.asarray(col_starts, dtype=np.int64)
        self.rows_start = int(rows_start)
        self.rows_end = int(rows_end)
        self.unroll = bool(unroll)
        self.use_blas = bool(use_blas)

    @property
    def n_offdiag_rows(self) -> int:
        """Rows strictly below the supernode's diagonal block."""
        return self.n_rows - self.width


class SimplicialCholeskyLoop(Stmt):
    """The VI-Pruned (simplicial) left-looking factorization column loop.

    Shared by the left-looking factorization kernels, distinguished by
    ``factor_kind``: ``"llt"`` emits the square-root column factorization,
    ``"ldlt"`` the unit-diagonal/D-scaled one and ``"lu"`` the unsymmetric
    column split into ``U(:, j)`` and the pivot-scaled ``L(:, j)``.  All
    symbolic information is embedded as constant arrays:

    * ``l_indptr`` / ``l_indices`` — the predicted factor pattern,
    * ``prune_ptr`` / ``update_pos`` / ``update_end`` — for every column
      ``j``, the slice ``prune_ptr[j]:prune_ptr[j+1]`` of ``update_pos`` and
      ``update_end`` lists, for each column ``k`` in the prune-set of ``j``,
      the position of the first applied entry inside column ``k`` of ``L``
      (``L[j, k]`` for the symmetric kernels, the first off-diagonal for LU)
      and the end of column ``k`` (so the numeric loop performs no pattern
      look-ups at all),
    * ``update_col`` — the prune-set column ``k`` of every update slot (the
      LDLᵀ update must scale by ``D[k]``; the LU update reads its multiplier
      ``U[k, j]`` from the work vector at ``k``),
    * ``a_diag_pos`` / ``a_col_end`` — where the gathered part of each column
      of ``A`` starts/ends in its CSC arrays (the lower part for the
      symmetric kernels, the full column for LU),
    * ``u_indptr`` / ``u_indices`` — the predicted ``U`` pattern (rows
      ascending, diagonal last; LU only).
    """

    def __init__(
        self,
        n: int,
        l_indptr: np.ndarray,
        l_indices: np.ndarray,
        prune_ptr: np.ndarray,
        update_pos: np.ndarray,
        update_end: np.ndarray,
        a_diag_pos: np.ndarray,
        a_col_end: np.ndarray,
        *,
        update_col: Optional[np.ndarray] = None,
        u_indptr: Optional[np.ndarray] = None,
        u_indices: Optional[np.ndarray] = None,
        factor_kind: str = "llt",
        vectorize: bool = True,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        if factor_kind not in ("llt", "ldlt", "lu"):
            raise ValueError(f"unknown factor kind {factor_kind!r}")
        self.n = int(n)
        self.l_indptr = np.asarray(l_indptr, dtype=np.int64)
        self.l_indices = np.asarray(l_indices, dtype=np.int64)
        self.prune_ptr = np.asarray(prune_ptr, dtype=np.int64)
        self.update_pos = np.asarray(update_pos, dtype=np.int64)
        self.update_end = np.asarray(update_end, dtype=np.int64)
        self.a_diag_pos = np.asarray(a_diag_pos, dtype=np.int64)
        self.a_col_end = np.asarray(a_col_end, dtype=np.int64)
        self.update_col = (
            None if update_col is None else np.asarray(update_col, dtype=np.int64)
        )
        self.u_indptr = None if u_indptr is None else np.asarray(u_indptr, dtype=np.int64)
        self.u_indices = (
            None if u_indices is None else np.asarray(u_indices, dtype=np.int64)
        )
        self.factor_kind = factor_kind
        self.vectorize = bool(vectorize)
        if factor_kind == "ldlt" and self.update_col is None:
            raise ValueError("the LDL^T simplicial loop requires update_col")
        if factor_kind == "lu" and (
            self.update_col is None or self.u_indptr is None or self.u_indices is None
        ):
            raise ValueError("the LU simplicial loop requires update_col and the U pattern")

    @property
    def factor_nnz(self) -> int:
        """Nonzeros of the factor(s) being produced (both factors for LU)."""
        nnz = int(self.l_indptr[-1])
        if self.u_indptr is not None:
            nnz += int(self.u_indptr[-1])
        return nnz


class IncompleteFactorLoop(Stmt):
    """The VI-Pruned no-fill incomplete factorization loop (IC(0) / ILU(0)).

    The defining property of the incomplete kernels is that the factor
    pattern *is* the ``A`` pattern — updates landing outside it are dropped.
    VI-Prune therefore prunes each update's scatter to the intersection of
    the source and destination column patterns at compile time, resolving
    every position into the factor value arrays, so the numeric loop performs
    neither pattern look-ups nor dropped work at run time (and needs no dense
    work vector at all — it runs in place on the gathered factor values):

    * ``l_indptr`` / ``l_indices`` — the ``L`` pattern (``tril(A)`` for IC(0);
      strict lower triangle plus explicit unit diagonal for ILU(0)),
    * ``u_indptr`` / ``u_indices`` — the ``U`` pattern (``triu(A)``, diagonal
      last; ILU(0) only),
    * ``a_lower_pos`` — positions in ``Ax`` gathered into ``Lx`` (IC(0): all
      of ``tril(A)``; ILU(0): the strict lower triangle, landing at
      ``l_gather_dst``),
    * ``a_upper_pos`` — positions in ``Ax`` gathered into ``Ux`` (ILU(0)
      only),
    * ``prune_ptr`` — update slice ``prune_ptr[j]:prune_ptr[j+1]`` per
      column, one update per source column ``k`` in ascending order,
    * ``mult_pos`` — per update, the position of the multiplier (``L[j, k]``
      inside ``Lx`` for IC(0), ``U[k, j]`` inside ``Ux`` for ILU(0)),
    * ``l_scat_ptr`` / ``l_scat_src`` / ``l_scat_dst`` — per update, the
      pattern-intersected scatter into ``Lx`` (source positions inside column
      ``k``, destination positions inside column ``j``),
    * ``u_scat_ptr`` / ``u_scat_src`` / ``u_scat_dst`` — the scatter into
      ``Ux`` (sources in ``Lx``, destinations in ``Ux``; ILU(0) only).
    """

    def __init__(
        self,
        n: int,
        l_indptr: np.ndarray,
        l_indices: np.ndarray,
        a_lower_pos: np.ndarray,
        prune_ptr: np.ndarray,
        mult_pos: np.ndarray,
        l_scat_ptr: np.ndarray,
        l_scat_src: np.ndarray,
        l_scat_dst: np.ndarray,
        *,
        u_indptr: Optional[np.ndarray] = None,
        u_indices: Optional[np.ndarray] = None,
        a_upper_pos: Optional[np.ndarray] = None,
        l_gather_dst: Optional[np.ndarray] = None,
        u_scat_ptr: Optional[np.ndarray] = None,
        u_scat_src: Optional[np.ndarray] = None,
        u_scat_dst: Optional[np.ndarray] = None,
        factor_kind: str = "ic0",
        vectorize: bool = True,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        if factor_kind not in ("ic0", "ilu0"):
            raise ValueError(f"unknown factor kind {factor_kind!r}")
        self.n = int(n)
        self.l_indptr = np.asarray(l_indptr, dtype=np.int64)
        self.l_indices = np.asarray(l_indices, dtype=np.int64)
        self.a_lower_pos = np.asarray(a_lower_pos, dtype=np.int64)
        self.prune_ptr = np.asarray(prune_ptr, dtype=np.int64)
        self.mult_pos = np.asarray(mult_pos, dtype=np.int64)
        self.l_scat_ptr = np.asarray(l_scat_ptr, dtype=np.int64)
        self.l_scat_src = np.asarray(l_scat_src, dtype=np.int64)
        self.l_scat_dst = np.asarray(l_scat_dst, dtype=np.int64)
        as_i64 = lambda v: None if v is None else np.asarray(v, dtype=np.int64)  # noqa: E731
        self.u_indptr = as_i64(u_indptr)
        self.u_indices = as_i64(u_indices)
        self.a_upper_pos = as_i64(a_upper_pos)
        self.l_gather_dst = as_i64(l_gather_dst)
        self.u_scat_ptr = as_i64(u_scat_ptr)
        self.u_scat_src = as_i64(u_scat_src)
        self.u_scat_dst = as_i64(u_scat_dst)
        self.factor_kind = factor_kind
        self.vectorize = bool(vectorize)
        if factor_kind == "ilu0" and any(
            v is None
            for v in (
                self.u_indptr,
                self.u_indices,
                self.a_upper_pos,
                self.l_gather_dst,
                self.u_scat_ptr,
                self.u_scat_src,
                self.u_scat_dst,
            )
        ):
            raise ValueError(
                "the ILU(0) loop requires the U pattern, gather and scatter arrays"
            )

    @property
    def factor_nnz(self) -> int:
        """Nonzeros of the factor(s) being produced (both factors for ILU(0))."""
        nnz = int(self.l_indptr[-1])
        if self.u_indptr is not None:
            nnz += int(self.u_indptr[-1])
        return nnz

    @property
    def total_updates(self) -> int:
        """Number of pattern-restricted column updates."""
        return int(self.prune_ptr[-1])


class SupernodalCholeskyLoop(Stmt):
    """The VS-Block'd supernode factorization loop (LLᵀ or LDLᵀ).

    In addition to the factor pattern and the ``A``-column positions (see
    :class:`SimplicialCholeskyLoop`), the descriptor embeds:

    * ``sup_start`` / ``sup_end`` — column range of every supernode,
    * ``desc_ptr`` / ``desc_pos`` / ``desc_end`` / ``desc_mult_end`` — for
      every supernode, the positions inside ``Lx``/``Li`` of every descendant
      column's update slice and of the sub-slice providing the multipliers,
    * ``desc_col`` — the descendant column index of every descriptor slot
      (the LDLᵀ panel update must scale its multipliers by ``D[k]``),
    * ``distribute_single_columns`` — whether width-1 supernodes are peeled
      into a separate streamlined (simplicial) loop (loop distribution),
    * ``use_small_kernels`` — whether diagonal blocks up to the small-kernel
      limit use the specialized unrolled kernels instead of the library ones
      (LLᵀ only; the LDLᵀ diagonal blocks always use the dense LDLᵀ kernel).
    """

    def __init__(
        self,
        n: int,
        l_indptr: np.ndarray,
        l_indices: np.ndarray,
        a_diag_pos: np.ndarray,
        a_col_end: np.ndarray,
        sup_start: np.ndarray,
        sup_end: np.ndarray,
        desc_ptr: np.ndarray,
        desc_pos: np.ndarray,
        desc_end: np.ndarray,
        desc_mult_end: np.ndarray,
        *,
        desc_col: Optional[np.ndarray] = None,
        factor_kind: str = "llt",
        distribute_single_columns: bool = True,
        use_small_kernels: bool = True,
        small_kernel_max_width: int = 3,
        vectorize: bool = True,
        **annotations,
    ) -> None:
        super().__init__(annotations)
        if factor_kind not in ("llt", "ldlt"):
            raise ValueError(f"unknown factor kind {factor_kind!r}")
        self.n = int(n)
        self.l_indptr = np.asarray(l_indptr, dtype=np.int64)
        self.l_indices = np.asarray(l_indices, dtype=np.int64)
        self.a_diag_pos = np.asarray(a_diag_pos, dtype=np.int64)
        self.a_col_end = np.asarray(a_col_end, dtype=np.int64)
        self.sup_start = np.asarray(sup_start, dtype=np.int64)
        self.sup_end = np.asarray(sup_end, dtype=np.int64)
        self.desc_ptr = np.asarray(desc_ptr, dtype=np.int64)
        self.desc_pos = np.asarray(desc_pos, dtype=np.int64)
        self.desc_end = np.asarray(desc_end, dtype=np.int64)
        self.desc_mult_end = np.asarray(desc_mult_end, dtype=np.int64)
        self.desc_col = None if desc_col is None else np.asarray(desc_col, dtype=np.int64)
        self.factor_kind = factor_kind
        if factor_kind == "ldlt" and self.desc_col is None:
            raise ValueError("the LDL^T supernodal loop requires desc_col")
        self.distribute_single_columns = bool(distribute_single_columns)
        self.use_small_kernels = bool(use_small_kernels)
        self.small_kernel_max_width = int(small_kernel_max_width)
        self.vectorize = bool(vectorize)

    @property
    def n_supernodes(self) -> int:
        """Number of supernodes in the descriptor."""
        return int(self.sup_start.size)

    @property
    def factor_nnz(self) -> int:
        """Nonzeros of the factor being produced."""
        return int(self.l_indptr[-1])


# --------------------------------------------------------------------------- #
# Kernel function
# --------------------------------------------------------------------------- #
class KernelFunction(Node):
    """A complete kernel: name, parameters, body and embedded constants.

    ``constants`` maps names to NumPy arrays that the backends embed into the
    generated code (static arrays in C, injected module globals in Python);
    they are the materialized inspection sets.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        body: Block,
        *,
        method: str,
        constants: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.params = list(params)
        self.body = body
        self.method = method
        self.constants: Dict[str, np.ndarray] = dict(constants or {})
        self.meta: Dict[str, object] = dict(meta or {})

    def add_constant(self, name: str, value: np.ndarray) -> str:
        """Register an embedded constant array and return its name."""
        if name in self.constants:
            raise ValueError(f"constant {name!r} already registered")
        self.constants[name] = np.asarray(value)
        return name

    def children(self) -> Iterable[Node]:
        return (self.body,)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"KernelFunction(name={self.name!r}, method={self.method!r}, "
            f"params={self.params}, constants={sorted(self.constants)})"
        )


# --------------------------------------------------------------------------- #
# Traversal and pretty-printing
# --------------------------------------------------------------------------- #
def walk(node: Node) -> Iterable[Node]:
    """Yield ``node`` and every descendant in depth-first pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def _expr_str(e: Expr) -> str:
    if isinstance(e, Var):
        return e.name
    if isinstance(e, IntConst):
        return str(e.value)
    if isinstance(e, FloatConst):
        return repr(e.value)
    if isinstance(e, ArrayRef):
        return f"{e.array}[{_expr_str(e.index)}]"
    if isinstance(e, BinOp):
        return f"({_expr_str(e.left)} {e.op} {_expr_str(e.right)})"
    if isinstance(e, Call):
        args = ", ".join(_expr_str(a) for a in e.args)
        return f"{e.func}({args})"
    raise TypeError(f"unknown expression node {type(e).__name__}")


def _annot_str(stmt: Stmt) -> str:
    if not stmt.annotations:
        return ""
    parts = ", ".join(f"{k}={v!r}" for k, v in sorted(stmt.annotations.items()))
    return f"  # @{parts}"


def _stmt_lines(stmt: Stmt, indent: int) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, Comment):
        return [f"{pad}# {stmt.text}"]
    if isinstance(stmt, Assign):
        return [f"{pad}{_expr_str(stmt.target)} {stmt.op} {_expr_str(stmt.value)}{_annot_str(stmt)}"]
    if isinstance(stmt, Block):
        lines: List[str] = []
        for s in stmt.statements:
            lines.extend(_stmt_lines(s, indent))
        return lines
    if isinstance(stmt, ForRange):
        header = (
            f"{pad}for {stmt.index} in {_expr_str(stmt.start)} .. {_expr_str(stmt.end)}:"
            f"{_annot_str(stmt)}"
        )
        return [header] + _stmt_lines(stmt.body, indent + 1)
    if isinstance(stmt, If):
        header = f"{pad}if {_expr_str(stmt.condition)}:{_annot_str(stmt)}"
        return [header] + _stmt_lines(stmt.body, indent + 1)
    if isinstance(stmt, PrunedColumnSolveLoop):
        return [
            f"{pad}pruned-column-solve over {stmt.constant_name} "
            f"({stmt.columns.size} columns, vectorize={stmt.vectorize}){_annot_str(stmt)}"
        ]
    if isinstance(stmt, PeeledColumnSolve):
        return [
            f"{pad}peeled-column-solve col={stmt.column} nnz={stmt.nnz} "
            f"unroll={stmt.unroll}{_annot_str(stmt)}"
        ]
    if isinstance(stmt, SupernodeTriangularBlock):
        return [
            f"{pad}supernode-trsolve sn={stmt.sn_id} cols={stmt.c0}..{stmt.c0 + stmt.width} "
            f"rows={stmt.n_rows} unroll={stmt.unroll} blas={stmt.use_blas}{_annot_str(stmt)}"
        ]
    if isinstance(stmt, SimplicialCholeskyLoop):
        return [
            f"{pad}simplicial-cholesky n={stmt.n} nnz(L)={stmt.factor_nnz} "
            f"kind={stmt.factor_kind} vectorize={stmt.vectorize}{_annot_str(stmt)}"
        ]
    if isinstance(stmt, IncompleteFactorLoop):
        return [
            f"{pad}incomplete-factor n={stmt.n} nnz={stmt.factor_nnz} "
            f"kind={stmt.factor_kind} updates={stmt.total_updates} "
            f"vectorize={stmt.vectorize}{_annot_str(stmt)}"
        ]
    if isinstance(stmt, SupernodalCholeskyLoop):
        return [
            f"{pad}supernodal-cholesky n={stmt.n} supernodes={stmt.n_supernodes} "
            f"nnz(L)={stmt.factor_nnz} kind={stmt.factor_kind} "
            f"distribute={stmt.distribute_single_columns} "
            f"small-kernels={stmt.use_small_kernels}{_annot_str(stmt)}"
        ]
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


def pretty(node: Node) -> str:
    """Human-readable rendering of a kernel or statement (for tests/docs)."""
    if isinstance(node, KernelFunction):
        header = f"kernel {node.name}({', '.join(node.params)})  [method={node.method}]"
        const = [
            f"  const {name}: shape={tuple(np.asarray(v).shape)}"
            for name, v in sorted(node.constants.items())
        ]
        return "\n".join([header, *const, *_stmt_lines(node.body, 1)])
    if isinstance(node, Stmt):
        return "\n".join(_stmt_lines(node, 0))
    if isinstance(node, Expr):
        return _expr_str(node)
    raise TypeError(f"unknown node {type(node).__name__}")
