"""The scipy-native, lazy-specializing front end of the stack.

* :mod:`repro.frontend.ingest` — accept ``scipy.sparse`` / COO triplets /
  dense arrays / :class:`~repro.sparse.csc.CSCMatrix` anywhere a pattern
  enters the system, converting once and fingerprinting the structure.
* :mod:`repro.frontend.probes` — cheap structural probes (pattern/value
  symmetry, SPD heuristic, size cutoff) that auto-select the kernel route.
* :mod:`repro.frontend.specialized` — :class:`SpecializedSolver`,
  the module-level :func:`solve` and the :func:`sympiled` decorator:
  specialize on first call keyed on the argument configuration, pure
  numeric execution afterwards.

The heavy names are PEP 562 lazy so that the ingest helpers stay importable
from the solver layer itself without an import cycle (``ingest`` imports
only the sparse containers; ``specialized`` imports the solvers).
"""

from repro.frontend.ingest import IngestedMatrix, as_csc, ingest, structure_fingerprint
from repro.frontend.probes import (
    AUTO_METHODS,
    DEFAULT_ITERATIVE_THRESHOLD,
    ProbeReport,
    probe_structure,
    select_method,
)

__all__ = [
    "IngestedMatrix",
    "ingest",
    "as_csc",
    "structure_fingerprint",
    "AUTO_METHODS",
    "DEFAULT_ITERATIVE_THRESHOLD",
    "ProbeReport",
    "probe_structure",
    "select_method",
    "SpecializedSolver",
    "FrontendStats",
    "solve",
    "sympiled",
    "default_frontend",
]

#: Names resolved lazily from :mod:`repro.frontend.specialized`, which pulls
#: in the solver stack — deferred so ``repro.solvers`` can import the ingest
#: helpers from this package while it is itself still initializing.
_LAZY_SPECIALIZED = (
    "SpecializedSolver",
    "FrontendStats",
    "solve",
    "sympiled",
    "default_frontend",
)


def __getattr__(name: str):
    if name in _LAZY_SPECIALIZED:
        import importlib

        value = getattr(
            importlib.import_module("repro.frontend.specialized"), name
        )
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
