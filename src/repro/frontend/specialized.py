"""The lazy-specializing front end: ``repro.solve(A, b)`` over the stack.

This is the SEJITS ``LazySpecializedFunction`` pattern applied to the whole
compiled-kernel pipeline: the **first** call with a given argument
configuration — sparsity structure, source dtype, options, requested method,
ordering — runs the expensive path (structural probes, kernel auto-selection,
ordering, symbolic inspection, code generation), and every later call with
the same configuration is pure numeric execution:

* same structure *and* same values → the cached factors solve immediately
  (two compiled triangular sweeps, nothing else),
* same structure, new values → one numeric re-factorization through the
  already-compiled kernel (``CSCMatrix.with_values`` semantics — zero
  inspection, zero codegen),
* new structure → a fresh specialization, cached alongside the others.

:class:`SpecializedSolver` is the object form (own cache, own counters);
:func:`solve` is the module-level convenience over one process-wide default
instance; :func:`sympiled` decorates a *system-producing* function
(returning ``(A, b)`` in any ingestible form) into a solve returning ``x``,
with a private specialization cache per decorated function.

Every route is bitwise identical to the corresponding explicit API —
``SparseLinearSolver(A, method=...)`` for the direct routes,
:func:`~repro.solvers.cg.preconditioned_conjugate_gradient` for ``pcg`` —
because it *is* that API underneath, reached through the same shared
artifact cache.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.compiler.cache import options_fingerprint
from repro.compiler.options import SympilerOptions
from repro.frontend.ingest import IngestedMatrix, ingest, structure_fingerprint
from repro.frontend.probes import (
    AUTO_METHODS,
    DEFAULT_ITERATIVE_THRESHOLD,
    ProbeReport,
    probe_structure,
)
from repro.observe import trace as observe_trace
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.csc import CSCMatrix

__all__ = ["SpecializedSolver", "FrontendStats", "solve", "sympiled", "default_frontend"]


@dataclass
class FrontendStats:
    """Counters of one :class:`SpecializedSolver` (mutated under its lock).

    ``specializations`` counts full first-call pipelines (probe + compile);
    ``structure_hits`` counts calls served from the specialization cache
    (no probe, no inspection, no codegen); ``refactorizations`` counts
    numeric-only re-factorizations (same structure, new values);
    ``value_hits`` counts solves that reused the cached factors outright;
    ``cholesky_escapes`` counts SPD-heuristic misdetections caught by the
    try-Cholesky-fall-back-to-LDLᵀ escape.

    The *default* front end's instance of these counters is also visible
    through the unified observability layer as the ``frontend`` collector in
    :func:`repro.observe.snapshot` (Prometheus: ``repro_frontend_*``); this
    class remains the mutation surface.
    """

    specializations: int = 0
    structure_hits: int = 0
    refactorizations: int = 0
    value_hits: int = 0
    cholesky_escapes: int = 0
    methods: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot."""
        return {
            "specializations": self.specializations,
            "structure_hits": self.structure_hits,
            "refactorizations": self.refactorizations,
            "value_hits": self.value_hits,
            "cholesky_escapes": self.cholesky_escapes,
            "methods": dict(self.methods),
        }


@dataclass
class _Specialization:
    """One cached argument configuration and its compiled state."""

    key: tuple
    method: str
    probe: Optional[ProbeReport]
    #: The direct solver (``None`` for the ``pcg`` route, which owns no
    #: complete factorization — its compiled IC(0)/trisolve artifacts live
    #: in the shared artifact cache keyed by the same pattern).
    solver: Optional[SparseLinearSolver]
    #: Pattern-carrying CSC of the specialization (pcg route re-binds values
    #: onto it with ``with_values``).
    pattern: CSCMatrix
    #: Values the current factors were computed from.
    current_values: Optional[np.ndarray]
    #: True when the SPD heuristic chose Cholesky but numeric factorization
    #: broke down and the specialization fell back to LDLᵀ.
    escaped_to_ldlt: bool = False


def _factorization_is_finite(solver: SparseLinearSolver) -> bool:
    """True when the solver's current factors contain no NaN/Inf.

    The no-pivot kernels do not raise on breakdown — an indefinite matrix
    fed to Cholesky surfaces as NaNs in ``L`` — so the escape hatch checks
    the factor bits instead of catching exceptions alone.
    """
    if not np.isfinite(solver.L.data).all():
        return False
    d = solver.d
    if d is not None and not np.isfinite(d).all():
        return False
    U = solver.U
    if U is not None and not np.isfinite(U.data).all():
        return False
    return True


class SpecializedSolver:
    """A lazily specializing ``solve(A, b)`` with a per-structure cache.

    Parameters
    ----------
    method:
        Fix the kernel route for every call (``"cholesky"``, ``"ldlt"``,
        ``"lu"``, ``"pcg"``); ``None`` (default) auto-selects per structure
        via the probes.  A per-call ``method=`` overrides both.
    ordering:
        Fill-reducing ordering for the direct routes (as in
        :class:`SparseLinearSolver`).
    options:
        :class:`SympilerOptions` for every compile (part of the cache key).
    iterative_threshold:
        SPD order cutoff routing to ``pcg``
        (:data:`~repro.frontend.probes.DEFAULT_ITERATIVE_THRESHOLD`).
    max_specializations:
        Bound on cached structures; the least recently used specialization
        is dropped beyond it (its artifacts stay in the shared compiler
        cache, so re-specializing the structure later is warm).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.frontend import SpecializedSolver
    >>> from repro.sparse import laplacian_2d
    >>> front = SpecializedSolver()
    >>> A = laplacian_2d(8).to_scipy()          # any scipy.sparse matrix
    >>> x = front.solve(A, np.ones(A.shape[0])) # first call: specialize
    >>> x2 = front.solve(A, np.ones(A.shape[0]))  # second: numeric only
    >>> front.stats.specializations, front.stats.structure_hits
    (1, 1)
    """

    def __init__(
        self,
        *,
        method: Optional[str] = None,
        ordering: str = "mindeg",
        options: Optional[SympilerOptions] = None,
        iterative_threshold: int = DEFAULT_ITERATIVE_THRESHOLD,
        max_specializations: int = 64,
    ) -> None:
        if method is not None and method not in AUTO_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {AUTO_METHODS} or None"
            )
        if max_specializations < 1:
            raise ValueError("max_specializations must be at least 1")
        self.method = method
        self.ordering = ordering
        self.options = options or SympilerOptions()
        self.iterative_threshold = int(iterative_threshold)
        self.max_specializations = int(max_specializations)
        self.stats = FrontendStats()
        self.last_cg_result = None
        self._options_fp = options_fingerprint(self.options)
        self._lock = threading.Lock()
        #: Insertion-ordered specialization cache (dict ordering is the LRU).
        self._cache: Dict[tuple, _Specialization] = {}

    # ------------------------------------------------------------------ #
    def cache_info(self) -> Dict[str, object]:
        """Snapshot: cached specializations (``entries``) plus the counters."""
        with self._lock:
            entries = [
                {
                    "fingerprint": key[0],
                    "dtype": key[1],
                    "method": spec.method,
                    "escaped_to_ldlt": spec.escaped_to_ldlt,
                    "n": spec.pattern.n,
                    "nnz": spec.pattern.nnz,
                }
                for key, spec in self._cache.items()
            ]
        info = {"entries": entries, "size": len(entries)}
        info.update(self.stats.as_dict())
        return info

    def clear(self) -> None:
        """Drop every cached specialization (shared artifacts stay cached)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------ #
    def _key(self, ingested: IngestedMatrix, method: Optional[str]) -> tuple:
        return (
            structure_fingerprint(ingested.csc),
            ingested.dtype,
            self._options_fp,
            method or "auto",
            self.ordering,
        )

    def _specialize(
        self, ingested: IngestedMatrix, method: Optional[str], key: tuple
    ) -> _Specialization:
        """First call on a configuration: probe, select, compile, cache."""
        A = ingested.csc
        probe = None
        escaped = False
        if method is None:
            probe = probe_structure(A, iterative_threshold=self.iterative_threshold)
            method = probe.method
        if method == "pcg":
            # The pcg route owns no complete factorization; its compiled
            # IC(0)/trisolve artifacts land in the shared artifact cache on
            # the first numeric run (still inside this first call) and every
            # later call hits them.
            solver = None
            current_values = None
        else:
            solver = self._build_direct(A, method)
            if solver.method != method:
                escaped = True
                method = solver.method
            current_values = A.data
        spec = _Specialization(
            key=key,
            method=method,
            probe=probe,
            solver=solver,
            pattern=A,
            current_values=current_values,
            escaped_to_ldlt=escaped,
        )
        return spec

    def _build_direct(self, A: CSCMatrix, method: str) -> SparseLinearSolver:
        """Build a direct solver; Cholesky breakdown escapes to LDLᵀ.

        The escape only arms the *auto-selected* heuristic path — the probes
        ran, chose ``cholesky``, and the numeric factorization disagreed
        (symmetric, positive diagonal, yet indefinite).  An explicit
        ``method="cholesky"`` goes through :class:`SparseLinearSolver`
        directly, exactly like the explicit API (no silent substitution).
        """
        with warnings.catch_warnings():
            # Indefinite input reaches sqrt(<0) inside the generated kernel,
            # which warns before the finiteness check below catches it.
            warnings.simplefilter("ignore", RuntimeWarning)
            try:
                solver = SparseLinearSolver(
                    A, method=method, ordering=self.ordering, options=self.options
                )
                if method == "cholesky" and not _factorization_is_finite(solver):
                    raise FloatingPointError("Cholesky breakdown (non-SPD values)")
            except (FloatingPointError, ValueError, ZeroDivisionError):
                if method != "cholesky":
                    raise
                return SparseLinearSolver(
                    A, method="ldlt", ordering=self.ordering, options=self.options
                )
        return solver

    # ------------------------------------------------------------------ #
    def solve(
        self,
        A,
        b: np.ndarray,
        *,
        method: Optional[str] = None,
        num_threads: Optional[int] = None,
        tol: float = 1e-8,
        max_iterations: int = 1000,
    ) -> np.ndarray:
        """Solve ``A x = b``; ``A`` in any ingestible form.

        ``method`` overrides the instance default and the structural probes
        (the misdetection escape hatch).  ``num_threads`` follows the
        process-wide precedence documented on
        :func:`repro.runtime.engine.resolve_num_threads`.  ``tol`` /
        ``max_iterations`` apply to the ``pcg`` route only.
        """
        if method is not None and method not in AUTO_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {AUTO_METHODS}"
            )
        requested = method if method is not None else self.method
        ingested = ingest(A)
        b = np.asarray(b, dtype=np.float64)
        key = self._key(ingested, requested)
        with self._lock:
            spec = self._cache.get(key)
            if spec is not None:
                # Refresh LRU recency.
                self._cache.pop(key)
                self._cache[key] = spec
        if spec is None:
            with observe_trace.span("specialize", method=requested or "auto"):
                spec = self._specialize(ingested, requested, key)
            with self._lock:
                raced = self._cache.get(key)
                if raced is not None:
                    spec = raced
                    self.stats.structure_hits += 1
                else:
                    self._cache[key] = spec
                    self.stats.specializations += 1
                    self.stats.methods[spec.method] = (
                        self.stats.methods.get(spec.method, 0) + 1
                    )
                    if spec.escaped_to_ldlt:
                        self.stats.cholesky_escapes += 1
                    while len(self._cache) > self.max_specializations:
                        self._cache.pop(next(iter(self._cache)))
        else:
            with self._lock:
                self.stats.structure_hits += 1
        return self._execute(
            spec,
            ingested.csc,
            b,
            num_threads=num_threads,
            tol=tol,
            max_iterations=max_iterations,
        )

    __call__ = solve

    def _execute(
        self,
        spec: _Specialization,
        A: CSCMatrix,
        b: np.ndarray,
        *,
        num_threads: Optional[int],
        tol: float,
        max_iterations: int,
    ) -> np.ndarray:
        if spec.method == "pcg":
            from repro.solvers.cg import preconditioned_conjugate_gradient

            # Re-bind the call's values onto the specialized pattern: the
            # IC(0)/trisolve compiles behind this call are shared-cache hits.
            system = spec.pattern.with_values(A.data) if A is not spec.pattern else A
            result = preconditioned_conjugate_gradient(
                system,
                b,
                tol=tol,
                max_iterations=max_iterations,
                options=self.options,
                num_threads=num_threads,
            )
            self.last_cg_result = result
            return result.x
        solver = spec.solver
        with self._lock:
            values_match = spec.current_values is not None and np.array_equal(
                spec.current_values, A.data
            )
        if values_match:
            with self._lock:
                self.stats.value_hits += 1
        else:
            # Same structure, new values: numeric-only refactorization
            # through the already-compiled kernel (the with_values path).
            solver.factorize(spec.pattern.with_values(A.data))
            with self._lock:
                spec.current_values = A.data
                self.stats.refactorizations += 1
        return solver.solve(b, num_threads=num_threads)


# --------------------------------------------------------------------------- #
# Module-level front end and the @sympiled decorator
# --------------------------------------------------------------------------- #
_default_frontend: Optional[SpecializedSolver] = None
_default_lock = threading.Lock()


def default_frontend() -> SpecializedSolver:
    """The process-wide :class:`SpecializedSolver` behind :func:`solve`."""
    global _default_frontend
    with _default_lock:
        if _default_frontend is None:
            _default_frontend = SpecializedSolver()
        return _default_frontend


def solve(
    A,
    b: np.ndarray,
    *,
    method: Optional[str] = None,
    num_threads: Optional[int] = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
) -> np.ndarray:
    """Solve ``A x = b`` for any ingestible ``A`` — the whole API.

    ``repro.solve`` is the lazy-specializing front end over the compiled
    kernel stack: the first call on a structure probes it, auto-selects the
    kernel (SPD → Cholesky, symmetric indefinite → LDLᵀ, unsymmetric → LU,
    large SPD → IC(0)-preconditioned CG), orders, inspects and compiles;
    repeat calls on the same structure are pure numeric execution.  Results
    are bitwise identical to the explicit
    :class:`~repro.solvers.linear_solver.SparseLinearSolver` /
    :func:`~repro.solvers.cg.preconditioned_conjugate_gradient` APIs.

    State lives in the process-wide :func:`default_frontend` instance;
    construct a :class:`SpecializedSolver` for isolated caches, a fixed
    method, non-default options or orderings.
    """
    return default_frontend().solve(
        A,
        b,
        method=method,
        num_threads=num_threads,
        tol=tol,
        max_iterations=max_iterations,
    )


def sympiled(
    fn: Optional[Callable] = None,
    *,
    method: Optional[str] = None,
    ordering: str = "mindeg",
    options: Optional[SympilerOptions] = None,
    iterative_threshold: int = DEFAULT_ITERATIVE_THRESHOLD,
):
    """Decorate a system-producing function into a lazily specialized solve.

    The decorated function must return ``(A, b)`` (``A`` in any ingestible
    form); calling the wrapper returns ``x``.  Each wrapper owns a private
    :class:`SpecializedSolver` (exposed as ``wrapper.solver``), so the first
    call with a new structure specializes and every later same-structure
    call — the fixed-pattern/changing-values loop the paper amortizes — runs
    numeric-only code.  ``wrapper.cache_info()`` reports the counters.

    Usable bare or with arguments::

        @sympiled
        def step(t):
            return assemble(mesh, t), load_vector(mesh, t)

        x = step(0.1)   # specializes on the mesh pattern
        x = step(0.2)   # numeric-only: refactorize + solve
    """

    def decorate(func: Callable):
        import functools

        solver = SpecializedSolver(
            method=method,
            ordering=ordering,
            options=options,
            iterative_threshold=iterative_threshold,
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            system = func(*args, **kwargs)
            if not (isinstance(system, tuple) and len(system) == 2):
                raise TypeError(
                    f"@sympiled function {func.__name__!r} must return (A, b), "
                    f"got {type(system).__name__}"
                )
            A, b = system
            return solver.solve(A, b)

        wrapper.solver = solver
        wrapper.cache_info = solver.cache_info
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
