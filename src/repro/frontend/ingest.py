"""Matrix ingest: accept anything matrix-shaped, produce one ``CSCMatrix``.

Every point where a sparsity pattern enters the system — the front end's
:func:`repro.frontend.solve`, :class:`~repro.solvers.linear_solver.SparseLinearSolver`,
:meth:`~repro.runtime.facade.BatchedSolver.factorize_batch`,
:meth:`~repro.service.session.SolverService.register_pattern` and the wire
client — funnels through :func:`ingest`, which converts **once** to the CSC
container the whole compiled-kernel stack is built on and fingerprints the
structure for the lazy-specialization cache.

Accepted forms
--------------
* :class:`~repro.sparse.csc.CSCMatrix` — returned *as-is* (the same object,
  zero copies), so existing explicit-API callers are bitwise unaffected;
* any ``scipy.sparse`` matrix/array (csc, csr, coo, …) — duck-typed on
  ``tocsc()``, so SciPy is only required when such an object is passed;
* :class:`~repro.sparse.coo.COOMatrix` — converted with duplicate summing;
* COO triplets ``(rows, cols, values)`` or ``(rows, cols, values, shape)``
  (shape inferred square from the largest index when omitted);
* scipy-style triplets ``(values, (rows, cols))``;
* a dense 2-D ``numpy.ndarray`` (or nested sequence).

This module deliberately imports only the sparse containers and the
fingerprint helper, so every layer (including the serving wire client) can
ingest without pulling in the solver or service stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.codegen.runtime import pattern_fingerprint
from repro.observe.trace import span
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix

__all__ = ["IngestedMatrix", "ingest", "as_csc", "structure_fingerprint"]


@dataclass(frozen=True)
class IngestedMatrix:
    """The result of one ingest: the CSC matrix plus cache-key metadata.

    ``dtype`` records the *source* value dtype (before the stack's float64
    coercion) — it participates in the specialization cache key so a float32
    workload that later upgrades to float64 re-probes instead of silently
    reusing a fingerprint computed from coarser values.  ``source_format``
    is a short tag (``"csc"``, ``"scipy"``, ``"coo"``, ``"triplets"``,
    ``"dense"``) used by stats and error messages.
    """

    csc: CSCMatrix
    dtype: str
    source_format: str

    @property
    def fingerprint(self) -> str:
        """Structural fingerprint of the ingested pattern."""
        return structure_fingerprint(self.csc)


def structure_fingerprint(A: CSCMatrix) -> str:
    """A stable hash of the sparsity structure (shape + indptr + indices).

    Values never participate: two matrices with the same pattern and
    different numerics share one fingerprint — the key property the
    specialization cache amortizes over.
    """
    return pattern_fingerprint(
        A.indptr, A.indices, extra=f"shape={A.n_rows}x{A.n_cols}"
    )


def _is_scipy_sparse(obj) -> bool:
    """Duck-typed scipy.sparse check (no import of scipy required)."""
    return hasattr(obj, "tocsc") and hasattr(obj, "shape") and not isinstance(obj, CSCMatrix)


def _from_triplets(obj) -> IngestedMatrix:
    """Ingest ``(rows, cols, values[, shape])`` or ``(values, (rows, cols))``."""
    if len(obj) == 2 and isinstance(obj[1], tuple) and len(obj[1]) == 2:
        values, (rows, cols) = obj
        shape = None
    elif len(obj) in (3, 4):
        rows, cols, values = obj[0], obj[1], obj[2]
        shape = obj[3] if len(obj) == 4 else None
    else:
        raise TypeError(
            "triplet input must be (rows, cols, values[, shape]) or "
            "(values, (rows, cols))"
        )
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    raw_values = np.asarray(values)
    if shape is None:
        n = int(max(rows.max(initial=-1), cols.max(initial=-1))) + 1
        shape = (n, n)
    coo = COOMatrix(
        int(shape[0]), int(shape[1]), rows, cols, raw_values.astype(np.float64)
    )
    return IngestedMatrix(
        csc=coo.to_csc(), dtype=str(raw_values.dtype), source_format="triplets"
    )


def ingest(A) -> IngestedMatrix:
    """Convert any accepted matrix form to CSC, once, with key metadata.

    See the module docstring for the accepted forms.  A ``CSCMatrix`` input
    is passed through untouched (identical object) so the explicit API's
    behaviour — and its bits — are unchanged by the front end existing.
    """
    if isinstance(A, CSCMatrix):
        # Identity passthrough: no conversion happens, so no span either.
        return IngestedMatrix(csc=A, dtype=str(A.data.dtype), source_format="csc")
    with span("ingest", source=type(A).__name__):
        if isinstance(A, COOMatrix):
            return IngestedMatrix(
                csc=A.to_csc(), dtype=str(A.data.dtype), source_format="coo"
            )
        if _is_scipy_sparse(A):
            dtype = str(getattr(A, "dtype", np.float64))
            return IngestedMatrix(
                csc=CSCMatrix.from_scipy(A), dtype=dtype, source_format="scipy"
            )
        if isinstance(A, tuple):
            return _from_triplets(A)
        arr = np.asarray(A)
        if arr.ndim == 2:
            return IngestedMatrix(
                csc=CSCMatrix.from_dense(arr.astype(np.float64)),
                dtype=str(arr.dtype),
                source_format="dense",
            )
    raise TypeError(
        f"cannot ingest a matrix from {type(A).__name__!r}: expected a "
        "CSCMatrix, a scipy.sparse matrix, a COOMatrix, COO triplets "
        "(rows, cols, values[, shape]) / (values, (rows, cols)), or a dense "
        "2-D array"
    )


def as_csc(A) -> CSCMatrix:
    """Shorthand: :func:`ingest` and keep only the CSC matrix."""
    return ingest(A).csc
