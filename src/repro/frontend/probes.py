"""Cheap structural probes that auto-select a kernel for ``repro.solve``.

The probes answer, in ``O(nnz)`` work (one transpose, a few array
comparisons — never a factorization, never ``to_dense``):

* is the *pattern* symmetric?
* are the *values* symmetric (``A == Aᵀ`` up to a tight tolerance)?
* is the diagonal fully stored and strictly positive (the SPD heuristic —
  necessary for SPD, not sufficient; the front end backs it with a
  try-Cholesky-fall-back-to-LDLᵀ escape at specialization time)?
* is the system large enough that an iterative method should amortize
  instead of a complete factorization?

and :func:`select_method` folds the answers into one of the four routes the
registry serves end to end:

==================================  =============================
structure                           route
==================================  =============================
SPD heuristic, below size cutoff    ``cholesky`` (LDLᵀ escape)
SPD heuristic, at/above cutoff      ``pcg`` (compiled IC(0) CG)
symmetric, diagonal not positive    ``ldlt``
unsymmetric                         ``lu``
==================================  =============================

An explicit ``method=`` always wins over the probes — the misdetection
escape hatch (``repro.solve(A, b, method="ldlt")``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observe.trace import span
from repro.sparse.csc import CSCMatrix

__all__ = ["ProbeReport", "probe_structure", "select_method", "AUTO_METHODS"]

#: The methods :func:`select_method` can return, in probe order.
AUTO_METHODS = ("cholesky", "ldlt", "lu", "pcg")

#: Default order cutoff above which an SPD system routes to ``pcg`` instead
#: of a complete factorization.  Sized for this repo's interpreted-scale
#: synthetic suite: beyond a few thousand columns the simplicial complete
#: factorization's fill (and its compile) dwarfs IC(0)+CG, which keeps the
#: ``A`` pattern and converges in tens of iterations on the generator
#: classes.  Callers tune it per workload via ``iterative_threshold=``.
DEFAULT_ITERATIVE_THRESHOLD = 4000

#: Relative tolerance of the value-symmetry probe.  Assembled-but-roundoff
#: symmetric matrices (FEM stiffness sums accumulated in different orders)
#: must still probe symmetric; genuinely unsymmetric physics (convection
#: Jacobians) differ at O(1), many orders above this.
_SYMMETRY_RTOL = 1e-12


@dataclass(frozen=True)
class ProbeReport:
    """Structural facts about one matrix, plus the method they select."""

    n: int
    nnz: int
    density: float
    square: bool
    symmetric_pattern: bool
    symmetric_values: bool
    positive_diagonal: bool
    large: bool
    #: The auto-selected kernel route (one of :data:`AUTO_METHODS`).
    method: str
    #: Human-readable selection rationale (surfaced in errors and stats).
    reason: str


def probe_structure(
    A: CSCMatrix, *, iterative_threshold: int = DEFAULT_ITERATIVE_THRESHOLD
) -> ProbeReport:
    """Probe ``A`` and select a kernel route; see the module docstring.

    Raises ``ValueError`` for non-square input — no registered kernel can
    serve it, and a clear message beats a downstream shape error.
    """
    if not A.is_square():
        raise ValueError(
            f"cannot auto-select a solver for a non-square {A.shape} matrix"
        )
    with span("probe", n=A.n):
        return _probe_square(A, iterative_threshold)


def _probe_square(A: CSCMatrix, iterative_threshold: int) -> ProbeReport:
    n = A.n
    nnz = A.nnz
    At = A.transpose()
    symmetric_pattern = A.pattern_equal(At)
    if symmetric_pattern:
        # Same pattern, both column-sorted: the value arrays align entry for
        # entry, so value symmetry is one vector comparison.
        symmetric_values = bool(
            np.array_equal(A.data, At.data)
            or np.allclose(A.data, At.data, rtol=_SYMMETRY_RTOL, atol=0.0)
        )
    else:
        symmetric_values = False
    diag = A.diagonal()
    positive_diagonal = bool(A.has_full_diagonal() and np.all(diag > 0.0))
    large = n >= iterative_threshold

    if symmetric_values and positive_diagonal:
        if large:
            method = "pcg"
            reason = (
                f"symmetric values with a strictly positive diagonal and "
                f"n={n} >= iterative_threshold={iterative_threshold}: "
                "IC(0)-preconditioned CG amortizes better than a complete "
                "factorization"
            )
        else:
            method = "cholesky"
            reason = (
                "symmetric values with a strictly positive diagonal: SPD "
                "heuristic selects Cholesky (LDL^T escape on breakdown)"
            )
    elif symmetric_values:
        method = "ldlt"
        reason = (
            "symmetric values but the diagonal is not strictly positive: "
            "symmetric-indefinite LDL^T"
        )
    else:
        method = "lu"
        reason = (
            "unsymmetric values"
            if symmetric_pattern
            else "unsymmetric pattern"
        ) + ": no-pivot LU (requires diagonal dominance)"
    return ProbeReport(
        n=n,
        nnz=nnz,
        density=A.density(),
        square=True,
        symmetric_pattern=symmetric_pattern,
        symmetric_values=symmetric_values,
        positive_diagonal=positive_diagonal,
        large=large,
        method=method,
        reason=reason,
    )


def select_method(
    A: CSCMatrix, *, iterative_threshold: int = DEFAULT_ITERATIVE_THRESHOLD
) -> str:
    """The auto-selected kernel route for ``A`` (probe + fold, no report)."""
    return probe_structure(A, iterative_threshold=iterative_threshold).method
