"""Reference numeric kernels.

These are straightforward, well-tested implementations of every numeric
routine the system needs:

* dense micro-kernels (:mod:`repro.kernels.dense`) used inside supernodal
  code and by the code generator's specialized small-block kernels,
* the four sparse triangular-solve variants of Figure 1
  (:mod:`repro.kernels.triangular`),
* simplicial and supernodal sparse Cholesky (:mod:`repro.kernels.cholesky`),
* FLOP-counting helpers (:mod:`repro.kernels.flops`) used to report GFLOP/s
  the same way for every variant.

The baselines in :mod:`repro.baselines` and the generated code produced by
:mod:`repro.compiler` are all validated against these kernels.
"""

from repro.kernels.cholesky import (
    cholesky_left_looking,
    cholesky_supernodal,
    cholesky_up_looking,
)
from repro.kernels.dense import (
    dense_cholesky,
    dense_ldlt,
    dense_lower_solve,
    dense_solve_transposed_right,
    small_cholesky,
    small_lower_solve,
)
from repro.kernels.flops import cholesky_flops, gflops, triangular_solve_flops
from repro.kernels.incomplete import ic0_left_looking, ilu0_left_looking
from repro.kernels.ldlt import LDLTFactors, ldlt_left_looking
from repro.kernels.lu import LUFactors, lu_left_looking
from repro.kernels.triangular import (
    trisolve_decoupled,
    trisolve_library,
    trisolve_naive,
    trisolve_supernodal,
)

__all__ = [
    "dense_cholesky",
    "dense_lower_solve",
    "dense_solve_transposed_right",
    "small_cholesky",
    "small_lower_solve",
    "trisolve_naive",
    "trisolve_library",
    "trisolve_decoupled",
    "trisolve_supernodal",
    "cholesky_up_looking",
    "cholesky_left_looking",
    "cholesky_supernodal",
    "dense_ldlt",
    "ldlt_left_looking",
    "LDLTFactors",
    "lu_left_looking",
    "LUFactors",
    "ic0_left_looking",
    "ilu0_left_looking",
    "triangular_solve_flops",
    "cholesky_flops",
    "gflops",
]
