"""Sparse triangular solve: the four variants of Figure 1.

All variants solve ``L x = b`` for a lower-triangular CSC matrix ``L`` with a
full stored diagonal and a (possibly sparse) dense-storage right-hand side
``b``.  They differ only in which columns they visit and how:

* :func:`trisolve_naive` — Figure 1(b): every column, unconditionally.
* :func:`trisolve_library` — Figure 1(c): every column, skipping the work
  when ``x[j]`` is numerically zero (the Eigen strategy).
* :func:`trisolve_decoupled` — Figure 1(d): only the columns in a
  pre-computed reach-set (symbolic analysis fully decoupled).
* :func:`trisolve_supernodal` — the VS-Block reference: whole supernodes are
  solved with dense sub-kernels; combined with a reach-set it processes only
  supernodes that contain reached columns.

Inner column updates use NumPy fancy indexing in every variant so the
comparison across variants isolates the *algorithmic* differences (iteration
pruning and blocking), exactly what the paper's figures measure.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.kernels.dense import dense_lower_solve, small_lower_solve
from repro.sparse.csc import CSCMatrix
from repro.symbolic.supernodes import SupernodePartition

__all__ = [
    "trisolve_naive",
    "trisolve_library",
    "trisolve_decoupled",
    "trisolve_supernodal",
]


def _check_inputs(L: CSCMatrix, b: np.ndarray) -> np.ndarray:
    if not L.is_square():
        raise ValueError("triangular solve requires a square matrix")
    if not L.is_lower_triangular():
        raise ValueError("L must be lower triangular")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (L.n,):
        raise ValueError(f"b must have shape ({L.n},), got {b.shape}")
    return b


def _column_diag_first(L: CSCMatrix, j: int) -> None:
    rows = L.col_rows(j)
    if rows.size == 0 or rows[0] != j:
        raise ValueError(f"column {j} of L is missing its diagonal entry")


def trisolve_naive(L: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Figure 1(b): forward substitution over every column."""
    b = _check_inputs(L, b)
    x = b.copy()
    indptr, indices, data = L.indptr, L.indices, L.data
    for j in range(L.n):
        _column_diag_first(L, j)
        start, end = indptr[j], indptr[j + 1]
        xj = x[j] / data[start]
        x[j] = xj
        if end > start + 1:
            x[indices[start + 1 : end]] -= data[start + 1 : end] * xj
    return x


def trisolve_library(L: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Figure 1(c): like the naive solve but skips columns where ``x[j] == 0``.

    This is the strategy used by general libraries such as Eigen: the full
    column loop still runs (an ``O(n)`` scan), but the numeric work of a
    column is elided when its solution component is zero.
    """
    b = _check_inputs(L, b)
    x = b.copy()
    indptr, indices, data = L.indptr, L.indices, L.data
    for j in range(L.n):
        if x[j] != 0.0:
            _column_diag_first(L, j)
            start, end = indptr[j], indptr[j + 1]
            xj = x[j] / data[start]
            x[j] = xj
            if end > start + 1:
                x[indices[start + 1 : end]] -= data[start + 1 : end] * xj
    return x


def trisolve_decoupled(
    L: CSCMatrix, b: np.ndarray, reach: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Figure 1(d): iterate only over the pre-computed reach-set.

    ``reach`` must be a valid topological order of the reached columns (as
    produced by :func:`repro.symbolic.reach.reach_set` or its sorted variant);
    the numeric loop contains no symbolic work at all.
    """
    b = _check_inputs(L, b)
    x = b.copy()
    indptr, indices, data = L.indptr, L.indices, L.data
    reach = np.asarray(reach, dtype=np.int64)
    for j in reach:
        _column_diag_first(L, int(j))
        start, end = indptr[j], indptr[j + 1]
        xj = x[j] / data[start]
        x[j] = xj
        if end > start + 1:
            x[indices[start + 1 : end]] -= data[start + 1 : end] * xj
    return x


def trisolve_supernodal(
    L: CSCMatrix,
    b: np.ndarray,
    supernodes: SupernodePartition,
    reach_sorted: Optional[np.ndarray] = None,
) -> np.ndarray:
    """VS-Block reference: solve whole supernodes with dense sub-kernels.

    For each participating supernode the diagonal block is solved densely and
    the off-diagonal panel applied as a dense matrix–vector product.  When a
    sorted reach-set is supplied, supernodes containing no reached column are
    skipped entirely; columns of a participating supernode that are outside
    the reach-set hold zeros, so processing the full block is numerically
    equivalent (this matches Sympiler's "supernodes with a full diagonal
    block" design, §4.2).
    """
    b = _check_inputs(L, b)
    if supernodes.n_columns != L.n:
        raise ValueError("supernode partition does not match the matrix order")
    x = b.copy()
    indptr, indices, data = L.indptr, L.indices, L.data

    if reach_sorted is None:
        active = np.ones(supernodes.n_supernodes, dtype=bool)
    else:
        reach_sorted = np.asarray(reach_sorted, dtype=np.int64)
        active = np.zeros(supernodes.n_supernodes, dtype=bool)
        active[supernodes.col_to_super[reach_sorted]] = True

    for s, c0, c1 in supernodes.iter_supernodes():
        if not active[s]:
            continue
        w = c1 - c0
        _column_diag_first(L, c0)
        rows = indices[indptr[c0] : indptr[c0 + 1]]
        n_rows = rows.size
        if w == 1:
            start, end = indptr[c0], indptr[c0 + 1]
            xj = x[c0] / data[start]
            x[c0] = xj
            if end > start + 1:
                x[indices[start + 1 : end]] -= data[start + 1 : end] * xj
            continue
        # Gather the supernode into a dense trapezoidal panel.
        diag_block = np.zeros((w, w), dtype=np.float64)
        panel = np.zeros((n_rows - w, w), dtype=np.float64)
        for jj in range(w):
            vals = data[indptr[c0 + jj] : indptr[c0 + jj + 1]]
            diag_block[jj:, jj] = vals[: w - jj]
            panel[:, jj] = vals[w - jj :]
        rhs = x[c0:c1].copy()
        sol = small_lower_solve(diag_block, rhs) if w <= 3 else dense_lower_solve(diag_block, rhs)
        x[c0:c1] = sol
        if n_rows > w:
            x[rows[w:]] -= panel @ sol
    return x
