"""Sparse LU factorization reference kernels (partial-pivoting-free).

``A = L U`` with ``L`` unit lower triangular and ``U`` upper triangular
handles general *unsymmetric* systems — the diagonally dominant Jacobians of
circuit and power-grid simulation (§1.2 of the paper) are the motivating
workload.  No pivoting is performed: for (column) diagonally dominant
matrices Gaussian elimination without pivoting is backward stable and every
pivot is nonzero, which is exactly what makes the factorization specializable
— the row order is fixed, so the whole symbolic analysis (GP-style reach,
column elimination tree) runs once at compile time.

:func:`lu_left_looking` is the decoupled left-looking reference used as the
correctness oracle for the Sympiler-generated LU kernels; ``L`` stores an
explicit unit diagonal so the generated triangular-solve kernels apply to it
unchanged, and ``U`` stores its diagonal as the last entry of every column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.dense import SingularMatrixError
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import LUInspectionResult, LUInspector

__all__ = ["LUFactors", "lu_left_looking", "SingularMatrixError"]


@dataclass(frozen=True)
class LUFactors:
    """The factors of ``A = L U``.

    ``L`` is unit lower triangular (the unit diagonal is stored explicitly so
    triangular-solve kernels need no special casing) and ``U`` is upper
    triangular with the pivots on its diagonal (stored as the last entry of
    every column, rows ascending).
    """

    L: CSCMatrix
    U: CSCMatrix

    @property
    def n(self) -> int:
        """Order of the factored matrix."""
        return self.L.n

    @property
    def pivots(self) -> np.ndarray:
        """The diagonal of ``U`` (the elimination pivots)."""
        return self.U.data[self.U.indptr[1:] - 1].copy()

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` by forward then backward substitution."""
        b = np.asarray(b, dtype=np.float64)
        L, U = self.L, self.U
        n = L.n
        y = b.copy()
        # Forward: L y = b (unit diagonal stored explicitly).
        for j in range(n):
            p0, p1 = L.indptr[j], L.indptr[j + 1]
            y[j] /= L.data[p0]
            y[L.indices[p0 + 1 : p1]] -= L.data[p0 + 1 : p1] * y[j]
        # Backward: U x = y, column-at-a-time from the right (diagonal last).
        x = y.copy()
        for j in range(n - 1, -1, -1):
            p0, p1 = U.indptr[j], U.indptr[j + 1]
            xj = x[j] / U.data[p1 - 1]
            x[j] = xj
            x[U.indices[p0 : p1 - 1]] -= U.data[p0 : p1 - 1] * xj
        return x

    def reconstruct_dense(self) -> np.ndarray:
        """Dense ``L @ U`` — the oracle for correctness tests."""
        return self.L.to_dense() @ self.U.to_dense()


def lu_left_looking(
    A: CSCMatrix, inspection: Optional[LUInspectionResult] = None
) -> LUFactors:
    """Left-looking simplicial LU with decoupled symbolic analysis.

    Structure mirrors :func:`repro.kernels.ldlt.ldlt_left_looking`: column
    ``j`` gathers ``A(:, j)`` into a dense work vector, applies the updates of
    every column ``k`` in the above-diagonal ``U`` pattern of ``j`` (in
    ascending — hence topological — order), then splits the result into
    ``U(:, j)`` and the pivot-scaled ``L(:, j)``.
    """
    if not A.is_square():
        raise ValueError("LU requires a square matrix")
    if inspection is None:
        inspection = LUInspector().inspect(A)
    n = A.n
    l_indptr, l_indices = inspection.l_indptr, inspection.l_indices
    u_indptr, u_indices = inspection.u_indptr, inspection.u_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    u_data = np.zeros(int(u_indptr[-1]), dtype=np.float64)

    f = np.zeros(n, dtype=np.float64)
    for j in range(n):
        f[A.col_rows(j)] = A.col_values(j)
        # Updates from the columns in the U pattern of column j (k < j).
        for k in u_indices[u_indptr[j] : u_indptr[j + 1] - 1]:
            k = int(k)
            start, end = l_indptr[k], l_indptr[k + 1]
            ukj = f[k]
            f[l_indices[start + 1 : end]] -= l_data[start + 1 : end] * ukj
        u0, u1 = u_indptr[j], u_indptr[j + 1]
        u_data[u0:u1] = f[u_indices[u0:u1]]
        pivot = f[j]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at column {j}")
        start, end = l_indptr[j], l_indptr[j + 1]
        l_data[start] = 1.0
        l_data[start + 1 : end] = f[l_indices[start + 1 : end]] / pivot
        f[u_indices[u0:u1]] = 0.0
        f[l_indices[start:end]] = 0.0
    L = CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)
    U = CSCMatrix(n, n, u_indptr, u_indices, u_data, check=False)
    return LUFactors(L=L, U=U)
