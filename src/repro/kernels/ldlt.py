"""Sparse LDLᵀ factorization reference kernels.

``A = L D Lᵀ`` with ``L`` unit lower triangular and ``D`` diagonal handles
symmetric *indefinite* systems (KKT/saddle-point matrices, shifted operators)
that Cholesky rejects, without pivoting as long as every leading pivot is
nonzero — guaranteed for symmetric quasi-definite matrices.  The fill pattern
of ``L`` is identical to the Cholesky factor pattern, so the same symbolic
inspection (elimination tree, ``ereach`` row patterns, column counts,
supernodes) drives both factorizations.

:func:`ldlt_left_looking` is the decoupled left-looking reference used as the
correctness oracle for the Sympiler-generated LDLᵀ kernels; ``L`` stores an
explicit unit diagonal so the generated triangular-solve kernels apply to it
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.dense import SingularMatrixError
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import CholeskyInspectionResult, CholeskyInspector

__all__ = ["LDLTFactors", "ldlt_left_looking", "SingularMatrixError"]


@dataclass(frozen=True)
class LDLTFactors:
    """The factors of ``A = L D Lᵀ``.

    ``L`` is unit lower triangular (the unit diagonal is stored explicitly so
    triangular-solve kernels need no special casing) and ``d`` holds the
    diagonal of ``D``; entries of ``d`` may be negative for indefinite input.
    """

    L: CSCMatrix
    d: np.ndarray

    @property
    def n(self) -> int:
        """Order of the factored matrix."""
        return self.L.n

    @property
    def inertia(self) -> tuple[int, int, int]:
        """``(n_positive, n_negative, n_zero)`` eigenvalue counts (Sylvester)."""
        return (
            int(np.sum(self.d > 0.0)),
            int(np.sum(self.d < 0.0)),
            int(np.sum(self.d == 0.0)),
        )

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` by forward, diagonal and backward substitution."""
        b = np.asarray(b, dtype=np.float64)
        L = self.L
        n = L.n
        y = b.copy()
        # Forward: L y = b (unit diagonal stored explicitly).
        for j in range(n):
            p0, p1 = L.indptr[j], L.indptr[j + 1]
            y[j] /= L.data[p0]
            y[L.indices[p0 + 1 : p1]] -= L.data[p0 + 1 : p1] * y[j]
        z = y / self.d
        # Backward: L^T x = z, column-at-a-time from the right.
        x = z.copy()
        for j in range(n - 1, -1, -1):
            p0, p1 = L.indptr[j], L.indptr[j + 1]
            x[j] -= float(L.data[p0 + 1 : p1] @ x[L.indices[p0 + 1 : p1]])
            x[j] /= L.data[p0]
        return x

    def reconstruct_dense(self) -> np.ndarray:
        """Dense ``L @ diag(d) @ L.T`` — the oracle for correctness tests."""
        Ld = self.L.to_dense()
        return Ld @ np.diag(self.d) @ Ld.T


def ldlt_left_looking(
    A: CSCMatrix, inspection: Optional[CholeskyInspectionResult] = None
) -> LDLTFactors:
    """Left-looking simplicial LDLᵀ with decoupled symbolic analysis.

    Structure mirrors :func:`repro.kernels.cholesky.cholesky_left_looking`;
    the column factorization divides by the pivot ``d_j`` instead of taking a
    square root, and every update is scaled by the descendant's pivot.
    """
    if not A.is_square():
        raise ValueError("LDL^T requires a square symmetric matrix")
    if inspection is None:
        inspection = CholeskyInspector().inspect(A)
    n = A.n
    l_indptr = inspection.l_indptr
    l_indices = inspection.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    d = np.empty(n, dtype=np.float64)
    row_patterns = inspection.row_patterns

    f = np.zeros(n, dtype=np.float64)
    for j in range(n):
        rows_a = A.col_rows(j)
        vals_a = A.col_values(j)
        mask = rows_a >= j
        f[rows_a[mask]] = vals_a[mask]
        for k in row_patterns[j]:
            k = int(k)
            start, end = l_indptr[k], l_indptr[k + 1]
            rows_k = l_indices[start:end]
            pos = start + int(np.searchsorted(rows_k, j))
            coeff = l_data[pos] * d[k]
            seg = slice(pos, end)
            f[l_indices[seg]] -= l_data[seg] * coeff
        start, end = l_indptr[j], l_indptr[j + 1]
        rows_j = l_indices[start:end]
        pivot = f[j]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at column {j}")
        d[j] = pivot
        l_data[start] = 1.0
        if end > start + 1:
            l_data[start + 1 : end] = f[rows_j[1:]] / pivot
        f[rows_j] = 0.0
    L = CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)
    return LDLTFactors(L=L, d=d)
