"""Incomplete factorization reference kernels (IC(0) and ILU(0)).

The no-fill incomplete factorizations are the classic preconditioners of
iterative sparse solvers — exactly the workload §4.3 of the paper argues for:
a fixed pattern, hundreds of triangular-solve applications, so a one-time
symbolic/codegen cost is negligible.  Both kernels share the defining
property that makes them *trivially* specializable: the factor pattern **is**
the ``A`` pattern, so the symbolic phase reads the pattern instead of
computing fill.

* :func:`ic0_left_looking` — incomplete Cholesky, ``A ≈ L Lᵀ`` with
  ``pattern(L) = pattern(tril(A))``; exact on the pattern of ``A``
  (``(L Lᵀ)_{ij} = A_{ij}`` for every stored entry with ``i ≥ j``).
* :func:`ilu0_left_looking` — incomplete LU without pivoting,
  ``A ≈ L U`` with ``L`` unit lower triangular on ``tril(A)`` (explicit unit
  diagonal) and ``U`` upper triangular on ``triu(A)``; exact on the pattern
  of ``A``.

These left-looking formulations apply each column's updates in ascending
source order — the same per-entry operation sequence as the right-looking
:func:`repro.solvers.cg.incomplete_cholesky_ic0` and as the
Sympiler-generated kernels, so all three agree **bitwise** on the python
backend (asserted by the test-suite).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.lu import LUFactors
from repro.sparse.csc import CSCMatrix
from repro.symbolic.inspector import (
    IC0InspectionResult,
    IC0Inspector,
    ILU0InspectionResult,
    ILU0Inspector,
)

__all__ = ["ic0_left_looking", "ilu0_left_looking"]


def ic0_left_looking(
    A: CSCMatrix, inspection: Optional[IC0InspectionResult] = None
) -> CSCMatrix:
    """Left-looking IC(0): Cholesky restricted to the pattern of ``tril(A)``.

    Column ``j`` receives the update of every earlier column ``k`` with
    ``A[j, k] != 0``, restricted to the rows present in *both* column
    patterns (the dropped updates of IC(0)); the column is then scaled by the
    square root of its pivot.  Raises ``ValueError`` on a non-positive pivot
    (IC(0) existence is guaranteed for H-matrices, not for every SPD input).
    """
    if not A.is_square():
        raise ValueError("IC(0) requires a square matrix")
    if inspection is None:
        inspection = IC0Inspector().inspect(A)
    n = inspection.n
    l_indptr, l_indices = inspection.l_indptr, inspection.l_indices
    # Gather tril(A) values into the factor slots.
    l_data = np.empty(int(l_indptr[-1]), dtype=np.float64)
    for j in range(n):
        rows = A.col_rows(j)
        lo = int(np.searchsorted(rows, j))
        l_data[l_indptr[j] : l_indptr[j + 1]] = A.col_values(j)[lo:]
    for j in range(n):
        rows_j = l_indices[l_indptr[j] : l_indptr[j + 1]]
        for k in inspection.row_patterns[j]:
            k = int(k)
            k0, k1 = int(l_indptr[k]), int(l_indptr[k + 1])
            rows_k = l_indices[k0:k1]
            off = int(np.searchsorted(rows_k, j))
            ljk = l_data[k0 + off]
            common, ia, ib = np.intersect1d(
                rows_k[off:], rows_j, assume_unique=True, return_indices=True
            )
            l_data[l_indptr[j] + ib] -= l_data[k0 + off + ia] * ljk
        lp0, lp1 = int(l_indptr[j]), int(l_indptr[j + 1])
        d = l_data[lp0]
        if not d > 0.0:
            raise ValueError(f"IC(0) breakdown: non-positive pivot at column {j}")
        ljj = np.sqrt(d)
        l_data[lp0] = ljj
        l_data[lp0 + 1 : lp1] /= ljj
    return CSCMatrix(n, n, l_indptr.copy(), l_indices.copy(), l_data, check=False)


def ilu0_left_looking(
    A: CSCMatrix, inspection: Optional[ILU0InspectionResult] = None
) -> LUFactors:
    """Left-looking ILU(0): LU restricted to the pattern of ``A``, no pivoting.

    Column ``j`` receives the update of every earlier column ``k`` with
    ``A[k, j] != 0`` (the above-diagonal ``U`` pattern, finalized in place
    before use), restricted to the rows present in both patterns; the lower
    part is then scaled by the pivot ``U[j, j]``.  ``L`` stores an explicit
    unit diagonal so the generated triangular-solve kernels apply unchanged.
    """
    if not A.is_square():
        raise ValueError("ILU(0) requires a square matrix")
    if inspection is None:
        inspection = ILU0Inspector().inspect(A)
    n = inspection.n
    l_indptr, l_indices = inspection.l_indptr, inspection.l_indices
    u_indptr, u_indices = inspection.u_indptr, inspection.u_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    u_data = np.empty(int(u_indptr[-1]), dtype=np.float64)
    for j in range(n):
        rows = A.col_rows(j)
        vals = A.col_values(j)
        split = int(np.searchsorted(rows, j))
        u_data[u_indptr[j] : u_indptr[j + 1]] = vals[: split + 1]
        l_data[l_indptr[j] + 1 : l_indptr[j + 1]] = vals[split + 1 :]
    for j in range(n):
        u0, u1 = int(u_indptr[j]), int(u_indptr[j + 1])
        rows_u = u_indices[u0:u1]
        lj0, lj1 = int(l_indptr[j]), int(l_indptr[j + 1])
        rows_lj = l_indices[lj0 + 1 : lj1]
        for t_local, k in enumerate(rows_u[:-1]):
            k = int(k)
            ukj = u_data[u0 + t_local]
            k0, k1 = int(l_indptr[k]), int(l_indptr[k + 1])
            rows_k = l_indices[k0 + 1 : k1]
            off_u = int(np.searchsorted(rows_u, k + 1))
            common, ia, ib = np.intersect1d(
                rows_k, rows_u[off_u:], assume_unique=True, return_indices=True
            )
            u_data[u0 + off_u + ib] -= l_data[k0 + 1 + ia] * ukj
            common, ia, ib = np.intersect1d(
                rows_k, rows_lj, assume_unique=True, return_indices=True
            )
            l_data[lj0 + 1 + ib] -= l_data[k0 + 1 + ia] * ukj
        piv = u_data[u1 - 1]
        if piv == 0.0:
            raise ValueError(f"ILU(0) breakdown: zero pivot at column {j}")
        l_data[lj0] = 1.0
        l_data[lj0 + 1 : lj1] /= piv
    L = CSCMatrix(n, n, l_indptr.copy(), l_indices.copy(), l_data, check=False)
    U = CSCMatrix(n, n, u_indptr.copy(), u_indices.copy(), u_data, check=False)
    return LUFactors(L=L, U=U)
