"""Sparse Cholesky factorization kernels.

Three reference implementations of ``A = L Lᵀ`` on CSC storage:

* :func:`cholesky_up_looking` — the classical CSparse-style up-looking
  algorithm.  Symbolic work (``ereach``) happens *inside* the numeric loop;
  it serves as an independent correctness oracle.
* :func:`cholesky_left_looking` — the paper's Figure 4 algorithm with the
  symbolic phase fully decoupled: the caller supplies a
  :class:`~repro.symbolic.inspector.CholeskyInspectionResult` whose row
  patterns (prune-sets) and factor pattern are used verbatim, so the numeric
  loop touches only numeric arrays.
* :func:`cholesky_supernodal` — the decoupled supernodal (VS-Block) variant:
  columns are processed one supernode at a time with dense panel updates,
  dense block Cholesky and dense triangular solves.

All variants produce the factor on the same predicted pattern, so results can
be compared entry-for-entry.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.kernels.dense import (
    NotPositiveDefiniteError,
    dense_cholesky,
    dense_solve_transposed_right,
    small_cholesky,
)
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.fill_pattern import _upper_pattern, ereach
from repro.symbolic.inspector import CholeskyInspectionResult, CholeskyInspector

__all__ = [
    "cholesky_up_looking",
    "cholesky_left_looking",
    "cholesky_supernodal",
    "NotPositiveDefiniteError",
]


def _lower_column(A: CSCMatrix, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Rows and values of column ``j`` of ``A`` at/below the diagonal."""
    rows = A.col_rows(j)
    vals = A.col_values(j)
    mask = rows >= j
    return rows[mask], vals[mask]


def _require_spd_input(A: CSCMatrix) -> None:
    if not A.is_square():
        raise ValueError("Cholesky requires a square matrix")


# --------------------------------------------------------------------------- #
# Up-looking (coupled symbolic + numeric) — correctness oracle
# --------------------------------------------------------------------------- #
def cholesky_up_looking(A: CSCMatrix) -> CSCMatrix:
    """Up-looking sparse Cholesky (CSparse ``cs_chol`` style).

    Row ``k`` of ``L`` is computed by a sparse triangular solve against the
    already-computed leading factor; the row pattern is obtained from the
    elimination tree on the fly.
    """
    _require_spd_input(A)
    n = A.n
    parent = elimination_tree(A)
    upper = _upper_pattern(A)
    inspection = CholeskyInspector().inspect(A)
    l_indptr = inspection.l_indptr
    l_indices = inspection.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    # Cursor of the next free slot in each column (the diagonal slot is the
    # first of every column and is written last, when the column's row is k=j).
    fill = l_indptr[:-1].astype(np.int64).copy() + 1

    x = np.zeros(n, dtype=np.float64)
    for k in range(n):
        pattern = ereach(A, k, parent, _upper=upper)
        # Scatter the upper part of column k of A (rows <= k) into x.
        rows_u = upper.col_rows(k)
        vals_u = upper.col_values(k)
        mask = rows_u <= k
        x[rows_u[mask]] = vals_u[mask]
        d = x[k]
        x[k] = 0.0
        for j in pattern:
            j = int(j)
            start = l_indptr[j]
            ljj = l_data[start]
            lkj = x[j] / ljj
            x[j] = 0.0
            # Apply the update of column j to the remaining entries of row k.
            for p in range(start + 1, fill[j]):
                i = l_indices[p]
                if i < k:
                    x[i] -= l_data[p] * lkj
            d -= lkj * lkj
            # Store L[k, j] in column j.
            slot = fill[j]
            if l_indices[slot] != k:
                raise AssertionError("factor pattern does not match the numeric fill order")
            l_data[slot] = lkj
            fill[j] += 1
        if not d > 0.0:
            raise NotPositiveDefiniteError(f"non-positive pivot at column {k}")
        l_data[l_indptr[k]] = math.sqrt(d)
    return CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)


# --------------------------------------------------------------------------- #
# Left-looking simplicial (decoupled) — Figure 4 of the paper
# --------------------------------------------------------------------------- #
def cholesky_left_looking(
    A: CSCMatrix, inspection: Optional[CholeskyInspectionResult] = None
) -> CSCMatrix:
    """Left-looking simplicial Cholesky with decoupled symbolic analysis.

    Parameters
    ----------
    A:
        SPD matrix (full symmetric or lower-triangular storage).
    inspection:
        A pre-computed symbolic inspection.  When omitted, the inspector is
        run here (and its cost is *not* part of the numeric phase, mirroring
        the decoupling the paper advocates).
    """
    _require_spd_input(A)
    if inspection is None:
        inspection = CholeskyInspector().inspect(A)
    n = A.n
    l_indptr = inspection.l_indptr
    l_indices = inspection.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    row_patterns = inspection.row_patterns

    f = np.zeros(n, dtype=np.float64)
    for j in range(n):
        # f = A(j:n, j)
        rows_a, vals_a = _lower_column(A, j)
        f[rows_a] = vals_a
        # Update phase: subtract contributions of every column in the
        # prune-set (columns k < j with L[j, k] != 0).
        for k in row_patterns[j]:
            k = int(k)
            start, end = l_indptr[k], l_indptr[k + 1]
            rows_k = l_indices[start:end]
            # Position of row j inside column k (always present by definition
            # of the prune-set).
            pos = start + int(np.searchsorted(rows_k, j))
            ljk = l_data[pos]
            seg = slice(pos, end)
            f[l_indices[seg]] -= l_data[seg] * ljk
        # Column factorization phase.
        start, end = l_indptr[j], l_indptr[j + 1]
        rows_j = l_indices[start:end]
        d = f[j]
        if not d > 0.0:
            raise NotPositiveDefiniteError(f"non-positive pivot at column {j}")
        ljj = math.sqrt(d)
        l_data[start] = ljj
        if end > start + 1:
            l_data[start + 1 : end] = f[rows_j[1:]] / ljj
        # Clear the work vector for the next column.
        f[rows_j] = 0.0
    return CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)


# --------------------------------------------------------------------------- #
# Left-looking supernodal (decoupled, VS-Block reference)
# --------------------------------------------------------------------------- #
def cholesky_supernodal(
    A: CSCMatrix,
    inspection: Optional[CholeskyInspectionResult] = None,
    *,
    small_block_limit: int = 3,
) -> CSCMatrix:
    """Supernodal left-looking Cholesky with decoupled symbolic analysis.

    Columns are processed one supernode at a time: the supernode's columns are
    gathered into a dense trapezoidal panel, updates from descendant columns
    are applied as dense rank-1 panel updates, the diagonal block is factored
    with a dense Cholesky (hand-unrolled below ``small_block_limit``) and the
    off-diagonal panel finished with a dense triangular solve.
    """
    _require_spd_input(A)
    if inspection is None:
        inspection = CholeskyInspector().inspect(A)
    n = A.n
    l_indptr = inspection.l_indptr
    l_indices = inspection.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    row_patterns = inspection.row_patterns
    supernodes = inspection.supernodes

    rowmap = np.full(n, -1, dtype=np.int64)
    for s, c0, c1 in supernodes.iter_supernodes():
        w = c1 - c0
        rows = l_indices[l_indptr[c0] : l_indptr[c0 + 1]]
        n_rows = rows.size
        rowmap[rows] = np.arange(n_rows, dtype=np.int64)
        panel = np.zeros((n_rows, w), dtype=np.float64)
        # Scatter A's columns of this supernode into the panel.
        for jj in range(w):
            c = c0 + jj
            rows_a, vals_a = _lower_column(A, c)
            panel[rowmap[rows_a], jj] = vals_a
        # Update phase: every column k < c0 that appears in the prune-set of
        # some column of the supernode contributes a rank-1 panel update.
        updating: set[int] = set()
        for jj in range(w):
            for k in row_patterns[c0 + jj]:
                k = int(k)
                if k < c0:
                    updating.add(k)
        for k in sorted(updating):
            start, end = l_indptr[k], l_indptr[k + 1]
            rows_k = l_indices[start:end]
            vals_k = l_data[start:end]
            lo = int(np.searchsorted(rows_k, c0))
            rows_ge = rows_k[lo:]
            vals_ge = vals_k[lo:]
            # Multipliers: the entries of column k in the supernode's rows.
            in_block = rows_ge < c1
            multipliers = np.zeros(w, dtype=np.float64)
            multipliers[rows_ge[in_block] - c0] = vals_ge[in_block]
            panel[rowmap[rows_ge], :] -= np.outer(vals_ge, multipliers)
        # Factorize the diagonal block and finish the off-diagonal panel.
        diag_block = panel[:w, :w]
        try:
            l_diag = (
                small_cholesky(diag_block)
                if w <= small_block_limit
                else dense_cholesky(diag_block)
            )
        except NotPositiveDefiniteError as exc:
            raise NotPositiveDefiniteError(
                f"supernode starting at column {c0}: {exc}"
            ) from exc
        if n_rows > w:
            off_diag = dense_solve_transposed_right(l_diag, panel[w:, :])
        else:
            off_diag = np.zeros((0, w), dtype=np.float64)
        # Scatter back into the compressed factor.
        for jj in range(w):
            c = c0 + jj
            start = l_indptr[c]
            width_part = w - jj
            l_data[start : start + width_part] = l_diag[jj:, jj]
            l_data[start + width_part : l_indptr[c + 1]] = off_diag[:, jj]
        rowmap[rows] = -1
    return CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)
