"""FLOP counting.

Figures 6 and 7 of the paper report performance in floating-point operations
per second.  Since every compared variant performs (essentially) the same
useful arithmetic for a given pattern, GFLOP/s is simply a pattern-dependent
constant divided by the measured time — which is how the harness computes it.
The conventions used here are stated explicitly so the numbers are
reproducible:

* Triangular solve over a reach-set ``R``:
  ``Σ_{j∈R} [1 division + 2·(nnz(L[:,j]) − 1) multiply/subtract]``.
* Cholesky with column counts ``c_j = nnz(L[:,j])`` (diagonal included):
  ``Σ_j [1 sqrt + (c_j − 1) divisions + (c_j − 1)·c_j multiply/subtract]``
  (the rank-1 update of the trailing submatrix touches ``(c_j−1)c_j/2``
  entries, each a multiply and a subtract).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = ["triangular_solve_flops", "cholesky_flops", "gflops"]


def triangular_solve_flops(
    L: CSCMatrix, reach: Optional[Sequence[int] | np.ndarray] = None
) -> int:
    """FLOPs of a sparse triangular solve restricted to ``reach``.

    With ``reach=None`` the count covers all columns (dense RHS).
    """
    counts = np.diff(L.indptr).astype(np.int64)
    if reach is None:
        selected = counts
    else:
        reach = np.asarray(reach, dtype=np.int64)
        selected = counts[reach]
    return int(np.sum(1 + 2 * (selected - 1)))


def cholesky_flops(l_col_counts: np.ndarray | CSCMatrix) -> int:
    """FLOPs of a sparse Cholesky given the factor's column counts.

    Accepts either the column-count vector of ``L`` or the factor itself.
    """
    if isinstance(l_col_counts, CSCMatrix):
        counts = np.diff(l_col_counts.indptr).astype(np.int64)
    else:
        counts = np.asarray(l_col_counts, dtype=np.int64)
    below = counts - 1
    return int(np.sum(1 + below + below * counts))


def gflops(flop_count: int, seconds: float) -> float:
    """Convert a FLOP count and a wall-clock time to GFLOP/s."""
    if seconds <= 0.0:
        return float("inf")
    return flop_count / seconds / 1.0e9
