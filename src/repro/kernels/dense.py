"""Dense micro-kernels used by supernodal sparse code.

The VS-Block transformation turns a sparse kernel into a sequence of dense
sub-kernels on variable-sized blocks: a dense Cholesky on the supernode's
diagonal block, dense triangular solves for its off-diagonal panel and dense
rank updates between panels (§2.3.2 of the paper).

Two regimes are covered, mirroring §4.2's discussion:

* NumPy/BLAS-backed routines for blocks large enough that library calls pay
  off (:func:`dense_cholesky`, :func:`dense_lower_solve`, ...), and
* specialized unrolled kernels for tiny blocks (:func:`small_cholesky`,
  :func:`small_lower_solve`), the analogue of Sympiler generating its own
  code for small dense sub-kernels instead of calling BLAS.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "dense_cholesky",
    "dense_ldlt",
    "dense_lower_solve",
    "dense_solve_transposed_right",
    "small_cholesky",
    "small_lower_solve",
    "SMALL_KERNEL_LIMIT",
    "NotPositiveDefiniteError",
    "SingularMatrixError",
]

#: Largest block order for which the hand-unrolled kernels are available.
SMALL_KERNEL_LIMIT = 3


class NotPositiveDefiniteError(ValueError):
    """Raised when a (block) pivot is not strictly positive."""


class SingularMatrixError(ValueError):
    """Raised when an LDLᵀ pivot is exactly zero (matrix not factorizable)."""


def dense_cholesky(A: np.ndarray) -> np.ndarray:
    """Lower-triangular Cholesky factor of a dense SPD matrix.

    A plain right-looking factorization with NumPy-vectorized updates; raises
    :class:`NotPositiveDefiniteError` if a pivot is non-positive.
    """
    A = np.array(A, dtype=np.float64, copy=True)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("dense_cholesky expects a square matrix")
    n = A.shape[0]
    for k in range(n):
        pivot = A[k, k]
        if not pivot > 0.0:
            raise NotPositiveDefiniteError(
                f"non-positive pivot {pivot!r} at column {k}"
            )
        pivot = math.sqrt(pivot)
        A[k, k] = pivot
        if k + 1 < n:
            A[k + 1 :, k] /= pivot
            # Symmetric rank-1 update of the trailing submatrix (lower part).
            A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k + 1 :, k])
    return np.tril(A)


def dense_ldlt(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LDLᵀ factorization of a dense symmetric matrix (no pivoting).

    Returns ``(L, d)`` with ``L`` unit lower triangular and ``d`` the diagonal
    of ``D``, so ``A = L @ diag(d) @ L.T``.  Pivots may be negative (symmetric
    indefinite input) but must be nonzero; a zero pivot raises
    :class:`SingularMatrixError`.
    """
    A = np.array(A, dtype=np.float64, copy=True)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("dense_ldlt expects a square matrix")
    n = A.shape[0]
    d = np.empty(n, dtype=np.float64)
    for k in range(n):
        pivot = A[k, k]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at column {k}")
        d[k] = pivot
        A[k, k] = 1.0
        if k + 1 < n:
            A[k + 1 :, k] /= pivot
            # Trailing update: A[i, j] -= l_ik * d_k * l_jk (lower part).
            A[k + 1 :, k + 1 :] -= np.outer(A[k + 1 :, k], A[k + 1 :, k]) * pivot
    return np.tril(A), d


def dense_lower_solve(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` for a dense lower-triangular ``L``.

    ``B`` may be a vector or a matrix of right-hand sides; the result has the
    same shape as ``B``.
    """
    L = np.asarray(L, dtype=np.float64)
    B = np.array(B, dtype=np.float64, copy=True)
    n = L.shape[0]
    if L.shape != (n, n):
        raise ValueError("L must be square")
    if B.shape[0] != n:
        raise ValueError("dimension mismatch between L and B")
    for k in range(n):
        B[k] = B[k] / L[k, k]
        if k + 1 < n:
            B[k + 1 :] -= np.multiply.outer(L[k + 1 :, k], B[k]) if B.ndim > 1 else L[k + 1 :, k] * B[k]
    return B


def dense_solve_transposed_right(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``X Lᵀ = B`` for ``X``, with ``L`` dense lower triangular.

    This is the panel operation of supernodal Cholesky: the off-diagonal rows
    of the assembled panel are multiplied by ``L⁻ᵀ`` of the diagonal block.
    Equivalent to solving ``L Xᵀ = Bᵀ`` by forward substitution.
    """
    L = np.asarray(L, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    squeeze = False
    if B.ndim == 1:
        B = B[np.newaxis, :]
        squeeze = True
    X = dense_lower_solve(L, B.T.copy()).T
    return X[0] if squeeze else X


# --------------------------------------------------------------------------- #
# Specialized unrolled kernels for tiny blocks
# --------------------------------------------------------------------------- #
def _chol_1(a: np.ndarray) -> np.ndarray:
    if not a[0, 0] > 0.0:
        raise NotPositiveDefiniteError("non-positive 1x1 pivot")
    return np.array([[math.sqrt(a[0, 0])]])


def _chol_2(a: np.ndarray) -> np.ndarray:
    l00 = math.sqrt(a[0, 0])
    l10 = a[1, 0] / l00
    d = a[1, 1] - l10 * l10
    if not d > 0.0:
        raise NotPositiveDefiniteError("non-positive 2x2 trailing pivot")
    return np.array([[l00, 0.0], [l10, math.sqrt(d)]])


def _chol_3(a: np.ndarray) -> np.ndarray:
    l00 = math.sqrt(a[0, 0])
    l10 = a[1, 0] / l00
    l20 = a[2, 0] / l00
    d1 = a[1, 1] - l10 * l10
    if not d1 > 0.0:
        raise NotPositiveDefiniteError("non-positive 3x3 pivot (1)")
    l11 = math.sqrt(d1)
    l21 = (a[2, 1] - l20 * l10) / l11
    d2 = a[2, 2] - l20 * l20 - l21 * l21
    if not d2 > 0.0:
        raise NotPositiveDefiniteError("non-positive 3x3 pivot (2)")
    return np.array([[l00, 0.0, 0.0], [l10, l11, 0.0], [l20, l21, math.sqrt(d2)]])


_SMALL_CHOL = {1: _chol_1, 2: _chol_2, 3: _chol_3}


def small_cholesky(A: np.ndarray) -> np.ndarray:
    """Unrolled Cholesky for blocks of order 1–3.

    Verifies the unrolled path stays available for the block orders where the
    paper notes BLAS overheads dominate; larger blocks fall back to
    :func:`dense_cholesky`.
    """
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("small_cholesky expects a square matrix")
    if not has_small_kernel(n):
        return dense_cholesky(A)
    return _SMALL_CHOL[n](A)


def has_small_kernel(n: int) -> bool:
    """True when an unrolled kernel exists for blocks of order ``n``."""
    return 1 <= n <= SMALL_KERNEL_LIMIT


def small_lower_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Unrolled forward substitution ``L x = b`` for orders 1–3.

    Falls back to :func:`dense_lower_solve` for larger blocks.
    """
    L = np.asarray(L, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = L.shape[0]
    if n == 1:
        return np.array([b[0] / L[0, 0]])
    if n == 2:
        x0 = b[0] / L[0, 0]
        x1 = (b[1] - L[1, 0] * x0) / L[1, 1]
        return np.array([x0, x1])
    if n == 3:
        x0 = b[0] / L[0, 0]
        x1 = (b[1] - L[1, 0] * x0) / L[1, 1]
        x2 = (b[2] - L[2, 0] * x0 - L[2, 1] * x1) / L[2, 2]
        return np.array([x0, x1, x2])
    return dense_lower_solve(L, b)
