"""Cumulative serving-layer metrics: counters, histograms, latency quantiles.

The service's observable surface.  Everything here is cheap to record on the
hot path (one lock, integer bumps, a bounded reservoir append) and surfaced
as one JSON-friendly snapshot through the ``stats`` endpoint, which the tests
and the CI smoke step assert on — the coalescing/amortization story measured,
not assumed.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List

__all__ = ["ServiceMetrics", "percentile"]

#: Latency samples kept for quantile estimation (a sliding reservoir; enough
#: for stable p95 under the smoke workloads without unbounded growth).
DEFAULT_LATENCY_SAMPLES = 4096


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples`` by linear interpolation.

    Stdlib-only (the wire layer keeps numpy out of metric aggregation so a
    thin monitoring client could reuse it); empty input returns 0.0.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ServiceMetrics:
    """Thread-safe cumulative counters of one :class:`SolverService`.

    Counters (``incr``/``snapshot`` names):

    * ``registrations`` / ``compile_cold`` / ``compile_warm`` — pattern
      registrations and whether they generated code or reused cached
      artifacts (in-memory or on-disk),
    * ``solves_ok`` / ``solves_failed`` — per-request outcomes,
    * ``batches`` — coalesced dispatches (the batch-size histogram records
      their sizes; ``coalescing_ratio`` is requests per dispatch),
    * ``rejected`` — admission-control backpressure rejections,
    * ``patterns_evicted`` — LRU/explicit evictions of registered patterns.
    """

    def __init__(self, *, max_latency_samples: int = DEFAULT_LATENCY_SAMPLES) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._batch_sizes: Dict[int, int] = {}
        self._latencies: Deque[float] = deque(maxlen=max_latency_samples)
        self._latency_count = 0
        self._latency_total = 0.0

    # ------------------------------------------------------------------ #
    def incr(self, name: str, n: int = 1) -> None:
        """Bump one named counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def count(self, name: str) -> int:
        """Current value of one named counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe_batch(self, size: int) -> None:
        """Record one coalesced dispatch of ``size`` requests."""
        if size <= 0:
            return
        with self._lock:
            self._counters["batches"] = self._counters.get("batches", 0) + 1
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def observe_latency(self, seconds: float) -> None:
        """Record one request's enqueue-to-completion latency."""
        with self._lock:
            self._latencies.append(float(seconds))
            self._latency_count += 1
            self._latency_total += float(seconds)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """One consistent JSON-friendly view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            histogram = dict(self._batch_sizes)
            samples = list(self._latencies)
            latency_count = self._latency_count
            latency_total = self._latency_total
        solves = counters.get("solves_ok", 0) + counters.get("solves_failed", 0)
        batches = counters.get("batches", 0)
        dispatched = sum(size * count for size, count in histogram.items())
        return {
            "counters": counters,
            "batch_size_histogram": {str(k): v for k, v in sorted(histogram.items())},
            "solves": solves,
            "coalescing_ratio": (dispatched / batches) if batches else 0.0,
            "max_batch_size": max(histogram) if histogram else 0,
            "latency": {
                "count": latency_count,
                "mean_seconds": (latency_total / latency_count) if latency_count else 0.0,
                "p50_seconds": percentile(samples, 50.0),
                "p95_seconds": percentile(samples, 95.0),
            },
        }
