"""Cumulative serving-layer metrics: counters, histograms, latency quantiles.

The service's observable surface.  Everything here is cheap to record on the
hot path (one lock, integer bumps, a bounded reservoir append) and surfaced
as one JSON-friendly snapshot through the ``stats`` endpoint, which the tests
and the CI smoke step assert on — the coalescing/amortization story measured,
not assumed.

The latency reservoir and the percentile math are re-homed in
:mod:`repro.observe.registry` (:class:`~repro.observe.registry.Reservoir`);
:func:`percentile` stays importable from here for compatibility.  A service's
metrics are also visible through the unified observability layer: the
session registers each instance as a pull-mode collector (``service``,
auto-suffixed per instance) in the default
:class:`~repro.observe.registry.MetricsRegistry`, so the Prometheus export
(the ``metrics`` wire verb) carries ``repro_service_*`` gauges without any
extra hot-path cost.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.observe.registry import (
    DEFAULT_RESERVOIR_SAMPLES,
    MetricsRegistry,
    Reservoir,
    get_registry,
    percentile,
)

__all__ = ["ServiceMetrics", "percentile"]

#: Latency samples kept for quantile estimation (a sliding reservoir; enough
#: for stable p95 under the smoke workloads without unbounded growth).
DEFAULT_LATENCY_SAMPLES = DEFAULT_RESERVOIR_SAMPLES


class ServiceMetrics:
    """Thread-safe cumulative counters of one :class:`SolverService`.

    Counters (``incr``/``snapshot`` names):

    * ``registrations`` / ``compile_cold`` / ``compile_warm`` — pattern
      registrations and whether they generated code or reused cached
      artifacts (in-memory or on-disk),
    * ``solves_ok`` / ``solves_failed`` — per-request outcomes,
    * ``batches`` — coalesced dispatches (the batch-size histogram records
      their sizes; ``coalescing_ratio`` is requests per dispatch),
    * ``rejected`` — admission-control backpressure rejections,
    * ``patterns_evicted`` — LRU/explicit evictions of registered patterns.
    """

    def __init__(self, *, max_latency_samples: int = DEFAULT_LATENCY_SAMPLES) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._batch_sizes: Dict[int, int] = {}
        self._latency = Reservoir(maxlen=max_latency_samples)
        self._collector_name: Optional[str] = None
        self._collector_registry: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------ #
    def incr(self, name: str, n: int = 1) -> None:
        """Bump one named counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def count(self, name: str) -> int:
        """Current value of one named counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe_batch(self, size: int) -> None:
        """Record one coalesced dispatch of ``size`` requests."""
        if size <= 0:
            return
        with self._lock:
            self._counters["batches"] = self._counters.get("batches", 0) + 1
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def observe_latency(self, seconds: float) -> None:
        """Record one request's enqueue-to-completion latency."""
        self._latency.observe(seconds)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """One consistent JSON-friendly view of every metric.

        The latency quantiles come from **one** copy of the reservoir taken
        under its lock (sorted once for both p50 and p95), so a snapshot can
        never report a p95 below its own p50 because a concurrent solve
        landed between the two reads.
        """
        with self._lock:
            counters = dict(self._counters)
            histogram = dict(self._batch_sizes)
        solves = counters.get("solves_ok", 0) + counters.get("solves_failed", 0)
        batches = counters.get("batches", 0)
        dispatched = sum(size * count for size, count in histogram.items())
        return {
            "counters": counters,
            "batch_size_histogram": {str(k): v for k, v in sorted(histogram.items())},
            "solves": solves,
            "coalescing_ratio": (dispatched / batches) if batches else 0.0,
            "max_batch_size": max(histogram) if histogram else 0,
            "latency": self._latency.summary(qs=(50.0, 95.0)),
        }

    # ------------------------------------------------------------------ #
    # Unified-registry integration (pull-mode; see repro.observe.adapters)
    # ------------------------------------------------------------------ #
    def register_collector(
        self, registry: Optional[MetricsRegistry] = None, *, name: str = "service"
    ) -> str:
        """Expose this instance as a pull collector in ``registry``.

        Returns the actual collector name (auto-suffixed ``service_2``, ...
        when several services run in one process).  Idempotent per instance.
        """
        if self._collector_name is not None:
            return self._collector_name
        reg = registry or get_registry()
        self._collector_name = reg.register_collector(name, self.snapshot)
        self._collector_registry = reg
        return self._collector_name

    def unregister_collector(self) -> None:
        """Remove this instance's pull collector (no-op when never registered)."""
        if self._collector_name is not None and self._collector_registry is not None:
            self._collector_registry.unregister_collector(self._collector_name)
        self._collector_name = None
        self._collector_registry = None
