"""The sharded solver fleet: N service processes behind one endpoint.

:class:`ShardFleet` spawns ``shards`` worker processes (each a full
``python -m repro.service`` server) over the **shared on-disk compiled-
kernel cache** and fronts them with a consistent-hash router: a pattern's
fingerprint (:func:`~repro.compiler.codegen.runtime.pattern_fingerprint`)
pins it to one shard, so its compiled kernel, pinned artifacts and numeric
factor stay hot there while distinct patterns spread across the fleet.

The fleet implements the same :class:`~repro.service.endpoint.SolverEndpoint`
surface as the in-process :class:`~repro.service.session.SolverService` and
the single-connection :class:`~repro.service.client.ServiceClient` — code
written against one runs against the others unchanged.

**Failure model.**  Shard death is detected lazily, at the first call that
hits the dead connection (:class:`ShardUnavailableError` — retryable).  The
router then recovers under a generation-counted lock (concurrent failures
collapse to one recovery) and retries the caller's request once:

* ``respawn=True`` (default): a replacement process is spawned on the same
  slot and every pattern routed there is re-registered.  Because handle ids
  are deterministic (a hash of the pattern/kernel/ordering/options key) and
  the compiled artifacts live in the shared disk cache, the replacement
  comes up **warm — zero recompiles** — which the fleet counter-asserts via
  the handle's ``warm`` flag (``warm_reregisters`` vs ``cold_reregisters``).
* ``respawn=False``: the slot leaves the hash ring and its patterns
  rebalance onto the survivors (consistent hashing moves only the dead
  shard's share).

Observability: :meth:`metrics_text` merges every shard's Prometheus page
into one scrape, relabelled with ``shard="i"``, plus the fleet's own
``repro_fleet_*`` counters (deaths, failovers, warm/cold re-registers) and
per-shard health gauges (up/uptime/in-flight/registered patterns).
:meth:`health` aggregates every shard's ``health`` wire verb;
:meth:`chrome_trace` drains every shard's span buffer and merges it with the
fleet client's own spans into one clock-offset-corrected Chrome trace (one
``pid`` per shard process) — pass ``trace=True`` so worker processes start
with tracing enabled, and every lifecycle edge (spawn, death, failover,
re-register) lands in the structured event log
(:mod:`repro.observe.events`).
"""

from __future__ import annotations

import json
import os
import re
import select
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.compiler.codegen.runtime import pattern_fingerprint
from repro.compiler.options import SympilerOptions
from repro.observe import events as observe_events
from repro.observe import trace as observe_trace
from repro.service.client import RemoteHandle, ServiceClient
from repro.service.errors import PatternEvictedError, ShardUnavailableError
from repro.service.router import ConsistentHashRing
from repro.sparse.csc import CSCMatrix

__all__ = ["ShardFleet"]

_BANNER = re.compile(r"listening on ([\d.]+):(\d+)")

#: Failures that mean "this shard (connection) is gone", triggering failover.
_SHARD_FAILURES = (ShardUnavailableError, ConnectionError, OSError)


@dataclass
class _Shard:
    """One live worker process and the fleet's connection to it."""

    slot: int
    generation: int
    process: subprocess.Popen
    address: Tuple[str, int]
    client: ServiceClient


@dataclass
class _FleetPattern:
    """Everything needed to re-register a pattern on a replacement shard."""

    handle: RemoteHandle
    A: CSCMatrix
    kernel: str
    ordering: str
    options: Optional[Union[SympilerOptions, Dict]]
    fingerprint: str
    lock: threading.Lock = field(default_factory=threading.Lock)


class ShardFleet:
    """N solver-service processes behind one consistent-hash router.

    ``shards`` worker processes are spawned eagerly; each binds an ephemeral
    port on ``127.0.0.1`` and shares the process environment — in particular
    ``REPRO_SYMPILER_CACHE`` (overridable via ``cache_dir``), so all shards
    and any later replacements reuse one compiled-kernel disk cache.

    The constructor arguments after ``shards`` mirror the worker CLI
    (``python -m repro.service``).  ``respawn`` selects the failure policy
    (replace in place vs. rebalance to survivors); ``spawn_timeout`` bounds
    each worker's startup.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        backend: str = "python",
        window_ms: float = 2.0,
        max_batch: int = 32,
        max_in_flight: int = 256,
        max_patterns: int = 32,
        respawn: bool = True,
        cache_dir: Optional[Union[str, Path]] = None,
        spawn_timeout: float = 60.0,
        request_timeout: Optional[float] = 60.0,
        vnodes: int = 64,
        trace: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.backend = backend
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self.max_in_flight = int(max_in_flight)
        self.max_patterns = int(max_patterns)
        self.respawn = bool(respawn)
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.spawn_timeout = float(spawn_timeout)
        self.request_timeout = request_timeout
        #: ``trace=True`` starts every worker with tracing enabled (the
        #: ``--trace`` worker flag) so :meth:`chrome_trace` has shard-side
        #: spans to merge.  The fleet client's own tracing is controlled
        #: separately via :func:`repro.observe.enable`.
        self.trace = bool(trace)
        self.started_at = time.time()
        self.last_failover_at: Optional[float] = None
        self._ring = ConsistentHashRing(vnodes=vnodes)
        self._shards: Dict[int, _Shard] = {}
        self._patterns: Dict[str, _FleetPattern] = {}
        self._lock = threading.Lock()  # shards/patterns/counters membership
        self._recover_lock = threading.Lock()  # serializes shard recovery
        self._closed = False
        self.counters: Dict[str, int] = {
            "shard_deaths": 0,
            "failovers": 0,
            "reregisters": 0,
            "warm_reregisters": 0,
            "cold_reregisters": 0,
            "respawns": 0,
            "rebalances": 0,
        }
        try:
            for slot in range(shards):
                self._shards[slot] = self._spawn(slot, generation=0)
                self._ring.add(slot)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Process lifecycle
    # ------------------------------------------------------------------ #
    def _worker_command(self) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--backend",
            self.backend,
            "--window-ms",
            str(self.window_ms),
            "--max-batch",
            str(self.max_batch),
            "--max-in-flight",
            str(self.max_in_flight),
            "--max-patterns",
            str(self.max_patterns),
        ] + (["--trace"] if self.trace else [])

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # The worker must import this very package even when the parent runs
        # from a source tree that is on sys.path but not in PYTHONPATH.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + os.pathsep + existing if existing else package_root
            )
        if self.cache_dir is not None:
            env["REPRO_SYMPILER_CACHE"] = self.cache_dir
        return env

    def _spawn(self, slot: int, generation: int) -> _Shard:
        process = subprocess.Popen(
            self._worker_command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._worker_env(),
            text=True,
        )
        try:
            address = self._await_banner(process, slot)
            client = ServiceClient(address, timeout=self.request_timeout)
        except BaseException:
            process.kill()
            process.wait(timeout=10)
            raise
        observe_events.emit(
            "shard_spawn",
            slot=slot,
            generation=generation,
            pid=process.pid,
            address=f"{address[0]}:{address[1]}",
        )
        return _Shard(
            slot=slot,
            generation=generation,
            process=process,
            address=address,
            client=client,
        )

    def _await_banner(self, process: subprocess.Popen, slot: int) -> Tuple[str, int]:
        """Wait for the worker's ``listening on host:port`` startup line."""
        deadline = time.monotonic() + self.spawn_timeout
        assert process.stdout is not None
        while True:
            if process.poll() is not None:
                raise ShardUnavailableError(
                    f"shard {slot} exited during startup "
                    f"(returncode {process.returncode})"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardUnavailableError(
                    f"shard {slot} did not report its address within "
                    f"{self.spawn_timeout}s"
                )
            ready, _, _ = select.select([process.stdout], [], [], min(remaining, 0.2))
            if not ready:
                continue
            line = process.stdout.readline()
            if not line:
                continue  # EOF races with poll() above
            match = _BANNER.search(line)
            if match is None:
                raise ShardUnavailableError(
                    f"shard {slot} printed an unexpected banner: {line!r}"
                )
            return match.group(1), int(match.group(2))

    def _retire(self, shard: _Shard) -> None:
        try:
            shard.client.close()
        except Exception:
            pass
        if shard.process.poll() is None:
            shard.process.kill()
        try:
            shard.process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill is forceful
            pass
        if shard.process.stdout is not None:
            shard.process.stdout.close()

    # ------------------------------------------------------------------ #
    # Routing and recovery
    # ------------------------------------------------------------------ #
    def _route(self, fingerprint: str) -> _Shard:
        if self._closed:
            raise RuntimeError("fleet is closed")
        try:
            slot = self._ring.route(fingerprint)
        except LookupError:
            raise ShardUnavailableError(
                "no live shards remain in the fleet"
            ) from None
        with self._lock:
            shard = self._shards.get(slot)
        if shard is None:  # pragma: no cover - membership races are tiny
            raise ShardUnavailableError(f"shard {slot} is being replaced")
        return shard

    def _record_for(self, handle: Union[RemoteHandle, str]) -> _FleetPattern:
        handle_id = (
            handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        )
        with self._lock:
            record = self._patterns.get(handle_id)
        if record is None:
            raise PatternEvictedError(
                f"no fleet-registered pattern for handle {handle_id!r}"
            )
        return record

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[counter] += amount

    def _note_failover(self, shard: Optional[_Shard]) -> None:
        """Count one failover, stamp it for the health surface, log the event."""
        with self._lock:
            self.counters["failovers"] += 1
            self.last_failover_at = time.time()
        observe_events.emit(
            "failover", slot=None if shard is None else shard.slot
        )

    def _recover(self, slot: int, generation: int) -> None:
        """Replace (or retire) a dead shard; idempotent per generation.

        Every caller that observed the failure races here; the generation
        check makes all but the first a no-op, so one death costs one
        respawn no matter how many requests were in flight on it.
        """
        with self._recover_lock:
            with self._lock:
                shard = self._shards.get(slot)
                if shard is None or shard.generation != generation:
                    return  # someone else already recovered this death
            if self._closed:
                return
            self._bump("shard_deaths")
            observe_events.emit(
                "shard_death",
                slot=slot,
                generation=generation,
                pid=shard.process.pid,
                respawn=self.respawn,
            )
            self._retire(shard)
            # Only the dead shard's patterns move — computed against the
            # pre-removal ring, so survivors' patterns are never touched
            # (consistent hashing's 1/N reshuffle bound, made literal).
            with self._lock:
                records = list(self._patterns.values())
            affected = [
                r for r in records if self._ring.route(r.fingerprint) == slot
            ]
            if self.respawn:
                replacement = self._spawn(slot, generation=generation + 1)
                with self._lock:
                    self._shards[slot] = replacement
                self._bump("respawns")
            else:
                with self._lock:
                    self._shards.pop(slot, None)
                self._ring.remove(slot)
                self._bump("rebalances")
            self._rehome(affected)

    def _rehome(self, records: List[_FleetPattern]) -> None:
        """Re-register ``records`` on whichever shard now owns them.

        Registration is idempotent server-side; over the shared disk cache a
        fresh replacement process comes back with ``handle.warm`` set — the
        zero-recompile guarantee the counters assert.
        """
        for record in records:
            try:
                owner = self._ring.route(record.fingerprint)
            except LookupError:
                return  # fleet is empty; nothing to re-home
            with self._lock:
                shard = self._shards.get(owner)
            if shard is None:
                continue
            handle = shard.client.register_pattern(
                record.A,
                kernel=record.kernel,
                ordering=record.ordering,
                options=record.options,
            )
            self._bump("reregisters")
            self._bump("warm_reregisters" if handle.warm else "cold_reregisters")
            observe_events.emit(
                "reregister",
                slot=owner,
                fingerprint=record.fingerprint,
                warm=bool(handle.warm),
            )
            with self._lock:
                record.handle = handle

    def kill_shard(self, slot: int) -> None:
        """Fault injection: hard-kill shard ``slot``'s process.

        Death is then observed (and recovered from) by the next request
        routed to it, exactly like an uncontrolled crash.
        """
        with self._lock:
            shard = self._shards.get(slot)
        if shard is None:
            raise LookupError(f"no live shard {slot}")
        shard.process.kill()
        shard.process.wait(timeout=10)

    def recover_now(self, slot: int) -> None:
        """Eagerly run recovery for ``slot`` (normally it happens lazily)."""
        with self._lock:
            shard = self._shards.get(slot)
        if shard is not None:
            self._recover(slot, shard.generation)

    # ------------------------------------------------------------------ #
    # SolverEndpoint surface
    # ------------------------------------------------------------------ #
    def register_pattern(
        self,
        A,
        *,
        kernel: str = "cholesky",
        ordering: str = "natural",
        options: Optional[Union[SympilerOptions, Dict]] = None,
    ) -> RemoteHandle:
        """Register ``A``'s pattern on the shard its fingerprint routes to."""
        if not isinstance(A, CSCMatrix):
            from repro.frontend.ingest import as_csc

            A = as_csc(A)
        fingerprint = pattern_fingerprint(A.indptr, A.indices, extra=f"n={A.n}")
        attempts = 2
        while True:
            shard = self._route(fingerprint)
            try:
                handle = shard.client.register_pattern(
                    A, kernel=kernel, ordering=ordering, options=options
                )
                break
            except _SHARD_FAILURES:
                attempts -= 1
                if attempts <= 0:
                    raise
                self._note_failover(shard)
                self._recover(shard.slot, shard.generation)
        with self._lock:
            self._patterns[handle.handle_id] = _FleetPattern(
                handle=handle,
                A=A,
                kernel=kernel,
                ordering=ordering,
                options=options,
                fingerprint=fingerprint,
            )
        return handle

    def solve(
        self,
        handle: Union[RemoteHandle, str],
        values: np.ndarray,
        rhs: np.ndarray,
        *,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Solve on the owning shard, failing over once on shard death."""
        record = self._record_for(handle)
        attempts = 2
        while True:
            shard = self._route(record.fingerprint)
            try:
                return shard.client.solve(
                    record.handle.handle_id, values, rhs, timeout=timeout
                )
            except _SHARD_FAILURES:
                attempts -= 1
                if attempts <= 0:
                    raise
                self._note_failover(shard)
                self._recover(shard.slot, shard.generation)

    def submit(
        self,
        handle: Union[RemoteHandle, str],
        values: np.ndarray,
        rhs: np.ndarray,
    ) -> Future:
        """Pipelined solve: enqueue on the owning shard, future out.

        The request rides the shard connection's protocol-v2 pipelining, so
        many submits fill each shard's coalescing window concurrently.  On
        shard death the future transparently resubmits once after recovery.
        """
        record = self._record_for(handle)
        result: Future = Future()
        self._submit_attempt(record, values, rhs, result, attempts=2)
        return result

    def _submit_attempt(
        self,
        record: _FleetPattern,
        values: np.ndarray,
        rhs: np.ndarray,
        result: Future,
        attempts: int,
    ) -> None:
        shard: Optional[_Shard] = None
        try:
            shard = self._route(record.fingerprint)
            inner = shard.client.submit(record.handle.handle_id, values, rhs)
        except _SHARD_FAILURES as exc:
            self._failover_or_fail(record, values, rhs, result, attempts, shard, exc)
            return
        except BaseException as exc:  # noqa: BLE001 - future carries it
            result.set_exception(exc)
            return

        def _done(done: Future) -> None:
            try:
                result.set_result(done.result())
            except _SHARD_FAILURES as exc:
                self._failover_or_fail(record, values, rhs, result, attempts, shard, exc)
            except BaseException as exc:  # noqa: BLE001 - future carries it
                result.set_exception(exc)

        inner.add_done_callback(_done)

    def _failover_or_fail(
        self,
        record: _FleetPattern,
        values: np.ndarray,
        rhs: np.ndarray,
        result: Future,
        attempts: int,
        shard: Optional[_Shard],
        exc: BaseException,
    ) -> None:
        if attempts <= 1:
            result.set_exception(exc)
            return
        try:
            self._note_failover(shard)
            if shard is not None:
                self._recover(shard.slot, shard.generation)
            self._submit_attempt(record, values, rhs, result, attempts - 1)
        except BaseException as recovery_exc:  # noqa: BLE001 - future carries it
            result.set_exception(recovery_exc)

    @staticmethod
    def result(future: Future, *, timeout: Optional[float] = None) -> np.ndarray:
        """Wait on a :meth:`submit` future (sugar for ``future.result``)."""
        return future.result(timeout=timeout)

    def evict(self, handle: Union[RemoteHandle, str]) -> bool:
        """Evict a pattern fleet-wide (owning shard + the router's records)."""
        handle_id = (
            handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        )
        with self._lock:
            record = self._patterns.pop(handle_id, None)
        if record is None:
            return False
        try:
            shard = self._route(record.fingerprint)
            return shard.client.evict(handle_id)
        except _SHARD_FAILURES:
            return True  # the shard (and its registration) is already gone

    def stats(self) -> Dict:
        """Fleet-level stats: router counters plus per-shard snapshots."""
        with self._lock:
            shards = dict(self._shards)
            counters = dict(self.counters)
            registered = len(self._patterns)
        per_shard: Dict[str, Dict] = {}
        for slot, shard in sorted(shards.items()):
            try:
                per_shard[str(slot)] = shard.client.stats()
            except _SHARD_FAILURES:
                per_shard[str(slot)] = {"unavailable": True}
        return {
            "shards": len(shards),
            "registered_patterns": registered,
            "counters": counters,
            "per_shard": per_shard,
        }

    def health(self) -> Dict:
        """One aggregated health document: fleet facts + every shard's verb.

        ``status`` is ``"ok"`` when every shard answered its ``health`` wire
        verb, ``"degraded"`` otherwise.  Per-shard documents carry uptime,
        wire version, registered patterns, in-flight count and the server's
        pid/clocks; the fleet adds its own uptime, the last-failover wall
        timestamp and the lifecycle counters.
        """
        with self._lock:
            shards = dict(self._shards)
            counters = dict(self.counters)
            registered = len(self._patterns)
            last_failover = self.last_failover_at
        per_shard: Dict[str, Dict] = {}
        for slot, shard in sorted(shards.items()):
            try:
                per_shard[str(slot)] = shard.client.health()
            except _SHARD_FAILURES:
                per_shard[str(slot)] = {"status": "unreachable"}
        healthy = sum(1 for doc in per_shard.values() if doc.get("status") == "ok")
        return {
            "status": "ok" if shards and healthy == len(shards) else "degraded",
            "shards": len(shards),
            "shards_healthy": healthy,
            "registered_patterns": registered,
            "uptime_seconds": time.time() - self.started_at,
            "last_failover_at": last_failover,
            "counters": counters,
            "per_shard": per_shard,
        }

    def chrome_trace(self) -> Dict:
        """One merged Chrome trace document across the whole fleet.

        The fleet client's own finished spans keep this process's pid; each
        shard's buffer is drained over the ``trace`` wire verb and its span
        timestamps are mapped onto this process's wall clock using the
        NTP-style offset from timed pings
        (:meth:`ServiceClient.estimate_clock_offset`), so cross-process
        parent/child spans line up on one timeline.  Each shard appears as a
        distinct ``pid`` with a ``process_name`` metadata record
        (``shard-<slot>``).  Load the result in ``chrome://tracing`` /
        Perfetto, or write it with :meth:`write_chrome_trace`.

        Draining is destructive on the shard side (each span is merged
        exactly once across calls); unreachable shards are skipped.
        """
        from repro.observe.exporters import chrome_trace_events, process_name_event

        local_pid = os.getpid()
        events = [process_name_event(local_pid, "fleet-client")]
        events += chrome_trace_events(
            [sp.as_dict() for sp in observe_trace.get_tracer().drain()],
            pid=local_pid,
        )
        with self._lock:
            shards = dict(self._shards)
        for slot, shard in sorted(shards.items()):
            try:
                offset = shard.client.estimate_clock_offset()
                payload = shard.client.trace_spans(drain=True)
            except _SHARD_FAILURES:
                continue
            shard_pid = int(payload.get("pid", shard.process.pid))
            events.append(process_name_event(shard_pid, f"shard-{slot}"))
            events += chrome_trace_events(
                payload.get("spans", []), pid=shard_pid, clock_offset=offset
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, Path]) -> str:
        """Write :meth:`chrome_trace` to ``path``; returns the path."""
        path = str(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)
        return path

    def metrics_text(self) -> str:
        """One merged Prometheus page: all shards, ``shard="i"``-labelled,
        plus the fleet's own ``repro_fleet_*`` counters, the last-failover
        timestamp and per-shard health gauges."""
        from repro.observe.exporters import relabel_prometheus_text

        with self._lock:
            shards = dict(self._shards)
            counters = dict(self.counters)
            last_failover = self.last_failover_at
        pages: List[str] = []
        shard_health: Dict[int, Dict] = {}
        for slot, shard in sorted(shards.items()):
            try:
                text = shard.client.metrics_text()
                shard_health[slot] = shard.client.health()
            except _SHARD_FAILURES:
                shard_health[slot] = {"status": "unreachable"}
                continue
            pages.append(relabel_prometheus_text(text, shard=str(slot)))
        fleet_lines = [
            "# TYPE repro_fleet_shards gauge",
            f"repro_fleet_shards {len(shards)}",
        ]
        for name, value in sorted(counters.items()):
            fleet_lines.append(f"# TYPE repro_fleet_{name} counter")
            fleet_lines.append(f"repro_fleet_{name} {value}")
        fleet_lines.append(
            "# TYPE repro_fleet_last_failover_timestamp_seconds gauge"
        )
        fleet_lines.append(
            "repro_fleet_last_failover_timestamp_seconds "
            f"{0.0 if last_failover is None else last_failover}"
        )
        gauges = (
            ("repro_fleet_shard_up", lambda doc: 1 if doc.get("status") == "ok" else 0),
            ("repro_fleet_shard_uptime_seconds", lambda doc: doc.get("uptime_seconds", 0.0)),
            ("repro_fleet_shard_in_flight", lambda doc: doc.get("in_flight", 0)),
            (
                "repro_fleet_shard_registered_patterns",
                lambda doc: doc.get("registered_patterns", 0),
            ),
            ("repro_fleet_shard_wire_version", lambda doc: doc.get("wire_version", 0)),
        )
        for gauge_name, extract in gauges:
            fleet_lines.append(f"# TYPE {gauge_name} gauge")
            for slot in sorted(shard_health):
                fleet_lines.append(
                    f'{gauge_name}{{shard="{slot}"}} {extract(shard_health[slot])}'
                )
        pages.append("\n".join(fleet_lines) + "\n")
        return "".join(pages)

    def close(self) -> None:
        """Shut the whole fleet down (idempotent): close clients, kill workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards.values())
            self._shards.clear()
            self._patterns.clear()
        for shard in shards:
            self._retire(shard)

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            n = len(self._shards)
            p = len(self._patterns)
        return f"ShardFleet(shards={n}, patterns={p}, respawn={self.respawn})"
