"""``python -m repro.service`` — run (or smoke-test) the solver service.

Server mode binds a TCP address (default ``127.0.0.1:8377``; port 0 picks an
ephemeral port, printed on stdout) and serves until interrupted::

    python -m repro.service --port 8377 --window-ms 2 --max-batch 32

``--smoke`` instead runs the end-to-end self-check CI uses: boot a server on
an ephemeral port, register several patterns over the wire, drive a mixed
same-/cross-pattern request load through :class:`ServiceClient` connections
from worker threads, verify every solution against a local reference solver,
and assert the amortization invariant — **zero recompiles after warm-up**
(no C recompiles, no python-module regenerations, no artifact-cache misses
while serving).  Exits nonzero on any violation and prints the service stats
JSON either way.

``--fleet-smoke`` is the sharded-fleet variant: boot a ``--shards``-wide
:class:`~repro.service.fleet.ShardFleet` (separate worker processes over one
shared disk cache) with distributed tracing on, pipeline ``--requests``
mixed-pattern solves through the v2 wire protocol, hard-kill a
pattern-owning shard mid-stream, and assert that every request completes,
that the replacement shard re-registers **warm** — zero cold recompiles —
that the merged Chrome trace carries spans from ≥ 2 distinct shard pids
joined to the client's trace ids, and that the kill shows up as
``shard_death`` + ``failover`` events in the structured event log.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from typing import List

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.service.client import ServiceClient
from repro.service.session import SolverService
from repro.service.wire import SolverServiceServer, serve_background

__all__ = ["main", "run_smoke", "run_fleet_smoke"]


def _build_service(args) -> SolverService:
    options = SympilerOptions(backend=args.backend)
    return SolverService(
        options=options,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_in_flight=args.max_in_flight,
        max_patterns=args.max_patterns,
    )


def _parse_prometheus(text: str, failures: List[str]) -> dict:
    """Parse Prometheus text format 0.0.4 into ``{sample_key: value}``.

    Strict enough for the smoke assert: every non-comment line must be
    ``name[{labels}] value`` with a float-parseable value; malformed lines
    are reported into ``failures``.
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            failures.append(f"unparseable metrics line: {line!r}")
            continue
        key, raw = parts
        try:
            samples[key] = float(raw)
        except ValueError:
            failures.append(f"non-numeric metrics value: {line!r}")
    if not samples:
        failures.append("metrics verb returned no samples")
    return samples


def run_smoke(args) -> int:
    """The CI smoke: mixed-pattern wire load with the zero-recompile assert."""
    from repro.compiler.codegen.c_backend import disk_cache_stats
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import fem_stencil_2d, laplacian_2d

    service = _build_service(args)
    server, thread = serve_background(service, host="127.0.0.1", port=0)
    address = server.server_address
    failures: List[str] = []
    try:
        matrices = {
            "lap_small": laplacian_2d(12, shift=0.1),
            "fem": fem_stencil_2d(9, shift=0.25),
            "lap_large": laplacian_2d(15, shift=0.2),
        }
        with ServiceClient(address) as control:
            handles = {
                name: control.register_pattern(A) for name, A in matrices.items()
            }
        # Local reference solvers (same options/ordering → same compiled
        # kernels via the shared cache) to verify every wire solution.
        references = {
            name: SparseLinearSolver(
                A, ordering="natural", options=service.options
            )
            for name, A in matrices.items()
        }

        # ---- warm-up complete; from here on, nothing may be recompiled ----
        disk_before = disk_cache_stats().as_dict()
        cache_stats = next(iter(references.values())).cache_stats
        misses_before = cache_stats.misses

        names = list(matrices)
        total = args.requests
        per_worker = total // args.workers
        errors: List[str] = []

        def drive(worker: int) -> None:
            rng = np.random.default_rng(1000 + worker)
            try:
                with ServiceClient(address) as client:
                    for i in range(per_worker):
                        name = names[(worker + i) % len(names)]
                        A = matrices[name]
                        # SPD-preserving perturbation: scale the whole matrix;
                        # (s·A)x = b has the closed-form reference A⁻¹b / s.
                        scale = 1.0 + 0.05 * rng.random()
                        values = A.data * scale
                        rhs = np.sin(np.arange(A.n, dtype=np.float64) + worker + i)
                        x = client.solve(handles[name], values, rhs)
                        expected = references[name].solve(rhs) / scale
                        if not np.allclose(x, expected, atol=1e-8):
                            errors.append(f"worker {worker} request {i}: mismatch")
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"worker {worker}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=drive, args=(w,)) for w in range(args.workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        disk_after = disk_cache_stats().as_dict()
        misses_after = cache_stats.misses
        recompiles = (disk_after["compiles"] - disk_before["compiles"]) + (
            disk_after["py_writes"] - disk_before["py_writes"]
        )
        cache_misses = misses_after - misses_before

        with ServiceClient(address) as control:
            stats = control.stats()
            metrics_text = control.metrics_text()
        solves = stats["counters"].get("solves_ok", 0)

        failures.extend(errors)
        # The metrics wire verb must return parseable Prometheus exposition
        # text whose service solve counter reflects the load just driven.
        prom_samples = _parse_prometheus(metrics_text, failures)
        solve_samples = [
            v for k, v in prom_samples.items()
            if k.startswith("repro_service") and "solves_ok" in k
        ]
        if not solve_samples:
            failures.append(
                "metrics verb returned no repro_service*solves_ok sample"
            )
        elif max(solve_samples) <= 0:
            failures.append(
                f"metrics verb reports {max(solve_samples)} solves_ok "
                "(expected > 0 after the smoke load)"
            )
        if solves < args.workers * per_worker:
            failures.append(
                f"only {solves} solves completed "
                f"(expected {args.workers * per_worker})"
            )
        if recompiles != 0:
            failures.append(
                f"{recompiles} kernel(s) were regenerated under sustained "
                "load (expected 0 after warm-up)"
            )
        if cache_misses != 0:
            failures.append(
                f"{cache_misses} artifact-cache miss(es) while serving "
                "(expected 0 after warm-up)"
            )
        report = {
            "address": list(address),
            "requests": solves,
            "warm_recompiles": recompiles,
            "warm_cache_misses": cache_misses,
            "coalescing_ratio": stats.get("coalescing_ratio"),
            "batch_size_histogram": stats.get("batch_size_histogram"),
            "latency": stats.get("latency"),
            "metrics_samples": len(prom_samples),
            "failures": failures,
        }
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
    if failures:
        for failure in failures:
            sys.stderr.write(f"service smoke: {failure}\n")
        return 1
    return 0


def run_fleet_smoke(args) -> int:
    """The CI fleet smoke: kill a shard mid-stream, nothing may be lost.

    Boots a ``--shards``-wide :class:`~repro.service.fleet.ShardFleet`,
    registers three distinct patterns, pipelines ``--requests`` mixed-pattern
    solves through it, hard-kills one pattern-owning shard halfway, and
    asserts: every request completes and verifies against a local reference
    solver, the replacement shard re-registers **warm** from the shared disk
    cache (zero cold recompiles, from the fleet counters), and the merged
    Prometheus page carries every shard label plus the fleet counters.
    With tracing enabled fleet-wide it additionally asserts the merged
    Chrome trace carries spans from ≥ 2 distinct shard pids joined to the
    client's trace ids, and that the kill emitted ``shard_death`` +
    ``failover`` events.  Exits nonzero on any violation; prints a JSON
    report either way.
    """
    from repro import observe
    from repro.observe import events as observe_events
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import fem_stencil_2d, laplacian_2d

    failures: List[str] = []
    options = SympilerOptions(backend=args.backend)
    if args.backend == "python":
        options = options.with_updates(enable_vs_block=False)
    matrices = {
        "lap_small": laplacian_2d(12, shift=0.1),
        "fem": fem_stencil_2d(9, shift=0.25),
        "lap_large": laplacian_2d(15, shift=0.2),
    }
    references = {
        name: SparseLinearSolver(A, ordering="natural", options=options)
        for name, A in matrices.items()
    }
    names = list(matrices)
    total = args.requests

    def request(k: int):
        name = names[k % len(names)]
        A = matrices[name]
        scale = 1.0 + 0.01 * (k + 1)
        rhs = np.sin(np.arange(A.n, dtype=np.float64) + k)
        return name, A.data * scale, rhs, references[name].solve(rhs) / scale

    # Distributed tracing on, both sides of the wire: the fleet client here,
    # and (via `trace=True` → the worker `--trace` flag) every shard process.
    observe.enable()
    observe.reset()
    observe_events.get_event_log().clear()
    try:
        return _run_fleet_smoke_traced(
            args, matrices, references, request, failures, total
        )
    finally:
        observe.disable()
        observe.reset()


def _run_fleet_smoke_traced(args, matrices, references, request, failures, total) -> int:
    import tempfile

    from repro.observe import events as observe_events
    from repro.service.fleet import ShardFleet

    options = SympilerOptions(backend=args.backend)
    if args.backend == "python":
        options = options.with_updates(enable_vs_block=False)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as cache_dir:
        with ShardFleet(
            args.shards,
            backend=args.backend,
            cache_dir=cache_dir,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_in_flight=max(4 * total, args.max_in_flight),
            max_patterns=args.max_patterns,
            trace=True,
        ) as fleet:
            handles = {
                name: fleet.register_pattern(A, options=options)
                for name, A in matrices.items()
            }
            half = total // 2
            futures = [
                (k, fleet.submit(handles[request(k)[0]], *request(k)[1:3]))
                for k in range(half)
            ]
            # Hard-kill a shard that owns at least one pattern, mid-stream.
            owned = {
                slot: s.get("registered_patterns", 0)
                for slot, s in fleet.stats()["per_shard"].items()
            }
            victim = int(next(slot for slot, n in owned.items() if n > 0))
            fleet.kill_shard(victim)
            futures += [
                (k, fleet.submit(handles[request(k)[0]], *request(k)[1:3]))
                for k in range(half, total)
            ]
            completed = 0
            for k, future in futures:
                try:
                    x = fleet.result(future, timeout=120.0)
                except Exception as exc:  # noqa: BLE001 - reported below
                    failures.append(f"request {k}: {type(exc).__name__}: {exc}")
                    continue
                completed += 1
                if not np.allclose(x, request(k)[3], atol=1e-8):
                    failures.append(f"request {k}: solution mismatch")
            counters = dict(fleet.counters)
            metrics_text = fleet.metrics_text()
            shards_alive = fleet.stats()["shards"]
            health = fleet.health()
            trace_doc = fleet.chrome_trace()

        # ---- distributed-trace asserts: shard spans joined to client ids --
        local_pid = os.getpid()
        span_events = [e for e in trace_doc["traceEvents"] if e.get("ph") == "X"]
        shard_pids = sorted({e["pid"] for e in span_events if e["pid"] != local_pid})
        client_trace_ids = {
            e["args"].get("trace_id")
            for e in span_events
            if e["pid"] == local_pid and e["name"] == "wire-submit"
        }
        shard_trace_ids = {
            e["args"].get("trace_id") for e in span_events if e["pid"] != local_pid
        }
        joined_traces = len(client_trace_ids & shard_trace_ids)
        if len(shard_pids) < min(2, args.shards):
            failures.append(
                f"merged Chrome trace has spans from only {len(shard_pids)} "
                f"shard pid(s) {shard_pids} (expected ≥ {min(2, args.shards)})"
            )
        if joined_traces == 0:
            failures.append(
                "no shard-side span shares a trace_id with a client "
                "wire-submit span (trace propagation broken)"
            )
        event_kinds = observe_events.get_event_log().kinds()
        for kind in ("shard_death", "failover"):
            if not event_kinds.get(kind):
                failures.append(
                    f"killing a shard emitted no {kind!r} event "
                    f"(event log kinds: {event_kinds})"
                )
        if health.get("last_failover_at") is None:
            failures.append("fleet health carries no last-failover timestamp")

        if completed != total:
            failures.append(f"only {completed}/{total} requests completed")
        if counters["shard_deaths"] != 1:
            failures.append(
                f"expected exactly 1 shard death, saw {counters['shard_deaths']}"
            )
        if counters["reregisters"] != owned[str(victim)]:
            failures.append(
                f"replacement re-registered {counters['reregisters']} pattern(s), "
                f"expected {owned[str(victim)]}"
            )
        if counters["cold_reregisters"] != 0:
            failures.append(
                f"{counters['cold_reregisters']} COLD re-registration(s) after "
                "failover (expected 0: the shared disk cache must keep the "
                "replacement warm)"
            )
        if shards_alive != args.shards:
            failures.append(
                f"fleet ended with {shards_alive} shard(s), expected {args.shards}"
            )
        for slot in range(args.shards):
            if f'shard="{slot}"' not in metrics_text:
                failures.append(f"merged metrics are missing shard=\"{slot}\" labels")
        if "repro_fleet_shard_deaths 1" not in metrics_text:
            failures.append("merged metrics are missing the fleet death counter")

    report = {
        "shards": args.shards,
        "requests": completed,
        "victim_slot": victim,
        "counters": counters,
        "trace_shard_pids": shard_pids,
        "trace_joined": joined_traces,
        "event_kinds": event_kinds,
        "fleet_status": health.get("status"),
        "failures": failures,
    }
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")
    if failures:
        for failure in failures:
            sys.stderr.write(f"fleet smoke: {failure}\n")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8377, help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--backend", choices=["python", "c"], default="python",
        help="code-generation backend for registered patterns",
    )
    parser.add_argument(
        "--window-ms", type=float, default=2.0,
        help="micro-batching window in milliseconds",
    )
    parser.add_argument("--max-batch", type=int, default=32, help="coalesced batch cap")
    parser.add_argument(
        "--max-in-flight", type=int, default=256,
        help="admitted-but-incomplete request bound (backpressure beyond it)",
    )
    parser.add_argument(
        "--max-patterns", type=int, default=32,
        help="registered-pattern budget (LRU eviction beyond it)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI self-check instead of serving (ephemeral port, "
        "mixed-pattern load, zero-recompile assertion)",
    )
    parser.add_argument(
        "--requests", type=int, default=48,
        help="[--smoke] total requests to drive",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="[--smoke] concurrent client connections",
    )
    parser.add_argument(
        "--fleet-smoke", action="store_true",
        help="run the sharded-fleet self-check: pipelined mixed-pattern load, "
        "one shard hard-killed mid-stream, warm-failover assertion",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="[--fleet-smoke] fleet width",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable tracing in this server process (requests carrying "
        "trace_id/parent_id headers join the caller's trace; the span "
        "buffer is drained via the trace wire verb)",
    )
    args = parser.parse_args(argv)
    if args.fleet_smoke:
        return run_fleet_smoke(args)
    if args.smoke:
        return run_smoke(args)
    if args.trace:
        from repro import observe

        observe.enable()
    service = _build_service(args)
    server = SolverServiceServer((args.host, args.port), service)
    host, port = server.server_address
    sys.stdout.write(f"repro solver service listening on {host}:{port}\n")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
