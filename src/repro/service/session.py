"""The long-lived solver service: patterns registered once, solves served many.

:class:`SolverService` is the serving-layer face of the whole stack.  It
turns the paper's inspector/executor amortization into a served resource:

* :meth:`SolverService.register_pattern` compiles (or warm-loads) the
  factorization + triangular-solve kernels for one sparsity pattern, pins
  the artifacts in the shared compiler cache and returns a
  :class:`PatternHandle` carrying the fingerprint/schedule metadata,
* :meth:`SolverService.submit` enqueues one numeric solve (new values on the
  registered pattern, one right-hand side) and returns a
  :class:`concurrent.futures.Future`; :meth:`SolverService.solve` is the
  synchronous convenience,
* in-flight same-pattern requests are coalesced into micro-batches
  (:mod:`repro.service.coalescer`) and dispatched through the batched
  runtime's incremental submit/drain mode — stacked vectorized kernels on
  the python backend, thread-pooled GIL-free C kernels — with per-request
  error isolation,
* admission control (:mod:`repro.service.admission`) bounds in-flight work
  (reject-with-retry-after) and the compiled-artifact memory budget
  (per-pattern LRU pinning with explicit eviction; evicted patterns
  re-register warm from the on-disk code cache).
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.compiler.cache import options_fingerprint
from repro.compiler.codegen.c_backend import disk_cache_stats
from repro.compiler.codegen.runtime import pattern_fingerprint
from repro.compiler.options import SympilerOptions
from repro.observe import events as observe_events
from repro.observe import trace as observe_trace
from repro.runtime.facade import BatchedSolver
from repro.service.admission import (
    AdmissionController,
    PatternEvictedError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.coalescer import Coalescer
from repro.service.metrics import ServiceMetrics
from repro.sparse.csc import CSCMatrix

__all__ = ["SolverService", "PatternHandle"]


@dataclass(frozen=True)
class PatternHandle:
    """One registered pattern: identity, compile provenance and metadata.

    Handles are value objects — serializable over the wire by ``handle_id``
    — and stay valid until the pattern is evicted; solving through an
    evicted handle raises
    :class:`~repro.service.admission.PatternEvictedError` (re-register to
    get a fresh handle; the on-disk cache makes that warm).
    """

    handle_id: str
    key: tuple
    fingerprint: str
    kernel: str
    ordering: str
    n: int
    nnz: int
    factor_nnz: int
    #: True when registration reused previously generated code end to end
    #: (zero C recompiles and zero python-module regenerations).
    warm: bool
    #: Level-set schedule shape, for capacity planning without a round-trip.
    schedule_levels: int
    schedule_avg_width: float
    #: Within-kernel mode the factorization was compiled in ("wavefront",
    #: "serial-fallback" or "none").
    parallel_mode: str = "none"
    #: Per-pattern dispatch choice: ``"wavefront"`` requests bypass the
    #: micro-batch coalescer and run one at a time with within-kernel
    #: level parallelism (big patterns, wide schedules); ``"coalesce"``
    #: requests micro-batch across the pool (ensembles of small patterns).
    execution_strategy: str = "coalesce"


@dataclass
class _Request:
    """One enqueued solve: permuted values, RHS, and the caller's future."""

    values: np.ndarray
    rhs: np.ndarray
    future: Future
    enqueued_at: float
    #: The submitter's open trace span (or None): the coalescer dispatcher
    #: runs in its own thread, so the per-request dispatch span re-attaches
    #: here to land in the submitting request's trace.
    trace_ctx: object = None


@dataclass
class _PatternEntry:
    """Server-side state of one registered pattern."""

    key: tuple
    handle: PatternHandle
    batched: BatchedSolver
    #: The backend that actually generated code ("c" may fall back to
    #: "python" when no toolchain exists); recorded for the stats endpoint.
    backend_effective: str = "python"
    #: Serializes incremental submit/drain rounds on the shared executor so
    #: concurrent uncoalesced dispatches never interleave their batches.
    dispatch_lock: threading.Lock = field(default_factory=threading.Lock)
    solves: int = 0
    dead: bool = False


class SolverService:
    """A long-lived, thread-safe serving layer over the compiled-kernel stack.

    Parameters
    ----------
    options:
        Default :class:`SympilerOptions` for registrations (per-registration
        override allowed).
    window_seconds, max_batch:
        Micro-batching knobs: a pattern's queue flushes when the oldest
        request has waited ``window_seconds`` or ``max_batch`` requests are
        queued, whichever comes first.
    max_in_flight, retry_after_seconds:
        Backpressure: beyond ``max_in_flight`` admitted-but-incomplete
        requests, ``submit`` rejects with a ``retry_after`` hint.
    max_patterns:
        Compiled-artifact budget: at most this many patterns stay registered;
        the least recently used is evicted (artifacts dropped from the
        compiler cache) when the budget is exceeded.
    coalesce:
        ``False`` dispatches each request individually in the calling thread
        (the uncoalesced baseline the ``serving`` bench measures against).
    num_threads:
        Worker threads for C-backend batch dispatch (defaults to the
        options' ``num_threads``).

    Examples
    --------
    >>> from repro.sparse import laplacian_2d
    >>> import numpy as np
    >>> service = SolverService()
    >>> A = laplacian_2d(8)
    >>> handle = service.register_pattern(A)
    >>> x = service.solve(handle, A.data, np.ones(A.n))
    >>> bool(np.isfinite(x).all())
    True
    >>> service.close()
    """

    def __init__(
        self,
        *,
        options: Optional[SympilerOptions] = None,
        window_seconds: float = 0.002,
        max_batch: int = 32,
        max_in_flight: int = 256,
        max_patterns: int = 32,
        retry_after_seconds: float = 0.05,
        coalesce: bool = True,
        num_threads: Optional[int] = None,
    ) -> None:
        self.options = options or SympilerOptions()
        self.coalesce = bool(coalesce)
        self.num_threads = num_threads
        self.metrics = ServiceMetrics()
        # Pull-mode registration in the unified registry: the Prometheus
        # export / observe.snapshot() see this service's counters without
        # any extra hot-path cost; unregistered again in close().
        self.metrics.register_collector()
        self.admission = AdmissionController(
            max_in_flight=max_in_flight,
            max_patterns=max_patterns,
            retry_after_seconds=retry_after_seconds,
        )
        self.coalescer = Coalescer(
            self._dispatch, window_seconds=window_seconds, max_batch=max_batch
        )
        self._lock = threading.Lock()
        self._entries: Dict[tuple, _PatternEntry] = {}
        self._by_id: Dict[str, tuple] = {}
        self._registering: Dict[tuple, threading.Event] = {}
        self._closed = False
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    # Registration / eviction (the control plane)
    # ------------------------------------------------------------------ #
    def register_pattern(
        self,
        A,
        *,
        kernel: str = "cholesky",
        ordering: str = "natural",
        options: Optional[SympilerOptions] = None,
    ) -> PatternHandle:
        """Register one sparsity pattern; compile eagerly, pin, return a handle.

        Registration is idempotent and single-flight: concurrent
        registrations of the same (pattern, kernel, ordering, options)
        collapse to one compile — every caller shares the entry and its
        pinned artifacts.  ``A`` may be anything the front-end ingest layer
        accepts (:class:`CSCMatrix`, ``scipy.sparse``, COO triplets, dense)
        and must carry numerically valid values (the eager compile runs one
        factorization to seed the triangular-solve kernels).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        if not isinstance(A, CSCMatrix):
            from repro.frontend.ingest import as_csc

            A = as_csc(A)
        options = options or self.options
        key = (
            kernel,
            pattern_fingerprint(A.indptr, A.indices, extra=f"n={A.n}"),
            ordering,
            options_fingerprint(options),
        )
        waited = False
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self.metrics.incr("registrations")
                    if waited:
                        self.metrics.incr("registrations_coalesced")
                    else:
                        self.metrics.incr("compile_warm")
                    self.admission.touch_pattern(key)
                    return entry.handle
                event = self._registering.get(key)
                if event is None:
                    event = self._registering[key] = threading.Event()
                    break  # this thread builds the entry
            waited = True
            event.wait()
        try:
            entry = self._build_entry(A, kernel, ordering, options, key)
            with self._lock:
                self._entries[key] = entry
                self._by_id[entry.handle.handle_id] = key
            for victim in self.admission.pin_pattern(key):
                self._drop_entry(victim, reason="lru")
            return entry.handle
        finally:
            with self._lock:
                self._registering.pop(key, None)
            event.set()

    def _build_entry(
        self,
        A: CSCMatrix,
        kernel: str,
        ordering: str,
        options: SympilerOptions,
        key: tuple,
    ) -> _PatternEntry:
        disk_before = disk_cache_stats().as_dict()
        batched = BatchedSolver(
            A,
            method=kernel,
            ordering=ordering,
            options=options,
            num_threads=self.num_threads,
        )
        disk_after = disk_cache_stats().as_dict()
        generated = (disk_after["compiles"] - disk_before["compiles"]) + (
            disk_after["py_writes"] - disk_before["py_writes"]
        )
        warm = generated == 0
        solver = batched.solver
        cache = solver.artifact_cache
        for artifact in solver.compiled_artifacts:
            cache.pin_artifact(artifact)
        schedule = batched.schedule
        # Per-pattern dispatch choice: a wavefront-compiled kernel whose
        # schedule is wide enough to occupy the whole pool on every level
        # serves each request alone at full width (cuts single-request tail
        # latency); anything else micro-batches across requests, where the
        # pool parallelizes *between* small solves instead.
        strategy = "coalesce"
        if (
            batched.parallel_mode == "wavefront"
            and batched.num_threads > 1
            and schedule is not None
            and float(schedule.average_width) >= batched.num_threads
        ):
            strategy = "wavefront"
        handle = PatternHandle(
            handle_id=hashlib.sha256(repr(key).encode()).hexdigest()[:16],
            key=key,
            fingerprint=key[1],
            kernel=solver.method,
            ordering=ordering,
            n=A.n,
            nnz=A.nnz,
            factor_nnz=solver.factor_nnz,
            warm=warm,
            schedule_levels=schedule.n_levels if schedule is not None else 0,
            schedule_avg_width=(
                float(schedule.average_width) if schedule is not None else 0.0
            ),
            parallel_mode=batched.parallel_mode,
            execution_strategy=strategy,
        )
        self.metrics.incr("registrations")
        self.metrics.incr("compile_warm" if warm else "compile_cold")
        self.metrics.incr(f"strategy_{strategy}")
        from repro.compiler.codegen.c_backend import CGeneratedModule

        backend_effective = (
            "c"
            if isinstance(solver._factorization.module, CGeneratedModule)
            else "python"
        )
        observe_events.emit(
            "compile_warm" if warm else "compile_cold",
            kernel=solver.method,
            fingerprint=key[1],
            n=A.n,
            backend=backend_effective,
            strategy=strategy,
        )
        return _PatternEntry(
            key=key,
            handle=handle,
            batched=batched,
            backend_effective=backend_effective,
        )

    def _drop_entry(self, key: tuple, *, reason: str) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            entry.dead = True
            self._by_id.pop(entry.handle.handle_id, None)
        self.admission.drop_pattern(key)
        # Release the compiled-artifact memory: give up this pattern's pins
        # and drop from the shared compiler cache whatever no other holder
        # (another service, a sibling pattern sharing a triangular-solve
        # artifact) still has pinned.  The on-disk generated code survives,
        # so re-registration is a warm (zero-recompile) path.
        solver = entry.batched.solver
        cache = solver.artifact_cache
        for artifact in solver.compiled_artifacts:
            cache.release_artifact(artifact)
        self.metrics.incr("patterns_evicted")
        self.metrics.incr(f"patterns_evicted_{reason}")
        observe_events.emit(
            "pattern_evicted",
            reason=reason,
            fingerprint=key[1],
            handle_id=entry.handle.handle_id,
        )
        return True

    def evict(self, handle) -> bool:
        """Explicitly evict one registered pattern (by handle or handle id)."""
        key = self._resolve_key(handle, missing_ok=True)
        if key is None:
            return False
        return self._drop_entry(key, reason="explicit")

    def handle_for(self, handle_id: str) -> PatternHandle:
        """Look up a registered handle by its wire id."""
        with self._lock:
            key = self._by_id.get(handle_id)
            entry = self._entries.get(key) if key is not None else None
        if entry is None:
            raise PatternEvictedError(
                f"no registered pattern for handle {handle_id!r} "
                "(evicted or never registered); re-register the pattern"
            )
        return entry.handle

    def _resolve_key(self, handle, *, missing_ok: bool = False):
        if isinstance(handle, PatternHandle):
            return handle.key
        with self._lock:
            key = self._by_id.get(str(handle))
        if key is None and not missing_ok:
            raise PatternEvictedError(f"unknown handle {handle!r}")
        return key

    def _entry_for(self, handle) -> _PatternEntry:
        key = self._resolve_key(handle)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or entry.dead:
            raise PatternEvictedError(
                f"pattern {key[1]} was evicted; re-register it for a fresh "
                "handle (warm from the on-disk code cache)"
            )
        return entry

    # ------------------------------------------------------------------ #
    # The data plane
    # ------------------------------------------------------------------ #
    def submit(self, handle, values: np.ndarray, rhs: np.ndarray) -> Future:
        """Enqueue one solve; returns a future resolving to the solution.

        ``values`` are the matrix nonzeros in the registered pattern's input
        order; ``rhs`` the right-hand side.  Shape errors raise immediately
        (client error); numeric failures (a singular system in a batch)
        resolve the *future* with the kernel's exception while its
        batchmates complete normally.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        entry = self._entry_for(handle)
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (entry.handle.n,):
            raise ValueError(f"rhs must have shape ({entry.handle.n},)")
        try:
            self.admission.acquire()
        except ServiceOverloadedError as exc:
            self.metrics.incr("rejected")
            observe_events.emit(
                "admission_rejected",
                handle_id=entry.handle.handle_id,
                in_flight=self.admission.in_flight,
                retry_after_seconds=getattr(exc, "retry_after", None),
            )
            raise
        try:
            permuted = entry.batched.permute_values(values)
        except BaseException:
            self.admission.release()
            raise
        request = _Request(
            values=permuted,
            rhs=rhs,
            future=Future(),
            enqueued_at=time.monotonic(),
            trace_ctx=observe_trace.capture(),
        )
        self.admission.touch_pattern(entry.key)
        if self.coalesce and entry.handle.execution_strategy != "wavefront":
            try:
                self.coalescer.offer(entry.key, entry, request)
            except Exception:
                self.admission.release()
                raise
        else:
            # Wavefront-strategy patterns skip the coalescing window: each
            # request runs alone, its kernel spreading every level set over
            # the whole pool, so queueing for batchmates only adds latency.
            if entry.handle.execution_strategy == "wavefront":
                self.metrics.incr("dispatch_wavefront")
            self._dispatch(entry, [request])
        return request.future

    def solve(
        self,
        handle,
        values: np.ndarray,
        rhs: np.ndarray,
        *,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous solve: :meth:`submit` + wait."""
        return self.submit(handle, values, rhs).result(timeout=timeout)

    def _dispatch(self, entry: _PatternEntry, requests) -> None:
        """Run one coalesced batch: factorize together, solve per request.

        Per-request error isolation: a singular/indefinite value set resolves
        its own future with the kernel error; batchmates complete normally.
        A batch-level failure fails only this batch's futures.
        """
        requests = list(requests)
        n = entry.handle.n
        # Claim every future up front: set_running_or_notify_cancel() False
        # means the client cancelled while queued — skip its work entirely —
        # and True locks out late cancellation, so set_result/set_exception
        # below can never raise InvalidStateError into the batch handler
        # (which would fail innocent batchmates).
        live = [r for r in requests if r.future.set_running_or_notify_cancel()]
        cancelled = len(requests) - len(live)
        if cancelled:
            self.metrics.incr("solves_cancelled", cancelled)
        try:
            with entry.dispatch_lock:
                for request in live:
                    entry.batched.submit_values(request.values, permuted=True)
                handles = entry.batched.drain()
            # One preallocated response block for the whole batch: each
            # request's solution lands in its own row, zero-copy, and the
            # future resolves to that row view.
            out = np.empty((len(live), n), dtype=np.float64)
            # Wavefront-strategy patterns solve at full pool width (the
            # trisolves fan level sets across workers); coalesced batches
            # keep each solve single-threaded — the pool's parallelism is
            # already spent *across* batchmates.
            solve_threads = (
                entry.batched.num_threads
                if entry.handle.execution_strategy == "wavefront"
                else 1
            )
            for i, (request, factor_handle) in enumerate(zip(live, handles)):
                if not factor_handle.ok:
                    self.metrics.incr("solves_failed")
                    request.future.set_exception(factor_handle.error)
                    continue
                try:
                    # Attach the submitter's trace context so the dispatch
                    # span (and the numeric span inside the solve) land in
                    # the submitting request's trace, not an orphan one.
                    with observe_trace.attach(request.trace_ctx), observe_trace.span(
                        "dispatch", kernel=entry.handle.kernel, batch=len(live)
                    ):
                        x = factor_handle.solve(
                            request.rhs, out=out[i], num_threads=solve_threads
                        )
                except Exception as exc:
                    self.metrics.incr("solves_failed")
                    request.future.set_exception(exc)
                else:
                    self.metrics.incr("solves_ok")
                    entry.solves += 1
                    request.future.set_result(x)
        except Exception as exc:
            for request in live:
                if not request.future.done():
                    self.metrics.incr("solves_failed")
                    request.future.set_exception(exc)
        finally:
            now = time.monotonic()
            self.metrics.observe_batch(len(requests))
            slow_after = observe_events.get_event_log().slow_request_seconds
            for request in requests:
                self.admission.release()
                latency = now - request.enqueued_at
                self.metrics.observe_latency(latency)
                if slow_after is not None and latency >= slow_after:
                    self._sample_slow_request(entry, request, latency)

    def _sample_slow_request(
        self, entry: _PatternEntry, request: _Request, latency: float
    ) -> None:
        """Keep a slow request's full span tree as a structured event.

        Only requests over the event log's ``slow_request_seconds`` threshold
        pay this: their trace's finished spans are copied into the event
        payload, so the *why* of a tail-latency outlier survives after the
        tracer ring has rolled over.
        """
        ctx = request.trace_ctx
        spans = []
        if ctx is not None:
            trace_id = getattr(ctx, "trace_id", None)
            spans = [
                sp.as_dict()
                for sp in observe_trace.get_tracer().spans()
                if sp.trace_id == trace_id
            ]
        self.metrics.incr("slow_requests")
        observe_events.emit(
            "slow_request",
            kernel=entry.handle.kernel,
            fingerprint=entry.handle.fingerprint,
            latency_seconds=latency,
            trace_id=None if ctx is None else getattr(ctx, "trace_id", None),
            spans=spans,
        )

    # ------------------------------------------------------------------ #
    # Observability / lifecycle
    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued request has been dispatched."""
        return self.coalescer.flush(timeout=timeout)

    def stats(self) -> Dict[str, object]:
        """One JSON-friendly snapshot of the whole service."""
        with self._lock:
            entries = list(self._entries.values())
        cache = entries[0].batched.solver.artifact_cache if entries else None
        patterns = {}
        for entry in entries:
            handle = entry.handle
            patterns[handle.handle_id] = {
                "kernel": handle.kernel,
                "ordering": handle.ordering,
                "fingerprint": handle.fingerprint,
                "n": handle.n,
                "nnz": handle.nnz,
                "factor_nnz": handle.factor_nnz,
                "warm_registration": handle.warm,
                "solves": entry.solves,
                "schedule_levels": handle.schedule_levels,
                "schedule_avg_width": handle.schedule_avg_width,
                "mode": entry.batched.mode,
                "parallel_mode": handle.parallel_mode,
                "execution_strategy": handle.execution_strategy,
                "backend_effective": entry.backend_effective,
            }
        snapshot = self.metrics.snapshot()
        snapshot.update(
            {
                "patterns": patterns,
                "registered_patterns": len(patterns),
                "queue_depth": self.coalescer.depth(),
                "in_flight": self.admission.in_flight,
                "coalesce": self.coalesce,
                "window_seconds": self.coalescer.window_seconds,
                "max_batch": self.coalescer.max_batch,
                "max_in_flight": self.admission.max_in_flight,
                "max_patterns": self.admission.max_patterns,
                "uptime_seconds": time.time() - self.started_at,
                "disk_cache": disk_cache_stats().as_dict(),
            }
        )
        if cache is not None:
            snapshot["artifact_cache"] = dict(cache.stats.as_dict())
            snapshot["artifact_cache"]["pinned"] = cache.pinned_count
        return snapshot

    def health(self) -> Dict[str, object]:
        """A small liveness/readiness document (cheap; no per-pattern detail).

        The in-process leg of the ``health`` wire verb: uptime and load facts
        only — :meth:`stats` has the full per-pattern snapshot.  The wire
        layer augments this with transport facts (wire version, pid, server
        clocks); :meth:`ShardFleet.health` aggregates it across shards.
        """
        with self._lock:
            registered = len(self._entries)
            closed = self._closed
        return {
            "status": "closed" if closed else "ok",
            "started_at": self.started_at,
            "uptime_seconds": time.time() - self.started_at,
            "registered_patterns": registered,
            "in_flight": self.admission.in_flight,
            "queue_depth": self.coalescer.depth(),
            "solves_ok": self.metrics.count("solves_ok"),
            "solves_failed": self.metrics.count("solves_failed"),
            "rejected": self.metrics.count("rejected"),
        }

    def metrics_text(self) -> str:
        """The unified registry as Prometheus exposition text.

        The in-process leg of the :class:`~repro.service.endpoint.SolverEndpoint`
        contract: the same text the wire ``metrics`` verb serves (this
        service's counters are pull-collected into the default registry).
        """
        from repro.observe import prometheus_text

        return prometheus_text()

    def close(self, timeout: float = 10.0) -> None:
        """Drain queued work, stop the dispatcher and reject further calls.

        Registered patterns' pins are released (artifacts stay resident for
        warm reuse by other in-process users, but become LRU-evictable again)
        so short-lived services never leak pins into the process-wide cache.
        """
        if self._closed:
            return
        self._closed = True
        self.metrics.unregister_collector()
        self.coalescer.close(timeout=timeout)
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._by_id.clear()
        for entry in entries:
            entry.dead = True
            solver = entry.batched.solver
            cache = solver.artifact_cache
            for artifact in solver.compiled_artifacts:
                cache.unpin_artifact(artifact)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
