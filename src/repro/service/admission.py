"""Admission control: bounded in-flight work and a per-pattern LRU budget.

A long-lived service must bound two resources the in-process API never had
to think about:

* **request slots** — the number of solves admitted but not yet completed.
  :meth:`AdmissionController.acquire` rejects beyond ``max_in_flight`` with
  :class:`ServiceOverloadedError` carrying a ``retry_after`` hint
  (reject-with-retry-after backpressure, not unbounded queueing), and
* **compiled artifacts** — registered patterns pin generated kernels in
  memory; :meth:`AdmissionController.pin_pattern` keeps at most
  ``max_patterns`` of them, returning the LRU victims for the service to
  evict (their artifacts drop out of the compiler cache; the on-disk code
  cache makes re-registration warm).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, List

# The exception types historically lived here; they are now defined in the
# consolidated :mod:`repro.service.errors` (with `retryable`/`retry_after`
# and the wire mapping) and re-exported for compatibility.
from repro.service.errors import (
    PatternEvictedError,
    ServiceClosedError,
    ServiceOverloadedError,
)

__all__ = [
    "AdmissionController",
    "ServiceOverloadedError",
    "PatternEvictedError",
    "ServiceClosedError",
]


class AdmissionController:
    """Bounded request admission plus the per-pattern LRU pin board."""

    def __init__(
        self,
        *,
        max_in_flight: int = 256,
        max_patterns: int = 32,
        retry_after_seconds: float = 0.05,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if max_patterns < 1:
            raise ValueError("max_patterns must be at least 1")
        self.max_in_flight = int(max_in_flight)
        self.max_patterns = int(max_patterns)
        self.retry_after_seconds = float(retry_after_seconds)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._lru: "OrderedDict[Hashable, None]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Request slots
    # ------------------------------------------------------------------ #
    def acquire(self) -> None:
        """Claim one in-flight slot or reject with a retry-after hint."""
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                raise ServiceOverloadedError(
                    f"service saturated ({self._in_flight} requests in flight, "
                    f"limit {self.max_in_flight}); retry after "
                    f"{self.retry_after_seconds:g}s",
                    retry_after=self.retry_after_seconds,
                )
            self._in_flight += 1

    def release(self) -> None:
        """Return one in-flight slot."""
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Requests currently admitted but not completed."""
        with self._lock:
            return self._in_flight

    # ------------------------------------------------------------------ #
    # Pattern pin board (LRU over registered patterns)
    # ------------------------------------------------------------------ #
    def pin_pattern(self, key: Hashable) -> List[Hashable]:
        """Register ``key`` as pinned; returns the LRU keys pushed over budget.

        The caller (the service) owns the actual eviction — dropping its
        entry and un-pinning the compiled artifacts — so the controller only
        decides *which* patterns fall out.
        """
        with self._lock:
            if key in self._lru:
                self._lru.move_to_end(key)
                return []
            self._lru[key] = None
            victims: List[Hashable] = []
            while len(self._lru) > self.max_patterns:
                victim, _ = self._lru.popitem(last=False)
                victims.append(victim)
            return victims

    def touch_pattern(self, key: Hashable) -> None:
        """Mark ``key`` recently used (called per solve)."""
        with self._lock:
            if key in self._lru:
                self._lru.move_to_end(key)

    def drop_pattern(self, key: Hashable) -> bool:
        """Explicitly remove ``key`` from the board; True when it was pinned."""
        with self._lock:
            if key not in self._lru:
                return False
            del self._lru[key]
            return True

    def patterns(self) -> List[Hashable]:
        """Pinned pattern keys, least recently used first."""
        with self._lock:
            return list(self._lru)
