"""Micro-batched request coalescing: same-pattern solves share one dispatch.

The compiled kernels are stateless with respect to numeric values, so N
concurrent requests on one registered pattern can run as a single batched
factorization (vectorized stacked kernels on the python backend, GIL-free
threaded C kernels) instead of N interpreter round-trips.  The
:class:`Coalescer` makes that happen transparently: requests enqueue into a
per-pattern queue, and a dispatcher thread flushes each queue when it reaches
``max_batch`` or its oldest request has waited ``window_seconds`` — classic
micro-batching.  A zero window still coalesces whatever accumulated while the
dispatcher was busy (natural batching under load).

Error isolation is the dispatcher's contract, not this module's: the dispatch
callable receives the whole batch and must resolve every request's future
(the service maps per-item :class:`~repro.runtime.engine.BatchResult` errors
to their futures).  A dispatch callable that *raises* fails only that batch's
futures; the dispatcher thread survives.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.observe import trace as observe_trace

__all__ = ["Coalescer"]


class _PatternQueue:
    """Pending requests of one pattern plus their flush deadline."""

    __slots__ = ("entry", "requests", "deadline")

    def __init__(self, entry: object, deadline: float) -> None:
        self.entry = entry
        self.requests: List[object] = []
        self.deadline = deadline


class Coalescer:
    """Groups in-flight same-pattern requests into micro-batches.

    Parameters
    ----------
    dispatch:
        ``dispatch(entry, requests)`` — runs one coalesced batch and resolves
        every request's future (it must not assume success: exceptions are
        caught and reported per batch by the caller's dispatch logic).
    window_seconds:
        How long the oldest request of a pattern may wait before its batch
        flushes regardless of size.
    max_batch:
        Flush immediately once this many requests of one pattern are queued.
    """

    def __init__(
        self,
        dispatch: Callable[[object, Sequence[object]], None],
        *,
        window_seconds: float = 0.002,
        max_batch: int = 32,
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._dispatch = dispatch
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._queues: Dict[Hashable, _PatternQueue] = {}
        self._thread: Optional[threading.Thread] = None
        self._busy = False
        self._closed = False

    # ------------------------------------------------------------------ #
    def offer(self, key: Hashable, entry: object, request: object) -> None:
        """Enqueue one request for pattern ``key`` (entry is its dispatch ctx)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-service-coalescer", daemon=True
                )
                self._thread.start()
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = _PatternQueue(
                    entry, time.monotonic() + self.window_seconds
                )
            queue.requests.append(request)
            self._cond.notify_all()

    def depth(self) -> int:
        """Requests currently queued (excluding the batch being dispatched)."""
        with self._cond:
            return sum(len(q.requests) for q in self._queues.values())

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has been dispatched.

        Returns False when ``timeout`` elapsed first.  Requests offered
        *while* flushing extend the wait (drain-to-idle semantics).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queues or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=0.05 if remaining is None else min(remaining, 0.05))
            return True

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting requests, drain the queues and join the thread."""
        with self._cond:
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    def _pop_ready(self, now: float) -> Optional[Tuple[object, List[object]]]:
        """Take one due batch off the queues (called with the lock held).

        A queue is due when it holds ``max_batch`` requests, its deadline
        passed, or the coalescer is draining for close.  At most
        ``max_batch`` requests pop; a nonempty remainder keeps its (already
        expired or original) deadline and flushes on a later pass.
        """
        for key, queue in list(self._queues.items()):
            due = (
                len(queue.requests) >= self.max_batch
                or queue.deadline <= now
                or self._closed
            )
            if not due or not queue.requests:
                continue
            batch = queue.requests[: self.max_batch]
            del queue.requests[: self.max_batch]
            if not queue.requests:
                del self._queues[key]
            return queue.entry, batch
        return None

    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    ready = self._pop_ready(now)
                    if ready is not None:
                        break
                    if self._closed and not self._queues:
                        self._cond.notify_all()
                        return
                    deadlines = [q.deadline for q in self._queues.values()]
                    timeout = None
                    if deadlines:
                        timeout = max(min(deadlines) - now, 0.0005)
                    self._cond.wait(timeout=timeout)
                self._busy = True
            entry, batch = ready
            try:
                # The dispatcher thread has no caller context of its own;
                # the batch-level span starts a fresh trace here, while the
                # per-request dispatch spans inside re-attach each
                # submitter's captured context (see session._dispatch).
                with observe_trace.span("coalesce", batch=len(batch)):
                    self._dispatch(entry, batch)
            except Exception as exc:  # pragma: no cover - dispatch guards itself
                _fail_batch(batch, exc)
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()


def _fail_batch(batch: Sequence[object], exc: Exception) -> None:
    """Last-resort failure propagation when a dispatch callable raises."""
    for request in batch:
        future = getattr(request, "future", None)
        if future is not None and not future.done():
            future.set_exception(exc)
