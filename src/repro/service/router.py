"""Consistent-hash routing for the sharded solver fleet.

A :class:`ConsistentHashRing` maps pattern fingerprints to shard slots so
that (a) the same pattern always lands on the same shard — its compiled
kernel and numeric factor stay hot there — and (b) when a shard leaves,
only the patterns that lived on it move; every other pattern keeps its
placement (the classic 1/N reshuffle bound, vs. N-1/N for modulo hashing).

Each shard contributes ``vnodes`` virtual points on a 64-bit ring (the
first 8 bytes of ``sha256(f"{slot}#{replica}")``); a key routes to the
first point clockwise of ``sha256(key)``.  Virtual nodes smooth the load:
with 64 points per shard the per-shard key share concentrates near 1/N.

The ring is deliberately dumb — no health, no weights, no locks.  The
fleet owns membership and serializes mutations; the ring just answers
"which slot?" in O(log points) via :mod:`bisect`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional

__all__ = ["ConsistentHashRing"]


def _point(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Maps string keys to integer shard slots with minimal reshuffling."""

    def __init__(self, slots: Optional[List[int]] = None, *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: List[int] = []  # sorted ring positions
        self._owner: Dict[int, int] = {}  # position -> slot
        for slot in slots or ():
            self.add(slot)

    def add(self, slot: int) -> None:
        """Add ``slot``'s virtual points (idempotent)."""
        if slot in self.slots():
            return
        for replica in range(self.vnodes):
            position = _point(f"{slot}#{replica}")
            # 64-bit collisions across distinct slots are effectively
            # impossible; first-writer-wins keeps the ring deterministic.
            if position in self._owner:
                continue
            bisect.insort(self._points, position)
            self._owner[position] = slot

    def remove(self, slot: int) -> None:
        """Remove ``slot``'s virtual points (idempotent)."""
        positions = [p for p, s in self._owner.items() if s == slot]
        for position in positions:
            del self._owner[position]
            index = bisect.bisect_left(self._points, position)
            if index < len(self._points) and self._points[index] == position:
                del self._points[index]

    def slots(self) -> List[int]:
        """The current member slots, sorted."""
        return sorted(set(self._owner.values()))

    def route(self, key: str) -> int:
        """The slot owning ``key``: first virtual point clockwise of its hash."""
        if not self._points:
            raise LookupError("hash ring is empty (no live shards)")
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owner[self._points[index]]

    def __len__(self) -> int:
        return len(self.slots())

    def __contains__(self, slot: int) -> bool:
        return slot in self.slots()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistentHashRing(slots={self.slots()}, vnodes={self.vnodes}, "
            f"points={len(self._points)})"
        )
