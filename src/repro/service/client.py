"""The wire client: :class:`ServiceClient` mirrors the in-process service API.

One persistent connection per client (requests on it are serialized by a
lock; run several clients for concurrency — the server coalesces their
same-pattern requests into shared micro-batches regardless of which
connection they arrive on).  Stdlib + numpy only; errors map back to the
same exception types the in-process API raises, so code can move between
``SolverService`` and ``ServiceClient`` unchanged:

* ``overloaded`` → :class:`~repro.service.admission.ServiceOverloadedError`
  (carrying the server's ``retry_after`` hint),
* ``evicted`` → :class:`~repro.service.admission.PatternEvictedError`,
* anything else → :class:`RemoteServiceError` with the server-side message.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.service.admission import PatternEvictedError, ServiceOverloadedError
from repro.service.wire import ProtocolError, recv_message, send_message
from repro.sparse.csc import CSCMatrix

__all__ = ["ServiceClient", "RemoteHandle", "RemoteServiceError"]


class RemoteServiceError(RuntimeError):
    """The server reported a failure with no more specific local type.

    ``kind`` preserves the server-side classification (usually the remote
    exception's class name).
    """

    def __init__(self, message: str, *, kind: str = "error") -> None:
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class RemoteHandle:
    """Client-side view of a registered pattern (mirrors ``PatternHandle``)."""

    handle_id: str
    fingerprint: str
    kernel: str
    ordering: str
    n: int
    nnz: int
    factor_nnz: int
    warm: bool
    schedule_levels: int
    schedule_avg_width: float


def _raise_remote(response: Dict) -> None:
    kind = str(response.get("kind", "error"))
    message = str(response.get("error", "remote error"))
    if kind == "overloaded":
        raise ServiceOverloadedError(
            message, retry_after=float(response.get("retry_after", 0.05))
        )
    if kind == "evicted":
        raise PatternEvictedError(message)
    raise RemoteServiceError(message, kind=kind)


class ServiceClient:
    """Talk to a running solver service over TCP or a Unix domain socket.

    ``address`` is ``(host, port)`` for TCP or a filesystem path string for
    a Unix socket.  The client is thread-safe (calls serialize on one
    connection); it is also a context manager closing the socket on exit.
    """

    def __init__(
        self,
        address: Union[Tuple[str, int], str],
        *,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.address = address
        if isinstance(address, str):
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise OSError("unix domain sockets are unavailable on this platform")
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address)
        else:
            host, port = address
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False

    # ------------------------------------------------------------------ #
    def _call(
        self, header: Dict, frames: Sequence[np.ndarray] = ()
    ) -> Tuple[Dict, List[np.ndarray]]:
        with self._lock:
            if self._closed:
                raise RuntimeError("client is closed")
            if self._broken:
                raise RuntimeError(
                    "client connection is desynchronized after a previous "
                    "mid-call failure; open a new ServiceClient"
                )
            try:
                send_message(self._wfile, header, frames)
                message = recv_message(self._rfile)
            except BaseException:
                # A timeout or I/O error mid-call leaves the stale response
                # in flight: a retry on this socket would read the *previous*
                # call's answer as its own.  Poison the connection instead.
                self._broken = True
                raise
            if message is None:
                self._broken = True
                raise ProtocolError("server closed the connection mid-call")
        response, out_frames = message
        if not response.get("ok"):
            _raise_remote(response)
        return response, out_frames

    # ------------------------------------------------------------------ #
    def register_pattern(
        self,
        A,
        *,
        kernel: str = "cholesky",
        ordering: str = "natural",
        options: Optional[Union[SympilerOptions, Dict]] = None,
    ) -> RemoteHandle:
        """Register ``A``'s pattern on the server; returns a remote handle.

        ``A`` may be anything the front-end ingest layer accepts
        (:class:`CSCMatrix`, ``scipy.sparse``, COO triplets, dense) — it is
        converted before the wire frames are built.
        """
        if not isinstance(A, CSCMatrix):
            from repro.frontend.ingest import as_csc

            A = as_csc(A)
        payload: Optional[Dict] = None
        if isinstance(options, SympilerOptions):
            payload = asdict(options)
            payload["c_flags"] = list(payload["c_flags"])
            payload["transformation_order"] = list(payload["transformation_order"])
        elif options is not None:
            payload = dict(options)
        header = {
            "op": "register",
            "n": A.n,
            "kernel": kernel,
            "ordering": ordering,
            "options": payload,
        }
        response, _ = self._call(header, [A.indptr, A.indices, A.data])
        return RemoteHandle(**response["handle"])

    def solve(
        self,
        handle: Union[RemoteHandle, str],
        values: np.ndarray,
        rhs: np.ndarray,
        *,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Solve one system on a registered pattern; returns the solution."""
        handle_id = handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        header = {"op": "solve", "handle": handle_id, "timeout": timeout}
        _, frames = self._call(
            header,
            [
                np.ascontiguousarray(values, dtype=np.float64),
                np.ascontiguousarray(rhs, dtype=np.float64),
            ],
        )
        if len(frames) != 1:
            raise ProtocolError(f"solve response carried {len(frames)} frames")
        return np.array(frames[0], dtype=np.float64, copy=True)

    def stats(self) -> Dict:
        """The server's cumulative metrics snapshot."""
        response, _ = self._call({"op": "stats"})
        return response["stats"]

    def metrics_text(self) -> str:
        """The server's unified registry as Prometheus exposition text.

        Fetches the ``metrics`` wire verb: the server renders its default
        :class:`~repro.observe.registry.MetricsRegistry` (service counters,
        cache collectors, per-phase span totals) in text format 0.0.4 and
        ships it as one ``uint8`` frame; this decodes it back to ``str``.
        """
        _, frames = self._call({"op": "metrics"})
        if len(frames) != 1:
            raise ProtocolError(f"metrics response carried {len(frames)} frames")
        return bytes(np.asarray(frames[0], dtype=np.uint8)).decode("utf-8")

    def evict(self, handle: Union[RemoteHandle, str]) -> bool:
        """Explicitly evict a registered pattern server-side."""
        handle_id = handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        response, _ = self._call({"op": "evict", "handle": handle_id})
        return bool(response.get("evicted"))

    def ping(self) -> bool:
        """Liveness probe."""
        response, _ = self._call({"op": "ping"})
        return bool(response.get("pong"))

    def shutdown_server(self) -> None:
        """Ask the server to shut down (it answers, then stops accepting)."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for stream in (self._wfile, self._rfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
