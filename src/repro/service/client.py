"""The wire client: :class:`ServiceClient` mirrors the in-process service API.

One persistent connection per client.  On connect the client sends a
``hello`` (framed as v1, so pre-v2 servers answer with a harmless error and
the client falls back) and negotiates the protocol generation:

* **v2** (the default against a current server) — requests carry ids and a
  background reader thread matches responses to pending futures, so one
  connection **pipelines** many requests: :meth:`submit` returns a future
  immediately, the server's coalescing window fills from a single client,
  and responses may return out of order.  A timed-out request is simply
  *abandoned* — its eventual response is recognized by id and discarded
  (counted in :attr:`orphaned_responses`) — so one slow solve no longer
  poisons the whole connection.
* **v1** (``protocol=1``, or an old server) — the original lock-step mode:
  calls serialize on a lock, one round-trip at a time, and a mid-call
  failure still poisons the connection (without ids there is no way to
  re-synchronize the stream).

The sync API is unchanged either way — :meth:`solve` is submit + wait and
returns bitwise-identical results over both generations.  Errors map back
to the same consolidated exception types the in-process API raises
(:mod:`repro.service.errors`), so code moves between ``SolverService``,
``ServiceClient`` and ``ShardFleet`` unchanged:

* ``overloaded`` → :class:`~repro.service.errors.ServiceOverloadedError`
  (carrying the server's ``retry_after`` hint),
* ``evicted`` → :class:`~repro.service.errors.PatternEvictedError`,
* a broken connection → :class:`~repro.service.errors.ShardUnavailableError`
  (retryable — the fleet uses it to fail over),
* anything else → :class:`~repro.service.errors.RemoteServiceError` with the
  server-side message and kind.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.observe import trace as observe_trace
from repro.service.errors import (
    ProtocolError,
    RemoteServiceError,
    ShardUnavailableError,
    error_from_wire,
)
from repro.service.wire import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    recv_message,
    send_message,
)
from repro.sparse.csc import CSCMatrix

__all__ = ["ServiceClient", "RemoteHandle", "RemoteServiceError"]


@dataclass(frozen=True)
class RemoteHandle:
    """Client-side view of a registered pattern (mirrors ``PatternHandle``)."""

    handle_id: str
    fingerprint: str
    kernel: str
    ordering: str
    n: int
    nnz: int
    factor_nnz: int
    warm: bool
    schedule_levels: int
    schedule_avg_width: float


def _raise_remote(response: Dict) -> None:
    raise error_from_wire(response)


class ServiceClient:
    """Talk to a running solver service over TCP or a Unix domain socket.

    ``address`` is ``(host, port)`` for TCP or a filesystem path string for
    a Unix socket.  The client is thread-safe and a context manager.

    ``protocol`` pins the wire generation: ``None`` (default) negotiates the
    newest mutual version via ``hello``; ``1`` skips negotiation and speaks
    the legacy lock-step protocol; ``2`` *requires* a v2 server (raises
    :class:`ProtocolError` against an older one).

    ``timeout`` bounds the connect/handshake and is the default per-request
    timeout.  Under v2 the socket itself has no read timeout — the reader
    thread blocks until data arrives and timeouts are enforced per future,
    which is what makes a timeout recoverable instead of stream-corrupting.
    """

    def __init__(
        self,
        address: Union[Tuple[str, int], str],
        *,
        timeout: Optional[float] = 60.0,
        protocol: Optional[int] = None,
    ) -> None:
        if protocol is not None and protocol not in SUPPORTED_WIRE_VERSIONS:
            raise ValueError(
                f"protocol must be one of {SUPPORTED_WIRE_VERSIONS} or None"
            )
        self.address = address
        self.timeout = timeout
        if isinstance(address, str):
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise OSError("unix domain sockets are unavailable on this platform")
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address)
        else:
            host, port = address
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._lock = threading.Lock()  # v1 round-trips; v2 sends
        self._closed = False
        self._broken = False
        self._broken_reason = ""
        #: v2 pipelining state: pending request futures by id, guarded by
        #: ``_plock``; the reader thread resolves/discards them.
        self._plock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._next_id = 0
        self._reader: Optional[threading.Thread] = None
        #: Responses whose request was abandoned (timed out) before they
        #: arrived: discarded by id — the desync-recovery counter.
        self.orphaned_responses = 0

        self.protocol = self._negotiate(protocol)
        if self.protocol >= 2:
            # Timeouts are per-future under v2; a socket-level read timeout
            # would tear the framed stream mid-message in the reader thread.
            self._sock.settimeout(None)
            self._reader = threading.Thread(
                target=self._reader_loop, name="repro-client-reader", daemon=True
            )
            self._reader.start()

    # ------------------------------------------------------------------ #
    # Negotiation
    # ------------------------------------------------------------------ #
    def _negotiate(self, protocol: Optional[int]) -> int:
        if protocol == 1:
            return 1
        header = {
            "op": "hello",
            "version": WIRE_VERSION,
            "versions": list(SUPPORTED_WIRE_VERSIONS),
        }
        try:
            # Framed as v1: a pre-v2 server parses it and answers `unknown
            # operation` instead of killing the connection.
            send_message(self._wfile, header, version=1)
            message = recv_message(self._rfile)
        except BaseException:
            self._teardown()
            raise
        if message is None:
            self._teardown()
            raise ShardUnavailableError("server closed the connection during hello")
        response, _ = message
        if response.get("ok"):
            negotiated = min(int(response.get("version", 1)), WIRE_VERSION)
        else:
            # v1 server: `unknown operation 'hello'` — the connection is
            # fine, the server just predates negotiation.
            negotiated = 1
        if protocol is not None and negotiated < protocol:
            detail = response.get("error", "no error detail")
            self._teardown()
            raise ProtocolError(
                f"server does not speak wire protocol v{protocol} ({detail})"
            )
        return negotiated

    # ------------------------------------------------------------------ #
    # v2 pipelining internals
    # ------------------------------------------------------------------ #
    def _reader_loop(self) -> None:
        while True:
            try:
                message = recv_message(self._rfile)
            except Exception as exc:  # ProtocolError, OSError, ValueError
                self._fail_pending(exc)
                return
            if message is None:
                self._fail_pending(
                    ShardUnavailableError("server closed the connection")
                )
                return
            response, frames = message
            request_id = response.get("id")
            with self._plock:
                future = self._pending.pop(request_id, None)
                if future is None:
                    # The orphaned frame of an abandoned (timed-out or
                    # id-less) request: discard it — only that request
                    # failed, the connection stays synchronized by id.
                    self.orphaned_responses += 1
                    continue
            future.set_result((response, frames))

    def _fail_pending(self, exc: BaseException) -> None:
        with self._plock:
            pending = list(self._pending.values())
            self._pending.clear()
        with self._lock:
            if not self._closed:
                self._broken = True
                self._broken_reason = f"{type(exc).__name__}: {exc}"
        for future in pending:
            if isinstance(exc, ShardUnavailableError):
                future.set_exception(exc)
            else:
                future.set_exception(
                    ShardUnavailableError(f"connection lost mid-request ({exc})")
                )

    def _check_usable(self) -> None:
        if self._closed:
            # ShardUnavailableError (a ConnectionError, retryable) rather
            # than a bare RuntimeError: the fleet races requests against
            # shard recovery, and a request that grabbed a just-retired
            # connection must fail over, not fail outright.
            raise ShardUnavailableError("client is closed")
        if self._broken:
            if self.protocol >= 2:
                raise ShardUnavailableError(
                    f"client connection is broken ({self._broken_reason}); "
                    "open a new ServiceClient"
                )
            raise RuntimeError(
                "client connection is desynchronized after a previous "
                "mid-call failure; open a new ServiceClient"
            )

    def _submit_raw(
        self, header: Dict, frames: Sequence[np.ndarray] = ()
    ) -> Tuple[int, Future]:
        """Send one id-tagged request; returns ``(id, raw-response future)``."""
        future: Future = Future()
        with self._plock:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        header = dict(header)
        header["id"] = request_id
        try:
            with self._lock:
                self._check_usable()
                send_message(self._wfile, header, frames, version=2)
        except BaseException:
            with self._plock:
                self._pending.pop(request_id, None)
            # A partial write leaves the outbound stream unframed: the server
            # will drop the connection on the garbled message either way.
            with self._lock:
                if not self._closed and not self._broken:
                    self._broken = True
                    self._broken_reason = "send failed mid-frame"
            raise
        return request_id, future

    def _result_raw(
        self, request_id: int, future: Future, timeout: Optional[float]
    ) -> Tuple[Dict, List[np.ndarray]]:
        try:
            response, frames = future.result(timeout=timeout)
        except FutureTimeoutError:
            # Abandon the request: the reader discards its eventual response
            # by id, so *only this request* fails — no connection poisoning.
            with self._plock:
                self._pending.pop(request_id, None)
            raise TimeoutError(
                f"no response to request {request_id} within {timeout}s "
                "(request abandoned; the connection remains usable)"
            ) from None
        if not response.get("ok"):
            _raise_remote(response)
        return response, frames

    # ------------------------------------------------------------------ #
    # One call surface over both generations
    # ------------------------------------------------------------------ #
    def _call(
        self,
        header: Dict,
        frames: Sequence[np.ndarray] = (),
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[Dict, List[np.ndarray]]:
        if self.protocol >= 2:
            request_id, future = self._submit_raw(header, frames)
            return self._result_raw(
                request_id, future, self.timeout if timeout is None else timeout
            )
        return self._call_v1(header, frames)

    def _call_v1(
        self, header: Dict, frames: Sequence[np.ndarray] = ()
    ) -> Tuple[Dict, List[np.ndarray]]:
        with self._lock:
            self._check_usable()
            try:
                send_message(self._wfile, header, frames, version=1)
                message = recv_message(self._rfile)
            except BaseException:
                # A timeout or I/O error mid-call leaves the stale response
                # in flight: a retry on this socket would read the *previous*
                # call's answer as its own.  Poison the connection instead.
                self._broken = True
                raise
            if message is None:
                self._broken = True
                raise ProtocolError("server closed the connection mid-call")
        response, out_frames = message
        if not response.get("ok"):
            _raise_remote(response)
        return response, out_frames

    # ------------------------------------------------------------------ #
    # Public API (the SolverEndpoint surface)
    # ------------------------------------------------------------------ #
    def register_pattern(
        self,
        A,
        *,
        kernel: str = "cholesky",
        ordering: str = "natural",
        options: Optional[Union[SympilerOptions, Dict]] = None,
    ) -> RemoteHandle:
        """Register ``A``'s pattern on the server; returns a remote handle.

        ``A`` may be anything the front-end ingest layer accepts
        (:class:`CSCMatrix`, ``scipy.sparse``, COO triplets, dense) — it is
        converted before the wire frames are built.
        """
        if not isinstance(A, CSCMatrix):
            from repro.frontend.ingest import as_csc

            A = as_csc(A)
        payload: Optional[Dict] = None
        if isinstance(options, SympilerOptions):
            payload = asdict(options)
            payload["c_flags"] = list(payload["c_flags"])
            payload["transformation_order"] = list(payload["transformation_order"])
        elif options is not None:
            payload = dict(options)
        header = {
            "op": "register",
            "n": A.n,
            "kernel": kernel,
            "ordering": ordering,
            "options": payload,
        }
        with observe_trace.span("wire-register", kernel=kernel, n=A.n):
            header.update(observe_trace.wire_trace_headers())
            response, _ = self._call(header, [A.indptr, A.indices, A.data])
        return RemoteHandle(**response["handle"])

    @staticmethod
    def _solve_header_frames(handle, values, rhs, timeout=None):
        handle_id = handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        header = {"op": "solve", "handle": handle_id, "timeout": timeout}
        frames = [
            np.ascontiguousarray(values, dtype=np.float64),
            np.ascontiguousarray(rhs, dtype=np.float64),
        ]
        return header, frames

    @staticmethod
    def _solution_from(response: Dict, frames: List[np.ndarray]) -> np.ndarray:
        if len(frames) != 1:
            raise ProtocolError(f"solve response carried {len(frames)} frames")
        return np.array(frames[0], dtype=np.float64, copy=True)

    def submit(
        self,
        handle: Union[RemoteHandle, str],
        values: np.ndarray,
        rhs: np.ndarray,
    ) -> Future:
        """Enqueue one solve; returns a future resolving to the solution.

        Under protocol v2 this is genuinely pipelined: the request goes on
        the wire immediately and many submits can be in flight on one
        connection — enough to fill the server's coalescing window from a
        single client.  Under v1 the call degrades to a synchronous
        round-trip whose (already-resolved) future is returned, preserving
        the :class:`~repro.service.endpoint.SolverEndpoint` surface.
        """
        header, frames = self._solve_header_frames(handle, values, rhs)
        # The span covers enqueueing only (the future resolves later), but
        # the trace headers captured under it make every shard-side span a
        # child of this request — that is the cross-process trace edge.
        if self.protocol < 2:
            result: Future = Future()
            try:
                with observe_trace.span("wire-submit", handle=header["handle"]):
                    header.update(observe_trace.wire_trace_headers())
                    response, out_frames = self._call_v1(header, frames)
                result.set_result(self._solution_from(response, out_frames))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                result.set_exception(exc)
            return result
        with observe_trace.span("wire-submit", handle=header["handle"]):
            header.update(observe_trace.wire_trace_headers())
            _, raw = self._submit_raw(header, frames)
        result = Future()

        def _chain(done: Future) -> None:
            try:
                response, out_frames = done.result()
                if not response.get("ok"):
                    result.set_exception(error_from_wire(response))
                    return
                result.set_result(self._solution_from(response, out_frames))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                result.set_exception(exc)

        raw.add_done_callback(_chain)
        return result

    @staticmethod
    def result(future: Future, *, timeout: Optional[float] = None) -> np.ndarray:
        """Wait on a :meth:`submit` future (sugar for ``future.result``)."""
        return future.result(timeout=timeout)

    def solve(
        self,
        handle: Union[RemoteHandle, str],
        values: np.ndarray,
        rhs: np.ndarray,
        *,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Solve one system on a registered pattern; returns the solution."""
        header, frames = self._solve_header_frames(handle, values, rhs, timeout)
        with observe_trace.span("wire-solve", handle=header["handle"]):
            header.update(observe_trace.wire_trace_headers())
            response, out_frames = self._call(header, frames, timeout=timeout)
        return self._solution_from(response, out_frames)

    def stats(self) -> Dict:
        """The server's cumulative metrics snapshot."""
        response, _ = self._call({"op": "stats"})
        return response["stats"]

    def metrics_text(self) -> str:
        """The server's unified registry as Prometheus exposition text.

        Fetches the ``metrics`` wire verb: the server renders its default
        :class:`~repro.observe.registry.MetricsRegistry` (service counters,
        cache collectors, per-phase span totals) in text format 0.0.4 and
        ships it as one ``uint8`` frame; this decodes it back to ``str``.
        """
        _, frames = self._call({"op": "metrics"})
        if len(frames) != 1:
            raise ProtocolError(f"metrics response carried {len(frames)} frames")
        return bytes(np.asarray(frames[0], dtype=np.uint8)).decode("utf-8")

    def evict(self, handle: Union[RemoteHandle, str]) -> bool:
        """Explicitly evict a registered pattern server-side."""
        handle_id = handle.handle_id if isinstance(handle, RemoteHandle) else str(handle)
        response, _ = self._call({"op": "evict", "handle": handle_id})
        return bool(response.get("evicted"))

    def ping(self) -> bool:
        """Liveness probe."""
        response, _ = self._call({"op": "ping"})
        return bool(response.get("pong"))

    def ping_info(self) -> Dict:
        """A timed liveness probe: the server's reply plus round-trip facts.

        Against a v2 server the reply carries ``server_wall_time`` /
        ``server_monotonic`` / ``pid``; this adds the client-side send/recv
        wall clocks and ``rtt_seconds``, which is everything
        :meth:`estimate_clock_offset` needs from one probe.  Against a v1
        server only the client-side fields are present.
        """
        sent_at = time.time()
        response, _ = self._call({"op": "ping"})
        received_at = time.time()
        info = dict(response)
        info["client_send_wall_time"] = sent_at
        info["client_recv_wall_time"] = received_at
        info["rtt_seconds"] = received_at - sent_at
        return info

    def estimate_clock_offset(self, samples: int = 5) -> float:
        """Estimate ``server_wall_clock - client_wall_clock`` in seconds.

        NTP-style: each timed ping brackets the server's reported wall time
        between the client's send and receive stamps; the sample with the
        smallest round-trip (least queueing noise) wins, and the offset is
        the server time minus the bracket midpoint.  Returns 0.0 against a
        v1 server (no server timestamps — clocks are assumed shared, which
        holds for the single-host fleet).  Used by
        :meth:`ShardFleet.chrome_trace` to place every shard's spans on the
        fleet client's clock.
        """
        best_rtt: Optional[float] = None
        best_offset = 0.0
        for _ in range(max(1, samples)):
            info = self.ping_info()
            server_wall = info.get("server_wall_time")
            if server_wall is None:
                return 0.0
            midpoint = (
                info["client_send_wall_time"] + info["client_recv_wall_time"]
            ) / 2.0
            if best_rtt is None or info["rtt_seconds"] < best_rtt:
                best_rtt = info["rtt_seconds"]
                best_offset = float(server_wall) - midpoint
        return best_offset

    def health(self) -> Dict:
        """The server's health document (uptime, wire version, load facts).

        Fetches the ``health`` wire verb: service-level liveness (uptime,
        registered patterns, in-flight count, queue depth, solve counters)
        plus transport facts (wire version, server pid, server clocks,
        whether tracing is enabled server-side).
        """
        response, _ = self._call({"op": "health"})
        return response["health"]

    def trace_spans(self, *, drain: bool = True) -> Dict:
        """Fetch (and by default drain) the server's finished-span buffer.

        Returns ``{"pid": ..., "enabled": ..., "spans": [span dicts]}``.
        With ``drain=True`` each span is returned exactly once across calls,
        so repeated fleet trace merges never duplicate work.
        """
        response, frames = self._call({"op": "trace", "drain": bool(drain)})
        if len(frames) != 1:
            raise ProtocolError(f"trace response carried {len(frames)} frames")
        raw = bytes(np.asarray(frames[0], dtype=np.uint8)).decode("utf-8")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"undecodable trace payload: {exc}") from exc

    def shutdown_server(self) -> None:
        """Ask the server to shut down (it answers, then stops accepting)."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------ #
    def _teardown(self) -> None:
        for stream in (self._wfile, self._rfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Close the connection (idempotent).

        Pending v2 futures fail with :class:`ShardUnavailableError` as the
        reader thread observes the closed socket and drains them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            # Unblock the reader thread's recv immediately.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._teardown()
        reader = self._reader
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=1.0)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
