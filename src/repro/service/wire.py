"""Stdlib-only wire transport: JSON headers + raw ndarray frames over sockets.

The protocol is deliberately tiny — one framing rule in both directions::

    b"RSRV" | version:u8 | header_len:u32 (big-endian)
    <header_len bytes of JSON>
    <frame 0 bytes> <frame 1 bytes> ...

The JSON header carries the operation and its scalar arguments plus a
``frames`` manifest (``[{"dtype": "float64", "shape": [n]}, ...]``); the
frames follow as raw C-order bytes, so a megabyte of matrix values crosses
the socket without base64 or pickle (and without trusting the peer with
arbitrary object deserialization).  Works identically over TCP
(:class:`socketserver.ThreadingTCPServer`) and Unix domain sockets.

Operations: ``register`` (pattern + values + kernel/options → handle
metadata), ``solve`` (handle id + values + rhs → solution frame), ``stats``,
``metrics`` (the unified observability registry rendered as Prometheus text,
returned as a ``uint8`` frame), ``health`` (service liveness + uptime +
wire/pid/clock facts), ``trace`` (drain this process's finished-span buffer
as a JSON ``uint8`` frame — what :meth:`ShardFleet.chrome_trace` merges),
``evict``, ``ping``, ``shutdown`` and ``hello``.  Error responses carry
``ok: false``, a ``kind`` (the stable tags of :mod:`repro.service.errors` —
``"overloaded"`` includes ``retry_after`` for client backoff, ``"evicted"``
means re-register), ``retryable`` and the server-side message.

**Distributed tracing**: any request header may carry ``trace_id`` /
``parent_id`` (emitted by :func:`repro.observe.trace.wire_trace_headers` on
the client only while a span is open).  The server ``attach_remote``-s that
context around the operation, so shard-side spans join the caller's trace,
parented under the caller's request span.  v1 servers ignore the keys; when
tracing is disabled the headers carry no trace keys at all.

**Protocol v2** (negotiated, v1 clients keep working):

* ``hello`` — the client's first message (framed as v1 so pre-v2 servers
  answer with a harmless ``unknown operation`` error instead of dropping the
  connection) advertises its supported versions; the server answers with the
  highest mutual version.  No hello ⇒ the connection speaks v1.
* **request ids** — a v2 request may carry ``id`` in its header; the
  response echoes it.  ``solve`` requests with an id are dispatched through
  the service's *async* ``submit`` path and their responses may arrive **out
  of order**, so one connection keeps a full coalescing window in flight
  instead of one lock-step round-trip per request.  Requests without an id
  (and every v1 request) keep strict request/response ordering.

Responses are framed with the same version byte as the request they answer,
so both protocol generations coexist on one server (different connections —
or even interleaved id-less messages on a v2 connection).
"""

from __future__ import annotations

import json
import math
import os
import socketserver
import struct
import threading
import time
from dataclasses import fields as dataclass_fields
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.observe import trace as observe_trace
from repro.service.errors import ProtocolError, to_wire_error
from repro.service.session import SolverService
from repro.sparse.csc import CSCMatrix

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "ProtocolError",
    "send_message",
    "recv_message",
    "handle_request",
    "SolverServiceServer",
    "serve_background",
]

MAGIC = b"RSRV"
#: The newest protocol generation this build speaks (and the default framing
#: version for :func:`send_message`).
WIRE_VERSION = 2
#: Every generation the server accepts on the wire.  v1 is the original
#: lock-step protocol; v2 adds ``hello`` negotiation and request-id
#: pipelining.  The framing bytes are identical — only the version byte and
#: the header vocabulary differ.
SUPPORTED_WIRE_VERSIONS = (1, 2)
_HEAD = struct.Struct(">4sBI")

#: Hard ceilings so a corrupt or malicious peer fails loudly instead of
#: driving the server into a giant allocation.
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_FRAME_BYTES = 1 << 31

#: Frame dtypes the server will materialize.  Object/str dtypes are refused
#: outright; everything numeric round-trips bit-exactly.
_ALLOWED_DTYPES = frozenset(
    ["float64", "float32", "int64", "int32", "int16", "uint8", "bool"]
)


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def send_message(
    stream: BinaryIO,
    header: Dict,
    frames: Sequence[np.ndarray] = (),
    *,
    version: int = WIRE_VERSION,
) -> None:
    """Write one framed message (header JSON + raw ndarray frames).

    ``version`` selects the framing version byte; servers answer each request
    with the version it arrived under, clients frame according to what the
    ``hello`` negotiation settled on.
    """
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise ProtocolError(f"cannot frame unsupported wire version {version}")
    arrays = []
    for frame in frames:
        a = np.asarray(frame)
        if not a.flags["C_CONTIGUOUS"]:
            # ascontiguousarray would also promote 0-d to 1-d, corrupting the
            # shape manifest; only copy when the layout actually requires it.
            a = np.ascontiguousarray(a)
        arrays.append(a)
    header = dict(header)
    header["frames"] = [
        {"dtype": str(a.dtype), "shape": list(a.shape)} for a in arrays
    ]
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(payload)} bytes exceeds the limit")
    stream.write(_HEAD.pack(MAGIC, version, len(payload)))
    stream.write(payload)
    for a in arrays:
        if a.ndim == 0:
            stream.write(a.tobytes())  # 0-d buffers cannot be byte-cast
        elif a.size:  # zero-size views cannot be byte-cast (and carry no bytes)
            stream.write(memoryview(a).cast("B"))
    stream.flush()


def _read_exact(stream: BinaryIO, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-message ({remaining} of {nbytes} "
                "bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    stream: BinaryIO,
    *,
    with_version: bool = False,
) -> Optional[
    Union[Tuple[Dict, List[np.ndarray]], Tuple[Dict, List[np.ndarray], int]]
]:
    """Read one framed message; ``None`` on clean EOF before a new message.

    Accepts every generation in :data:`SUPPORTED_WIRE_VERSIONS`.  With
    ``with_version=True`` the result is ``(header, frames, version)`` — the
    server uses it to answer each request under the version it arrived with.
    """
    head = stream.read(_HEAD.size)
    if not head:
        return None
    if len(head) < _HEAD.size:
        raise ProtocolError("truncated message head")
    magic, version, header_len = _HEAD.unpack(head)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise ProtocolError(f"unsupported wire version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {header_len} bytes exceeds the limit")
    try:
        header = json.loads(_read_exact(stream, header_len).decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"undecodable header: {exc}") from exc
    frames: List[np.ndarray] = []
    for spec in header.get("frames", []):
        dtype_name = str(spec.get("dtype"))
        if dtype_name not in _ALLOWED_DTYPES:
            raise ProtocolError(f"refusing frame dtype {dtype_name!r}")
        dtype = np.dtype(dtype_name)
        shape = tuple(int(s) for s in spec.get("shape", []))
        if any(s < 0 for s in shape):
            raise ProtocolError(f"negative frame dimension in {shape}")
        # math.prod on Python ints is overflow-free: a malicious shape like
        # [2**33, 2**33] must trip the size ceiling, not wrap around it.
        nbytes = math.prod(shape) * dtype.itemsize
        if nbytes > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {nbytes} bytes exceeds the limit")
        raw = _read_exact(stream, nbytes)
        frames.append(np.frombuffer(raw, dtype=dtype).reshape(shape))
    if with_version:
        return header, frames, version
    return header, frames


# --------------------------------------------------------------------------- #
# Server-side operation dispatch
# --------------------------------------------------------------------------- #
_OPTION_FIELDS = {f.name for f in dataclass_fields(SympilerOptions)}


def _options_from_wire(payload: Optional[Dict]) -> Optional[SympilerOptions]:
    """Rebuild a :class:`SympilerOptions` from a wire dict (unknown keys refused)."""
    if not payload:
        return None
    unknown = set(payload) - _OPTION_FIELDS
    if unknown:
        raise ProtocolError(f"unknown option field(s): {sorted(unknown)}")
    clean = dict(payload)
    if "c_flags" in clean and clean["c_flags"] is not None:
        clean["c_flags"] = tuple(clean["c_flags"])
    if "transformation_order" in clean and clean["transformation_order"] is not None:
        clean["transformation_order"] = tuple(clean["transformation_order"])
    return SympilerOptions().with_updates(**clean)


def _handle_payload(handle) -> Dict:
    return {
        "handle_id": handle.handle_id,
        "fingerprint": handle.fingerprint,
        "kernel": handle.kernel,
        "ordering": handle.ordering,
        "n": handle.n,
        "nnz": handle.nnz,
        "factor_nnz": handle.factor_nnz,
        "warm": handle.warm,
        "schedule_levels": handle.schedule_levels,
        "schedule_avg_width": handle.schedule_avg_width,
    }


def handle_request(
    service: SolverService,
    header: Dict,
    frames: List[np.ndarray],
    *,
    version: int = 1,
) -> Tuple[Dict, List[np.ndarray]]:
    """Execute one wire operation against ``service``.

    Returns ``(response_header, response_frames)``; raises for error paths
    (the connection handler maps exceptions to ``ok: false`` responses so
    one bad request never kills the connection, let alone the server).
    ``version`` is the wire generation the request arrived under — v1
    replies keep their original byte shape (e.g. the bare ``ping`` ack).
    """
    with observe_trace.attach_remote(header.get("trace_id"), header.get("parent_id")):
        with observe_trace.span("serve", op=str(header.get("op"))):
            return _dispatch_op(service, header, frames, version)


def _dispatch_op(
    service: SolverService, header: Dict, frames: List[np.ndarray], version: int
) -> Tuple[Dict, List[np.ndarray]]:
    op = header.get("op")
    if op == "ping":
        reply: Dict = {"ok": True, "pong": True}
        if version >= 2:
            # Server-side clocks let one probe serve both the health surface
            # and the clock-offset estimator behind the merged fleet trace.
            # v2-only: the v1 reply shape stays byte-compatible.
            reply["server_wall_time"] = time.time()
            reply["server_monotonic"] = time.monotonic()
            reply["pid"] = os.getpid()
        return reply, []
    if op == "health":
        health = dict(service.health())
        health.update(
            {
                "wire_version": WIRE_VERSION,
                "wire_versions": list(SUPPORTED_WIRE_VERSIONS),
                "pid": os.getpid(),
                "server_wall_time": time.time(),
                "server_monotonic": time.monotonic(),
                "tracing_enabled": observe_trace.enabled(),
            }
        )
        return {"ok": True, "health": health}, []
    if op == "trace":
        tracer = observe_trace.get_tracer()
        spans = tracer.drain() if header.get("drain", True) else tracer.spans()
        payload = {
            "pid": os.getpid(),
            "enabled": observe_trace.enabled(),
            "spans": [sp.as_dict() for sp in spans],
        }
        raw = np.frombuffer(
            json.dumps(payload, separators=(",", ":"), default=repr).encode("utf-8"),
            dtype=np.uint8,
        )
        return {"ok": True, "count": len(spans)}, [raw]
    if op == "hello":
        # Version negotiation: the client advertises what it speaks, the
        # server answers with the highest mutual generation.  Framed as v1 on
        # the wire so a pre-v2 server answers `unknown operation` (and the
        # client falls back to v1) instead of dropping the connection.
        offered = header.get("versions")
        if offered is None:
            offered = [int(header.get("version", 1))]
        try:
            offered = {int(v) for v in offered}
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"unparseable hello versions: {offered!r}") from exc
        mutual = [v for v in SUPPORTED_WIRE_VERSIONS if v in offered]
        if not mutual:
            raise ProtocolError(
                f"no mutual wire version (client {sorted(offered)}, "
                f"server {list(SUPPORTED_WIRE_VERSIONS)})"
            )
        return {
            "ok": True,
            "version": max(mutual),
            "versions": list(SUPPORTED_WIRE_VERSIONS),
        }, []
    if op == "stats":
        return {"ok": True, "stats": service.stats()}, []
    if op == "metrics":
        # Prometheus exposition text (unified registry: service counters,
        # cache collectors, per-phase span totals) shipped as a uint8 frame
        # so the existing framing rules carry it without a new encoding.
        from repro.observe import prometheus_text

        text = prometheus_text()
        payload = np.frombuffer(text.encode("utf-8"), dtype=np.uint8)
        return (
            {"ok": True, "content_type": "text/plain; version=0.0.4"},
            [payload],
        )
    if op == "register":
        if len(frames) != 3:
            raise ProtocolError(
                "register expects 3 frames (indptr, indices, data), "
                f"got {len(frames)}"
            )
        indptr, indices, data = frames
        n = int(header.get("n", len(indptr) - 1))
        A = CSCMatrix(
            n,
            n,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(data, dtype=np.float64),
        )
        handle = service.register_pattern(
            A,
            kernel=str(header.get("kernel", "cholesky")),
            ordering=str(header.get("ordering", "natural")),
            options=_options_from_wire(header.get("options")),
        )
        return {"ok": True, "handle": _handle_payload(handle)}, []
    if op == "solve":
        if len(frames) != 2:
            raise ProtocolError(
                f"solve expects 2 frames (values, rhs), got {len(frames)}"
            )
        values, rhs = frames
        x = service.solve(
            str(header.get("handle", "")),
            np.asarray(values, dtype=np.float64).reshape(-1),
            np.asarray(rhs, dtype=np.float64).reshape(-1),
            timeout=header.get("timeout"),
        )
        return {"ok": True}, [x]
    if op == "evict":
        evicted = service.evict(str(header.get("handle", "")))
        return {"ok": True, "evicted": bool(evicted)}, []
    if op == "shutdown":
        return {"ok": True, "shutting_down": True}, []
    raise ProtocolError(f"unknown operation {op!r}")


def _error_response(exc: Exception) -> Dict:
    # One mapping for the in-process and wire paths: defined in errors.py.
    return to_wire_error(exc)


class _ServiceConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of framed request exchanges.

    v1 (and id-less v2) requests run lock-step: handle, answer, next.  v2
    ``solve`` requests carrying an ``id`` go through the service's async
    ``submit`` path — the response is written by a completion callback under
    the per-connection write lock, possibly out of order and interleaved
    with later requests' responses, so a single connection fills the
    service's coalescing window instead of trickling one request per
    round-trip.
    """

    def setup(self) -> None:  # pragma: no cover - exercised via sockets
        super().setup()
        # Serializes response writes: the recv loop (sync responses) and the
        # solve completion callbacks (pipelined responses) share one stream.
        self._write_lock = threading.Lock()

    def _send_response(
        self, response: Dict, out_frames: Sequence[np.ndarray], version: int
    ) -> bool:
        try:
            with self._write_lock:
                send_message(self.wfile, response, out_frames, version=version)
            return True
        except (OSError, ValueError):
            # The client went away (or the stream was torn down mid-write);
            # the service itself is unaffected.
            return False

    def _submit_pipelined_solve(
        self, header: Dict, frames: List[np.ndarray], version: int
    ) -> None:
        """Dispatch one id-carrying v2 solve through the async submit path."""
        request_id = header.get("id")
        service = self.server.service
        try:
            if len(frames) != 2:
                raise ProtocolError(
                    f"solve expects 2 frames (values, rhs), got {len(frames)}"
                )
            values, rhs = frames
            # The serve span closes as soon as the request is enqueued (the
            # connection thread moves on to the next pipelined message), but
            # `submit` captures the context first — so the coalescer's
            # dispatch spans still land under the remote caller's trace.
            with observe_trace.attach_remote(
                header.get("trace_id"), header.get("parent_id")
            ):
                with observe_trace.span("serve", op="solve"):
                    future = service.submit(
                        str(header.get("handle", "")),
                        np.asarray(values, dtype=np.float64).reshape(-1),
                        np.asarray(rhs, dtype=np.float64).reshape(-1),
                    )
        except Exception as exc:
            # Synchronous rejection (overload, eviction, shape): answer
            # immediately — only this request fails, the connection lives on.
            response = _error_response(exc)
            response["id"] = request_id
            self._send_response(response, [], version)
            return

        def _finish(done) -> None:
            try:
                x = done.result()
                response, out_frames = {"ok": True, "id": request_id}, [x]
            except Exception as exc:  # noqa: BLE001 - mapped onto the wire
                response = _error_response(exc)
                response["id"] = request_id
                out_frames = []
            self._send_response(response, out_frames, version)

        future.add_done_callback(_finish)

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                message = recv_message(self.rfile, with_version=True)
            except ProtocolError as exc:
                # The stream is unsynchronized after a framing error; report
                # and drop the connection (the service itself is unaffected).
                # Framed as v1 — the lowest common denominator, since the
                # offending message's generation is unknown.
                self._send_response(_error_response(exc), [], 1)
                return
            if message is None:
                return
            header, frames, version = message
            request_id = header.get("id")
            if version >= 2 and request_id is not None and header.get("op") == "solve":
                self._submit_pipelined_solve(header, frames, version)
                continue
            try:
                response, out_frames = handle_request(
                    self.server.service, header, frames, version=version
                )
            except Exception as exc:
                response, out_frames = _error_response(exc), []
            if request_id is not None:
                response["id"] = request_id
            if not self._send_response(response, out_frames, version):
                return
            if header.get("op") == "shutdown" and response.get("ok"):
                self.server.request_shutdown()
                return


class SolverServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server exposing one :class:`SolverService`.

    ``server_address`` follows the stdlib convention (``(host, port)``; port
    0 binds an ephemeral port, reported via ``server_address`` after
    construction).  Each connection runs in its own thread; the coalescer
    underneath groups their concurrent same-pattern solves into shared
    batches — threads are the transport, micro-batches the execution.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, server_address, service: SolverService) -> None:
        super().__init__(server_address, _ServiceConnectionHandler)
        self.service = service
        self._shutdown_thread: Optional[threading.Thread] = None

    def request_shutdown(self) -> None:
        """Shut the server down from a handler thread (non-blocking)."""
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(
                target=self.shutdown, daemon=True
            )
            self._shutdown_thread.start()

    def server_close(self) -> None:  # pragma: no cover - trivial override
        super().server_close()
        self.service.close()


def serve_background(
    service: SolverService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[SolverServiceServer, threading.Thread]:
    """Start a server thread for ``service``; returns (server, thread).

    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = SolverServiceServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-server", daemon=True
    )
    thread.start()
    return server, thread
