"""Stdlib-only wire transport: JSON headers + raw ndarray frames over sockets.

The protocol is deliberately tiny — one framing rule in both directions::

    b"RSRV" | version:u8 | header_len:u32 (big-endian)
    <header_len bytes of JSON>
    <frame 0 bytes> <frame 1 bytes> ...

The JSON header carries the operation and its scalar arguments plus a
``frames`` manifest (``[{"dtype": "float64", "shape": [n]}, ...]``); the
frames follow as raw C-order bytes, so a megabyte of matrix values crosses
the socket without base64 or pickle (and without trusting the peer with
arbitrary object deserialization).  Works identically over TCP
(:class:`socketserver.ThreadingTCPServer`) and Unix domain sockets.

Operations: ``register`` (pattern + values + kernel/options → handle
metadata), ``solve`` (handle id + values + rhs → solution frame), ``stats``,
``metrics`` (the unified observability registry rendered as Prometheus text,
returned as a ``uint8`` frame), ``evict``, ``ping`` and ``shutdown``.  Error responses carry ``ok: false``,
a ``kind`` (``"overloaded"`` includes ``retry_after`` for client backoff,
``"evicted"`` means re-register) and the server-side message.
"""

from __future__ import annotations

import json
import math
import socketserver
import struct
import threading
from dataclasses import fields as dataclass_fields
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.service.admission import PatternEvictedError, ServiceOverloadedError
from repro.service.session import SolverService
from repro.sparse.csc import CSCMatrix

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "ProtocolError",
    "send_message",
    "recv_message",
    "handle_request",
    "SolverServiceServer",
    "serve_background",
]

MAGIC = b"RSRV"
WIRE_VERSION = 1
_HEAD = struct.Struct(">4sBI")

#: Hard ceilings so a corrupt or malicious peer fails loudly instead of
#: driving the server into a giant allocation.
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_FRAME_BYTES = 1 << 31

#: Frame dtypes the server will materialize.  Object/str dtypes are refused
#: outright; everything numeric round-trips bit-exactly.
_ALLOWED_DTYPES = frozenset(
    ["float64", "float32", "int64", "int32", "int16", "uint8", "bool"]
)


class ProtocolError(RuntimeError):
    """Malformed or oversized wire data."""


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def send_message(
    stream: BinaryIO, header: Dict, frames: Sequence[np.ndarray] = ()
) -> None:
    """Write one framed message (header JSON + raw ndarray frames)."""
    arrays = []
    for frame in frames:
        a = np.asarray(frame)
        if not a.flags["C_CONTIGUOUS"]:
            # ascontiguousarray would also promote 0-d to 1-d, corrupting the
            # shape manifest; only copy when the layout actually requires it.
            a = np.ascontiguousarray(a)
        arrays.append(a)
    header = dict(header)
    header["frames"] = [
        {"dtype": str(a.dtype), "shape": list(a.shape)} for a in arrays
    ]
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(payload)} bytes exceeds the limit")
    stream.write(_HEAD.pack(MAGIC, WIRE_VERSION, len(payload)))
    stream.write(payload)
    for a in arrays:
        if a.ndim == 0:
            stream.write(a.tobytes())  # 0-d buffers cannot be byte-cast
        elif a.size:  # zero-size views cannot be byte-cast (and carry no bytes)
            stream.write(memoryview(a).cast("B"))
    stream.flush()


def _read_exact(stream: BinaryIO, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-message ({remaining} of {nbytes} "
                "bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    stream: BinaryIO,
) -> Optional[Tuple[Dict, List[np.ndarray]]]:
    """Read one framed message; ``None`` on clean EOF before a new message."""
    head = stream.read(_HEAD.size)
    if not head:
        return None
    if len(head) < _HEAD.size:
        raise ProtocolError("truncated message head")
    magic, version, header_len = _HEAD.unpack(head)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {header_len} bytes exceeds the limit")
    try:
        header = json.loads(_read_exact(stream, header_len).decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"undecodable header: {exc}") from exc
    frames: List[np.ndarray] = []
    for spec in header.get("frames", []):
        dtype_name = str(spec.get("dtype"))
        if dtype_name not in _ALLOWED_DTYPES:
            raise ProtocolError(f"refusing frame dtype {dtype_name!r}")
        dtype = np.dtype(dtype_name)
        shape = tuple(int(s) for s in spec.get("shape", []))
        if any(s < 0 for s in shape):
            raise ProtocolError(f"negative frame dimension in {shape}")
        # math.prod on Python ints is overflow-free: a malicious shape like
        # [2**33, 2**33] must trip the size ceiling, not wrap around it.
        nbytes = math.prod(shape) * dtype.itemsize
        if nbytes > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {nbytes} bytes exceeds the limit")
        raw = _read_exact(stream, nbytes)
        frames.append(np.frombuffer(raw, dtype=dtype).reshape(shape))
    return header, frames


# --------------------------------------------------------------------------- #
# Server-side operation dispatch
# --------------------------------------------------------------------------- #
_OPTION_FIELDS = {f.name for f in dataclass_fields(SympilerOptions)}


def _options_from_wire(payload: Optional[Dict]) -> Optional[SympilerOptions]:
    """Rebuild a :class:`SympilerOptions` from a wire dict (unknown keys refused)."""
    if not payload:
        return None
    unknown = set(payload) - _OPTION_FIELDS
    if unknown:
        raise ProtocolError(f"unknown option field(s): {sorted(unknown)}")
    clean = dict(payload)
    if "c_flags" in clean and clean["c_flags"] is not None:
        clean["c_flags"] = tuple(clean["c_flags"])
    if "transformation_order" in clean and clean["transformation_order"] is not None:
        clean["transformation_order"] = tuple(clean["transformation_order"])
    return SympilerOptions().with_updates(**clean)


def _handle_payload(handle) -> Dict:
    return {
        "handle_id": handle.handle_id,
        "fingerprint": handle.fingerprint,
        "kernel": handle.kernel,
        "ordering": handle.ordering,
        "n": handle.n,
        "nnz": handle.nnz,
        "factor_nnz": handle.factor_nnz,
        "warm": handle.warm,
        "schedule_levels": handle.schedule_levels,
        "schedule_avg_width": handle.schedule_avg_width,
    }


def handle_request(
    service: SolverService, header: Dict, frames: List[np.ndarray]
) -> Tuple[Dict, List[np.ndarray]]:
    """Execute one wire operation against ``service``.

    Returns ``(response_header, response_frames)``; raises for error paths
    (the connection handler maps exceptions to ``ok: false`` responses so
    one bad request never kills the connection, let alone the server).
    """
    op = header.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}, []
    if op == "stats":
        return {"ok": True, "stats": service.stats()}, []
    if op == "metrics":
        # Prometheus exposition text (unified registry: service counters,
        # cache collectors, per-phase span totals) shipped as a uint8 frame
        # so the existing framing rules carry it without a new encoding.
        from repro.observe import prometheus_text

        text = prometheus_text()
        payload = np.frombuffer(text.encode("utf-8"), dtype=np.uint8)
        return (
            {"ok": True, "content_type": "text/plain; version=0.0.4"},
            [payload],
        )
    if op == "register":
        if len(frames) != 3:
            raise ProtocolError(
                "register expects 3 frames (indptr, indices, data), "
                f"got {len(frames)}"
            )
        indptr, indices, data = frames
        n = int(header.get("n", len(indptr) - 1))
        A = CSCMatrix(
            n,
            n,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(data, dtype=np.float64),
        )
        handle = service.register_pattern(
            A,
            kernel=str(header.get("kernel", "cholesky")),
            ordering=str(header.get("ordering", "natural")),
            options=_options_from_wire(header.get("options")),
        )
        return {"ok": True, "handle": _handle_payload(handle)}, []
    if op == "solve":
        if len(frames) != 2:
            raise ProtocolError(
                f"solve expects 2 frames (values, rhs), got {len(frames)}"
            )
        values, rhs = frames
        x = service.solve(
            str(header.get("handle", "")),
            np.asarray(values, dtype=np.float64).reshape(-1),
            np.asarray(rhs, dtype=np.float64).reshape(-1),
            timeout=header.get("timeout"),
        )
        return {"ok": True}, [x]
    if op == "evict":
        evicted = service.evict(str(header.get("handle", "")))
        return {"ok": True, "evicted": bool(evicted)}, []
    if op == "shutdown":
        return {"ok": True, "shutting_down": True}, []
    raise ProtocolError(f"unknown operation {op!r}")


def _error_response(exc: Exception) -> Dict:
    if isinstance(exc, ServiceOverloadedError):
        return {
            "ok": False,
            "kind": "overloaded",
            "error": str(exc),
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, PatternEvictedError):
        # KeyError str() wraps the message in quotes; unwrap for the client.
        message = exc.args[0] if exc.args else str(exc)
        return {"ok": False, "kind": "evicted", "error": str(message)}
    if isinstance(exc, ProtocolError):
        return {"ok": False, "kind": "protocol", "error": str(exc)}
    return {"ok": False, "kind": type(exc).__name__, "error": str(exc)}


class _ServiceConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of framed request/response exchanges."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                message = recv_message(self.rfile)
            except ProtocolError as exc:
                # The stream is unsynchronized after a framing error; report
                # and drop the connection (the service itself is unaffected).
                try:
                    send_message(self.wfile, _error_response(exc))
                except OSError:
                    pass
                return
            if message is None:
                return
            header, frames = message
            try:
                response, out_frames = handle_request(
                    self.server.service, header, frames
                )
            except Exception as exc:
                response, out_frames = _error_response(exc), []
            try:
                send_message(self.wfile, response, out_frames)
            except OSError:
                return
            if header.get("op") == "shutdown" and response.get("ok"):
                self.server.request_shutdown()
                return


class SolverServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server exposing one :class:`SolverService`.

    ``server_address`` follows the stdlib convention (``(host, port)``; port
    0 binds an ephemeral port, reported via ``server_address`` after
    construction).  Each connection runs in its own thread; the coalescer
    underneath groups their concurrent same-pattern solves into shared
    batches — threads are the transport, micro-batches the execution.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, server_address, service: SolverService) -> None:
        super().__init__(server_address, _ServiceConnectionHandler)
        self.service = service
        self._shutdown_thread: Optional[threading.Thread] = None

    def request_shutdown(self) -> None:
        """Shut the server down from a handler thread (non-blocking)."""
        if self._shutdown_thread is None:
            self._shutdown_thread = threading.Thread(
                target=self.shutdown, daemon=True
            )
            self._shutdown_thread.start()

    def server_close(self) -> None:  # pragma: no cover - trivial override
        super().server_close()
        self.service.close()


def serve_background(
    service: SolverService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[SolverServiceServer, threading.Thread]:
    """Start a server thread for ``service``; returns (server, thread).

    The caller owns shutdown: ``server.shutdown(); server.server_close()``.
    """
    server = SolverServiceServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-server", daemon=True
    )
    thread.start()
    return server, thread
