"""The serving layer: a long-lived solver service over the compiled-kernel stack.

The paper's inspector/executor amortization pays off when one compile serves
many numeric executions; this package turns that into a served resource:

* :mod:`repro.service.session` — :class:`SolverService`:
  ``register_pattern`` (compile + pin → :class:`PatternHandle`), ``submit``
  (future-based solves), synchronous ``solve``, explicit ``evict``.
* :mod:`repro.service.coalescer` — micro-batched coalescing of in-flight
  same-pattern requests into the batched runtime (stacked python kernels /
  threaded C kernels), with per-request error isolation.
* :mod:`repro.service.admission` — bounded in-flight work
  (reject-with-retry-after backpressure) and the per-pattern LRU
  compiled-artifact budget.
* :mod:`repro.service.metrics` — cumulative counters, coalesced-batch-size
  histogram and latency quantiles behind the ``stats`` endpoint.
* :mod:`repro.service.wire` / :mod:`repro.service.client` — a stdlib-only
  socket transport (JSON header + raw ndarray frames) and the mirroring
  :class:`ServiceClient`; ``python -m repro.service`` runs the server.
"""

from repro.service.admission import (
    AdmissionController,
    PatternEvictedError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.client import RemoteHandle, RemoteServiceError, ServiceClient
from repro.service.coalescer import Coalescer
from repro.service.metrics import ServiceMetrics
from repro.service.session import PatternHandle, SolverService
from repro.service.wire import SolverServiceServer, serve_background

__all__ = [
    "SolverService",
    "PatternHandle",
    "ServiceClient",
    "RemoteHandle",
    "RemoteServiceError",
    "SolverServiceServer",
    "serve_background",
    "Coalescer",
    "ServiceMetrics",
    "AdmissionController",
    "ServiceOverloadedError",
    "PatternEvictedError",
    "ServiceClosedError",
]
