"""The serving layer: solver services, a wire protocol, and a sharded fleet.

The paper's inspector/executor amortization pays off when one compile serves
many numeric executions; this package turns that into a served resource with
**one uniform surface** — :class:`SolverEndpoint` — implemented at three
scales:

* :class:`SolverService` (:mod:`repro.service.session`) — in-process:
  ``register_pattern`` (compile + pin → :class:`PatternHandle`), ``submit``
  (future-based solves), synchronous ``solve``, explicit ``evict``.
* :class:`ServiceClient` (:mod:`repro.service.client`) — one connection to a
  remote service over the stdlib-only wire protocol
  (:mod:`repro.service.wire`: JSON header + raw ndarray frames).  Protocol
  **v2** is negotiated via a ``hello`` frame and pipelines many id-tagged
  requests on one connection (``submit``/``result``); v1 peers interoperate
  unchanged.  ``python -m repro.service`` runs the server.
* :class:`ShardFleet` (:mod:`repro.service.fleet`) — N service *processes*
  over the shared compiled-kernel disk cache behind a consistent-hash router
  (:mod:`repro.service.router`): patterns pin to shards by fingerprint, and
  a dead shard's replacement re-registers **warm** from disk — zero
  recompiles, counter-asserted.

Because all three implement :class:`SolverEndpoint`, code written against
the protocol moves between in-process, networked, and sharded deployments
without change — start with ``SolverService``, scale out later.

Support modules: :mod:`repro.service.coalescer` (micro-batched coalescing of
in-flight same-pattern requests with per-request error isolation),
:mod:`repro.service.admission` (bounded in-flight work with
reject-with-retry-after backpressure; per-pattern LRU artifact budget),
:mod:`repro.service.metrics` (counters/histograms behind ``stats``), and
:mod:`repro.service.errors` — the consolidated exception taxonomy
(:class:`ServiceError` base with ``retryable``/``retry_after``) mapped
*identically* in-process and over the wire.
"""

from repro.service.admission import AdmissionController
from repro.service.client import RemoteHandle, ServiceClient
from repro.service.coalescer import Coalescer
from repro.service.endpoint import SolverEndpoint
from repro.service.errors import (
    PatternEvictedError,
    ProtocolError,
    RemoteServiceError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShardUnavailableError,
)
from repro.service.fleet import ShardFleet
from repro.service.metrics import ServiceMetrics
from repro.service.router import ConsistentHashRing
from repro.service.session import PatternHandle, SolverService
from repro.service.wire import SolverServiceServer, serve_background

__all__ = [
    "SolverEndpoint",
    "SolverService",
    "PatternHandle",
    "ServiceClient",
    "RemoteHandle",
    "ShardFleet",
    "ConsistentHashRing",
    "SolverServiceServer",
    "serve_background",
    "Coalescer",
    "ServiceMetrics",
    "AdmissionController",
    "ServiceError",
    "ServiceOverloadedError",
    "PatternEvictedError",
    "ServiceClosedError",
    "ShardUnavailableError",
    "ProtocolError",
    "RemoteServiceError",
]
