"""Consolidated serving-layer errors and their wire mapping.

Every error the serving layer can surface — in process, over the wire, or
from the sharded fleet — derives from :class:`ServiceError`, which carries
the two fields a caller needs for a retry decision:

* ``retryable`` — whether the *same* request may succeed if re-issued
  (saturation, a dead shard mid-failover), as opposed to a caller bug
  (unknown handle, malformed frames), and
* ``retry_after`` — an optional backoff hint in seconds.

The classes keep their historic stdlib bases (``KeyError`` for evictions,
``RuntimeError`` for overload, ``ConnectionError`` for shard loss) so
existing ``except`` clauses continue to match.

The **wire mapping is defined once, here**: :func:`to_wire_error` renders any
exception as an ``ok: false`` response header and :func:`error_from_wire`
rebuilds the local type from one, so a client of the TCP protocol and a
caller of the in-process :class:`~repro.service.session.SolverService` see
*identical* exception types with identical ``retry_after`` hints.  Errors
with no dedicated class round-trip as :class:`RemoteServiceError` with the
server-side ``kind`` preserved.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "ServiceError",
    "ServiceOverloadedError",
    "PatternEvictedError",
    "ServiceClosedError",
    "ShardUnavailableError",
    "ProtocolError",
    "RemoteServiceError",
    "WIRE_ERROR_TYPES",
    "to_wire_error",
    "error_from_wire",
]


class ServiceError(Exception):
    """Base of every serving-layer error.

    ``kind`` is the stable wire tag (``class`` ↔ ``kind`` is a bijection for
    the dedicated types below); ``retryable`` says whether re-issuing the
    same request can succeed; ``retry_after`` optionally hints how long to
    back off first.
    """

    kind: str = "error"
    retryable: bool = False

    def __init__(self, message: str = "", *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = None if retry_after is None else float(retry_after)

    @property
    def message(self) -> str:
        """The human-readable message (``KeyError``-quote-free)."""
        return str(self.args[0]) if self.args else ""


class ServiceOverloadedError(ServiceError, RuntimeError):
    """The service is saturated; retry after ``retry_after`` seconds."""

    kind = "overloaded"
    retryable = True

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message, retry_after=float(retry_after))


class PatternEvictedError(ServiceError, KeyError):
    """The handle's pattern was evicted (or never registered here).

    Re-register the pattern to obtain a fresh handle; the on-disk code cache
    makes that a warm (zero-recompile) operation.
    """

    kind = "evicted"


class ServiceClosedError(ServiceError, RuntimeError):
    """The service has been closed and accepts no further work."""

    kind = "closed"


class ShardUnavailableError(ServiceError, ConnectionError):
    """A shard (or its connection) died with the request unresolved.

    Raised by :class:`~repro.service.client.ServiceClient` when its
    connection breaks and by :class:`~repro.service.fleet.ShardFleet` when a
    shard cannot be recovered.  Retryable: the fleet respawns or rebalances,
    and the shared on-disk cache makes the replacement's re-registration a
    warm, zero-recompile operation.
    """

    kind = "shard-unavailable"
    retryable = True


class ProtocolError(ServiceError, RuntimeError):
    """Malformed, oversized, or version-incompatible wire data."""

    kind = "protocol"


class RemoteServiceError(ServiceError, RuntimeError):
    """The server reported a failure with no more specific local type.

    ``kind`` preserves the server-side classification (usually the remote
    exception's class name); ``retryable`` mirrors the server's verdict when
    it sent one.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "error",
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.kind = str(kind)
        self.retryable = bool(retryable)


#: The dedicated wire kinds (``kind`` ↔ class, both directions).
WIRE_ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.kind: cls
    for cls in (
        ServiceOverloadedError,
        PatternEvictedError,
        ServiceClosedError,
        ShardUnavailableError,
        ProtocolError,
    )
}


def to_wire_error(exc: BaseException) -> Dict:
    """Render any exception as an ``ok: false`` response header.

    The single server-side mapping: dedicated :class:`ServiceError` types
    ship their stable ``kind`` plus ``retryable``/``retry_after``; anything
    else ships its class name as the kind (non-retryable).
    """
    if isinstance(exc, ServiceError):
        payload: Dict = {
            "ok": False,
            "kind": exc.kind,
            "error": exc.message or str(exc),
            "retryable": exc.retryable,
        }
        if exc.retry_after is not None:
            payload["retry_after"] = exc.retry_after
        return payload
    if isinstance(exc, KeyError):
        # KeyError str() wraps the message in quotes; unwrap for the client.
        message = exc.args[0] if exc.args else str(exc)
        return {"ok": False, "kind": type(exc).__name__, "error": str(message)}
    return {"ok": False, "kind": type(exc).__name__, "error": str(exc)}


def error_from_wire(response: Dict) -> ServiceError:
    """Rebuild the local exception for an ``ok: false`` response header.

    The single client-side mapping, inverse of :func:`to_wire_error` for the
    dedicated kinds; unknown kinds become :class:`RemoteServiceError` with
    the server-side classification preserved.
    """
    kind = str(response.get("kind", "error"))
    message = str(response.get("error", "remote error"))
    retry_after = response.get("retry_after")
    cls = WIRE_ERROR_TYPES.get(kind)
    if cls is ServiceOverloadedError:
        return ServiceOverloadedError(
            message, retry_after=float(retry_after if retry_after is not None else 0.05)
        )
    if cls is not None:
        return cls(message, retry_after=retry_after)
    return RemoteServiceError(
        message,
        kind=kind,
        retryable=bool(response.get("retryable", False)),
        retry_after=retry_after,
    )
