"""The :class:`SolverEndpoint` protocol — one solver-serving surface, three scales.

Every way of reaching the compiled-kernel serving stack implements the same
eight methods, so callers swap local ↔ remote ↔ fleet without code changes:

* :class:`~repro.service.session.SolverService` — in process (one process,
  many threads, micro-batched coalescing),
* :class:`~repro.service.client.ServiceClient` — one server over the wire
  (protocol v2 pipelines submits; v1 servers degrade gracefully),
* :class:`~repro.service.fleet.ShardFleet` — N worker processes behind a
  pattern-affinity consistent-hash router.

The contract::

    handle = endpoint.register_pattern(A, kernel=..., ordering=..., options=...)
    future = endpoint.submit(handle, values, rhs)      # async, pipelined
    x      = endpoint.solve(handle, values, rhs)       # sync = submit + wait
    endpoint.evict(handle)                             # drop pinned artifacts
    endpoint.stats()                                   # cumulative counters
    endpoint.health()                                  # liveness + load facts
    endpoint.metrics_text()                            # Prometheus exposition
    endpoint.close()

``submit`` returns a :class:`concurrent.futures.Future` (or an object with
the same ``result(timeout)``/``exception()``/``add_done_callback`` surface)
resolving to the solution vector.  Errors are the consolidated types of
:mod:`repro.service.errors` at every scale — an overloaded fleet raises the
same :class:`~repro.service.errors.ServiceOverloadedError` (with the same
``retry_after``) an overloaded in-process service does.

The protocol is ``runtime_checkable``: ``isinstance(obj, SolverEndpoint)``
verifies the method surface (names only, per :pep:`544`).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

__all__ = ["SolverEndpoint"]


@runtime_checkable
class SolverEndpoint(Protocol):
    """Anything that serves registered-pattern solves (local, wire, fleet)."""

    def register_pattern(
        self,
        A,
        *,
        kernel: str = "cholesky",
        ordering: str = "natural",
        options=None,
    ):
        """Register a sparsity pattern; compile/pin once, return a handle."""
        ...

    def submit(self, handle, values, rhs):
        """Enqueue one solve; returns a future resolving to the solution."""
        ...

    def solve(self, handle, values, rhs, *, timeout: Optional[float] = None):
        """Synchronous solve: submit + wait."""
        ...

    def evict(self, handle) -> bool:
        """Drop a registered pattern (idempotent); True when it was present."""
        ...

    def stats(self) -> Dict:
        """Cumulative counters/histograms snapshot."""
        ...

    def health(self) -> Dict:
        """A small liveness document: status, uptime, load facts."""
        ...

    def metrics_text(self) -> str:
        """The unified registry as Prometheus exposition text."""
        ...

    def close(self) -> None:
        """Release every resource (idempotent)."""
        ...
