"""Fill-reducing orderings.

Sparse direct solvers permute the matrix symmetrically with a fill-reducing
ordering before factorization.  The paper relies on the library-default
orderings (AMD in CHOLMOD/Eigen); this reproduction provides a plain
minimum-degree ordering and reverse Cuthill–McKee.  Both operate on the
*pattern* of ``A + Aᵀ`` only, as orderings are purely symbolic.
"""

from __future__ import annotations

import heapq
from typing import List, Set

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.permutation import Permutation
from repro.sparse.utils import symmetrize_pattern

__all__ = [
    "natural_ordering",
    "minimum_degree_ordering",
    "reverse_cuthill_mckee",
    "ordering_by_name",
]


def _adjacency_sets(A: CSCMatrix) -> List[Set[int]]:
    """Adjacency sets (excluding self loops) of the symmetrized pattern."""
    S = symmetrize_pattern(A)
    adj: List[Set[int]] = []
    for j in range(S.n_cols):
        rows = S.col_rows(j)
        adj.append({int(i) for i in rows if i != j})
    return adj


def natural_ordering(A: CSCMatrix) -> Permutation:
    """The identity ordering (no reordering)."""
    if not A.is_square():
        raise ValueError("orderings are defined for square matrices")
    return Permutation.identity(A.n_rows)


def minimum_degree_ordering(A: CSCMatrix) -> Permutation:
    """A straightforward minimum-degree ordering.

    At each step the vertex of minimum current degree in the elimination graph
    is eliminated and its neighbourhood is turned into a clique.  This is the
    classical (non-approximate, non-quotient-graph) formulation: asymptotically
    slower than AMD but simple, deterministic and adequate at the matrix sizes
    used in this reproduction.  Ties are broken by the smallest vertex index
    so the ordering is reproducible.
    """
    if not A.is_square():
        raise ValueError("orderings are defined for square matrices")
    n = A.n_rows
    if n == 0:
        return Permutation.identity(0)
    adj = _adjacency_sets(A)
    eliminated = np.zeros(n, dtype=bool)
    # Lazy-deletion heap of (degree, vertex); stale entries are skipped.
    heap: List[tuple[int, int]] = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=np.int64)
    for k in range(n):
        while True:
            deg, v = heapq.heappop(heap)
            if not eliminated[v] and deg == len(adj[v]):
                break
        order[k] = v
        eliminated[v] = True
        neighbours = adj[v]
        # Form the clique among the remaining neighbours of v.
        for u in neighbours:
            adj[u].discard(v)
        nb_list = list(neighbours)
        for idx, u in enumerate(nb_list):
            updated = False
            for w in nb_list[idx + 1 :]:
                if w not in adj[u]:
                    adj[u].add(w)
                    adj[w].add(u)
                    updated = True
                    heapq.heappush(heap, (len(adj[w]), w))
            if updated or True:
                heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    return Permutation(order)


def reverse_cuthill_mckee(A: CSCMatrix) -> Permutation:
    """Reverse Cuthill–McKee: a bandwidth-reducing BFS ordering.

    Components are visited starting from a pseudo-peripheral vertex (the
    lowest-degree vertex of each component); within a BFS level neighbours are
    visited in increasing-degree order, and the final ordering is reversed.
    """
    if not A.is_square():
        raise ValueError("orderings are defined for square matrices")
    n = A.n_rows
    if n == 0:
        return Permutation.identity(0)
    adj = _adjacency_sets(A)
    degree = np.array([len(s) for s in adj], dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    order: List[int] = []
    # Process vertices grouped by connected component.
    for start in np.argsort(degree, kind="stable"):
        start = int(start)
        if visited[start]:
            continue
        queue = [start]
        visited[start] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = sorted((u for u in adj[v] if not visited[u]), key=lambda u: (degree[u], u))
            for u in nbrs:
                visited[u] = True
                queue.append(u)
    order.reverse()
    return Permutation(np.asarray(order, dtype=np.int64))


_ORDERINGS = {
    "natural": natural_ordering,
    "none": natural_ordering,
    "mindeg": minimum_degree_ordering,
    "minimum_degree": minimum_degree_ordering,
    "amd": minimum_degree_ordering,  # closest available substitute
    "rcm": reverse_cuthill_mckee,
}


def ordering_by_name(name: str):
    """Look up an ordering function by its short name.

    Recognized names: ``natural``/``none``, ``mindeg``/``minimum_degree``,
    ``amd`` (mapped to the minimum-degree substitute) and ``rcm``.
    """
    key = name.lower()
    if key not in _ORDERINGS:
        raise ValueError(
            f"unknown ordering {name!r}; available: {sorted(set(_ORDERINGS))}"
        )
    return _ORDERINGS[key]
