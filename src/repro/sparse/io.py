"""Matrix Market I/O.

The paper's experiments use matrices from the SuiteSparse collection, which is
distributed in Matrix Market coordinate format.  This module implements a
self-contained reader/writer for the ``matrix coordinate real
{general,symmetric}`` flavours so the benchmark suite can be exported,
inspected and re-imported without SciPy.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(path: Union[str, os.PathLike]) -> CSCMatrix:
    """Read a Matrix Market coordinate file into a :class:`CSCMatrix`.

    Supports the ``real``/``integer``/``pattern`` fields with ``general`` or
    ``symmetric`` symmetry.  Symmetric files are expanded to a full pattern.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError("not a Matrix Market file (missing %%MatrixMarket header)")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise ValueError(f"malformed Matrix Market header: {header!r}")
        _, obj, fmt, field, symmetry = tokens[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError("only 'matrix coordinate' files are supported")
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in {"real", "integer", "pattern"}:
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in {"general", "symmetric"}:
            raise ValueError(f"unsupported symmetry {symmetry!r}")

        # Skip comment lines, then read the size line.
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows_s, n_cols_s, nnz_s = line.split()
        n_rows, n_cols, nnz = int(n_rows_s), int(n_cols_s), int(nnz_s)

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        count = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            i = int(parts[0]) - 1
            j = int(parts[1]) - 1
            v = 1.0 if field == "pattern" else float(parts[2])
            rows.append(i)
            cols.append(j)
            vals.append(v)
            if symmetry == "symmetric" and i != j:
                rows.append(j)
                cols.append(i)
                vals.append(v)
            count += 1
        if count != nnz:
            raise ValueError(f"expected {nnz} entries, found {count}")
    coo = COOMatrix(
        n_rows,
        n_cols,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )
    return coo.to_csc()


def write_matrix_market(
    path: Union[str, os.PathLike],
    A: CSCMatrix,
    *,
    symmetric: bool = False,
    comment: str = "",
) -> None:
    """Write ``A`` to a Matrix Market coordinate file.

    With ``symmetric=True`` only the lower triangle is written and the file is
    tagged ``symmetric``; the caller is responsible for ``A`` actually being
    symmetric.
    """
    symmetry = "symmetric" if symmetric else "general"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{_HEADER_PREFIX} matrix coordinate real {symmetry}\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        entries = []
        for j in range(A.n_cols):
            s = A.col_slice(j)
            for i, v in zip(A.indices[s], A.data[s]):
                if symmetric and i < j:
                    continue
                entries.append((int(i), int(j), float(v)))
        fh.write(f"{A.n_rows} {A.n_cols} {len(entries)}\n")
        for i, j, v in entries:
            fh.write(f"{i + 1} {j + 1} {v:.17g}\n")
