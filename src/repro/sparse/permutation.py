"""Permutations and symmetric permutation of sparse matrices.

Fill-reducing orderings (see :mod:`repro.sparse.ordering`) produce a
:class:`Permutation` which is applied symmetrically to an SPD matrix before
factorization: ``B = P A Pᵀ``.  The same permutation object converts
right-hand sides and solutions between the original and permuted orderings.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix

__all__ = ["Permutation"]


class Permutation:
    """A permutation of ``n`` items.

    The convention is the "new ← old" map used by CSparse: ``perm[k]`` is the
    *original* index that ends up in position ``k`` after permuting, so that
    for a vector ``x``, ``(P x)[k] = x[perm[k]]``.
    """

    __slots__ = ("perm", "inv")

    def __init__(self, perm: np.ndarray) -> None:
        perm = np.asarray(perm, dtype=np.int64)
        if perm.ndim != 1:
            raise ValueError("a permutation must be a 1-D integer array")
        n = perm.size
        seen = np.zeros(n, dtype=bool)
        if n and (perm.min() < 0 or perm.max() >= n):
            raise ValueError("permutation entries out of range")
        seen[perm] = True
        if not np.all(seen):
            raise ValueError("permutation is not a bijection")
        self.perm = perm
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n, dtype=np.int64)
        self.inv = inv

    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` items."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_inverse(cls, inv: np.ndarray) -> "Permutation":
        """Build from the inverse ("old → new") map."""
        inv = np.asarray(inv, dtype=np.int64)
        perm = np.empty_like(inv)
        perm[inv] = np.arange(inv.size, dtype=np.int64)
        return cls(perm)

    @property
    def n(self) -> int:
        """Number of permuted items."""
        return int(self.perm.size)

    def is_identity(self) -> bool:
        """True when the permutation leaves every index in place."""
        return bool(np.array_equal(self.perm, np.arange(self.n, dtype=np.int64)))

    # ------------------------------------------------------------------ #
    # Vector application
    # ------------------------------------------------------------------ #
    def apply_vec(self, x: np.ndarray) -> np.ndarray:
        """Return ``P x`` (gather: ``out[k] = x[perm[k]]``)."""
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise ValueError("vector length does not match the permutation size")
        return x[self.perm]

    def apply_inverse_vec(self, y: np.ndarray) -> np.ndarray:
        """Return ``Pᵀ y`` (scatter back to the original ordering)."""
        y = np.asarray(y)
        if y.shape[0] != self.n:
            raise ValueError("vector length does not match the permutation size")
        return y[self.inv]

    # ------------------------------------------------------------------ #
    # Matrix application
    # ------------------------------------------------------------------ #
    def symmetric_permute(self, A: CSCMatrix) -> CSCMatrix:
        """Return ``P A Pᵀ`` for a square matrix ``A``."""
        if not A.is_square():
            raise ValueError("symmetric permutation requires a square matrix")
        if A.n_rows != self.n:
            raise ValueError("matrix order does not match the permutation size")
        coo = A.to_coo()
        new_rows = self.inv[coo.rows]
        new_cols = self.inv[coo.cols]
        return COOMatrix(A.n_rows, A.n_cols, new_rows, new_cols, coo.data).to_csc()

    def permute_rows(self, A: CSCMatrix) -> CSCMatrix:
        """Return ``P A`` (rows reordered)."""
        if A.n_rows != self.n:
            raise ValueError("row count does not match the permutation size")
        coo = A.to_coo()
        return COOMatrix(
            A.n_rows, A.n_cols, self.inv[coo.rows], coo.cols, coo.data
        ).to_csc()

    def permute_cols(self, A: CSCMatrix) -> CSCMatrix:
        """Return ``A Pᵀ`` (columns reordered)."""
        if A.n_cols != self.n:
            raise ValueError("column count does not match the permutation size")
        coo = A.to_coo()
        return COOMatrix(
            A.n_rows, A.n_cols, coo.rows, self.inv[coo.cols], coo.data
        ).to_csc()

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation "apply ``other`` first, then ``self``"."""
        if self.n != other.n:
            raise ValueError("cannot compose permutations of different sizes")
        return Permutation(other.perm[self.perm])

    def inverse(self) -> "Permutation":
        """Return the inverse permutation."""
        return Permutation(self.inv.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self.perm, other.perm)

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(self.perm.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Permutation(n={self.n})"
