"""Compressed-sparse-column (CSC) matrix container.

CSC is the storage format assumed throughout the paper: a matrix is the tuple
``{n, Lp, Li, Lx}`` of order, column pointers, row indices and numeric values
(Figure 1 of the paper).  Row indices within each column are kept sorted,
which the symbolic-analysis routines rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """A compressed-sparse-column matrix with sorted row indices.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        ``int64`` array of length ``n_cols + 1``; column ``j`` occupies the
        half-open slice ``indptr[j]:indptr[j+1]`` of ``indices``/``data``.
    indices:
        ``int64`` array of row indices, sorted within each column.
    data:
        ``float64`` array of numeric values, parallel to ``indices``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        if check:
            self.validate()

    # ------------------------------------------------------------------ #
    # Validation and basic properties
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` if the CSC invariants do not hold.

        Invariants checked: pointer array length and monotonicity, index
        bounds, per-column sortedness and absence of duplicate row indices.
        """
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.indptr.shape != (self.n_cols + 1,):
            raise ValueError(
                f"indptr must have length n_cols+1={self.n_cols + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise ValueError("indices/data length must equal indptr[-1]")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.n_rows:
                raise ValueError("row index out of range")
        for j in range(self.n_cols):
            col = self.indices[self.indptr[j] : self.indptr[j + 1]]
            if col.size > 1:
                diffs = np.diff(col)
                if np.any(diffs < 0):
                    raise ValueError(f"row indices in column {j} are not sorted")
                if np.any(diffs == 0):
                    raise ValueError(f"duplicate row index in column {j}")

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (explicit zeros included)."""
        return int(self.indptr[-1])

    @property
    def n(self) -> int:
        """Matrix order; only defined for square matrices."""
        if self.n_rows != self.n_cols:
            raise ValueError("n is only defined for square matrices")
        return self.n_rows

    def is_square(self) -> bool:
        """True when the matrix has as many rows as columns."""
        return self.n_rows == self.n_cols

    def density(self) -> float:
        """Fraction of stored entries relative to a dense matrix."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    def col_slice(self, j: int) -> slice:
        """The slice of ``indices``/``data`` occupied by column ``j``."""
        if not (0 <= j < self.n_cols):
            raise IndexError(f"column {j} out of range [0, {self.n_cols})")
        return slice(int(self.indptr[j]), int(self.indptr[j + 1]))

    def col_rows(self, j: int) -> np.ndarray:
        """Row indices of column ``j`` (a view, do not mutate)."""
        return self.indices[self.col_slice(j)]

    def col_values(self, j: int) -> np.ndarray:
        """Numeric values of column ``j`` (a view, do not mutate)."""
        return self.data[self.col_slice(j)]

    def col_nnz(self, j: int) -> int:
        """Number of stored entries in column ``j``."""
        s = self.col_slice(j)
        return s.stop - s.start

    def iter_cols(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(j, rows, values)`` for every column."""
        for j in range(self.n_cols):
            s = self.col_slice(j)
            yield j, self.indices[s], self.data[s]

    def get(self, i: int, j: int) -> float:
        """Return entry ``(i, j)``, or ``0.0`` when it is not stored."""
        rows = self.col_rows(j)
        pos = np.searchsorted(rows, i)
        if pos < rows.size and rows[pos] == i:
            return float(self.col_values(j)[pos])
        return 0.0

    def diagonal(self) -> np.ndarray:
        """Dense vector of the main diagonal (zeros for missing entries)."""
        n = min(self.n_rows, self.n_cols)
        diag = np.zeros(n, dtype=np.float64)
        for j in range(n):
            diag[j] = self.get(j, j)
        return diag

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "CSCMatrix":
        """Build from a COO matrix, summing duplicate entries."""
        n_rows, n_cols = coo.shape
        if coo.nnz == 0:
            return cls.empty(n_rows, n_cols)
        # Sort by (col, row) so each column is contiguous and sorted.
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        vals = coo.data[order]
        # Collapse duplicates: consecutive equal (col, row) pairs.
        keep = np.ones(rows.size, dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_ids = np.cumsum(keep) - 1
        summed = np.zeros(int(group_ids[-1]) + 1, dtype=np.float64)
        np.add.at(summed, group_ids, vals)
        rows = rows[keep]
        cols = cols[keep]
        counts = np.bincount(cols, minlength=n_cols)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n_rows, n_cols, indptr, rows, summed)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, drop_tol: float = 0.0) -> "CSCMatrix":
        """Build from a dense array, dropping entries with ``|a_ij| <= drop_tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        n_rows, n_cols = dense.shape
        mask = np.abs(dense) > drop_tol
        counts = mask.sum(axis=0)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.nonzero(mask.T)[1].astype(np.int64)
        data = dense.T[mask.T].astype(np.float64)
        return cls(n_rows, n_cols, indptr, indices, data)

    @classmethod
    def from_scipy(cls, mat) -> "CSCMatrix":
        """Build from any SciPy sparse matrix."""
        csc = mat.tocsc()
        csc.sort_indices()
        return cls(
            csc.shape[0],
            csc.shape[1],
            csc.indptr.astype(np.int64),
            csc.indices.astype(np.int64),
            csc.data.astype(np.float64),
        )

    @classmethod
    def identity(cls, n: int) -> "CSCMatrix":
        """The ``n``-by-``n`` identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.ones(n, dtype=np.float64)
        return cls(n, n, indptr, indices, data)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSCMatrix":
        """An all-zero matrix with no stored entries."""
        return cls(
            n_rows,
            n_cols,
            np.zeros(n_cols + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )

    @classmethod
    def from_pattern(
        cls,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        fill_value: float = 0.0,
    ) -> "CSCMatrix":
        """Build a matrix from a structural pattern with a constant value."""
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.full(indices.shape[0], fill_value, dtype=np.float64)
        return cls(n_rows, n_cols, indptr, indices, data)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Return a dense ``ndarray`` copy."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for j in range(self.n_cols):
            s = self.col_slice(j)
            dense[self.indices[s], j] = self.data[s]
        return dense

    def to_scipy(self):
        """Return a ``scipy.sparse.csc_matrix`` sharing no storage."""
        import scipy.sparse as sp

        return sp.csc_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def to_coo(self) -> "COOMatrix":
        """Return the COO (triplet) form."""
        from repro.sparse.coo import COOMatrix

        cols = np.repeat(np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(self.n_rows, self.n_cols, self.indices.copy(), cols, self.data.copy())

    def to_csr(self) -> "CSRMatrix":
        """Return the CSR form (row-major compressed storage)."""
        from repro.sparse.csr import CSRMatrix

        return CSRMatrix.from_csc(self)

    def copy(self) -> "CSCMatrix":
        """Deep copy."""
        return CSCMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    def with_values(self, data: np.ndarray) -> "CSCMatrix":
        """A same-pattern matrix carrying new numeric values.

        The pattern arrays are shared (not copied) — the natural constructor
        for the fixed-pattern/changing-values scenario batches the batched
        runtime consumes.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (self.nnz,):
            raise ValueError(f"data must have shape ({self.nnz},), got {data.shape}")
        return CSCMatrix(
            self.n_rows, self.n_cols, self.indptr, self.indices, data, check=False
        )

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSCMatrix":
        """Return the transpose as a new CSC matrix (columns stay sorted)."""
        n_rows, n_cols = self.shape
        nnz = self.nnz
        counts = np.bincount(self.indices, minlength=n_rows)
        indptr_t = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_t[1:])
        indices_t = np.empty(nnz, dtype=np.int64)
        data_t = np.empty(nnz, dtype=np.float64)
        next_slot = indptr_t[:-1].copy()
        for j in range(n_cols):
            s = self.col_slice(j)
            rows = self.indices[s]
            vals = self.data[s]
            slots = next_slot[rows]
            indices_t[slots] = j
            data_t[slots] = vals
            next_slot[rows] += 1
        return CSCMatrix(n_cols, n_rows, indptr_t, indices_t, data_t, check=False)

    def prune(self, *, drop_tol: float = 0.0) -> "CSCMatrix":
        """Remove stored entries with ``|a_ij| <= drop_tol``."""
        keep = np.abs(self.data) > drop_tol
        new_indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        for j in range(self.n_cols):
            s = self.col_slice(j)
            new_indptr[j + 1] = new_indptr[j] + int(keep[s].sum())
        return CSCMatrix(
            self.n_rows,
            self.n_cols,
            new_indptr,
            self.indices[keep],
            self.data[keep],
            check=False,
        )

    def pattern_equal(self, other: "CSCMatrix") -> bool:
        """True when both matrices have identical nonzero structure."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def allclose(self, other: "CSCMatrix", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerically compare two matrices irrespective of stored pattern."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)

    def scale(self, alpha: float) -> "CSCMatrix":
        """Return ``alpha * A``."""
        out = self.copy()
        out.data *= float(alpha)
        return out

    def add(self, other: "CSCMatrix") -> "CSCMatrix":
        """Return ``A + B`` (patterns are merged)."""
        if self.shape != other.shape:
            raise ValueError("shapes do not match")
        from repro.sparse.coo import COOMatrix

        a = self.to_coo()
        b = other.to_coo()
        return COOMatrix(
            self.n_rows,
            self.n_cols,
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.cols, b.cols]),
            np.concatenate([a.data, b.data]),
        ).to_csc()

    # ------------------------------------------------------------------ #
    # Numeric operations
    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        y = np.zeros(self.n_rows, dtype=np.float64)
        for j in range(self.n_cols):
            xj = x[j]
            if xj != 0.0:
                s = self.col_slice(j)
                np.add.at(y, self.indices[s], self.data[s] * xj)
        return y

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transposed product ``Aᵀ @ y``."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.n_rows,):
            raise ValueError(f"y must have shape ({self.n_rows},), got {y.shape}")
        out = np.empty(self.n_cols, dtype=np.float64)
        for j in range(self.n_cols):
            s = self.col_slice(j)
            out[j] = np.dot(self.data[s], y[self.indices[s]])
        return out

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    # Triangular structure helpers
    # ------------------------------------------------------------------ #
    def is_lower_triangular(self, *, strict: bool = False) -> bool:
        """True if every stored entry lies on/below the diagonal.

        With ``strict=True`` the diagonal itself must be absent.
        """
        for j in range(self.n_cols):
            rows = self.col_rows(j)
            if rows.size == 0:
                continue
            limit = j + 1 if strict else j
            if rows[0] < limit:
                return False
        return True

    def is_upper_triangular(self, *, strict: bool = False) -> bool:
        """True if every stored entry lies on/above the diagonal."""
        for j in range(self.n_cols):
            rows = self.col_rows(j)
            if rows.size == 0:
                continue
            limit = j - 1 if strict else j
            if rows[-1] > limit:
                return False
        return True

    def has_full_diagonal(self) -> bool:
        """True when every diagonal position (i, i) is a stored entry."""
        n = min(self.n_rows, self.n_cols)
        for j in range(n):
            rows = self.col_rows(j)
            pos = np.searchsorted(rows, j)
            if pos >= rows.size or rows[pos] != j:
                return False
        return True

    def column_pattern_hash(self, j: int) -> int:
        """A cheap hash of column ``j``'s row pattern (used in tests)."""
        return hash(self.col_rows(j).tobytes())
