"""Synthetic SPD matrix generators.

The paper's evaluation uses eleven symmetric-positive-definite matrices from
the SuiteSparse collection (Table 2), drawn from structural mechanics, FEM
discretizations, thermal problems and 2-D ecology/geophysics grids.  Those
exact matrices are not available offline, so this module provides generators
for the same *classes* of sparsity structure:

* ``laplacian_2d`` / ``laplacian_3d`` — 5-point / 7-point finite-difference
  Poisson problems (analogues of ``ecology2``, ``tmt_sym``, ``parabolic_fem``,
  ``thermomech_dM``).
* ``fem_stencil_2d`` — 9-point bilinear-FEM stencil (``Dubcova2/3`` analogues).
* ``banded_spd`` / ``block_tridiagonal_spd`` — banded and block-structured
  structural-mechanics style matrices with sizeable supernodes (``cbuckle``,
  ``msc23052``, ``Pres_Poisson`` analogues).
* ``circuit_like_spd`` / ``power_grid_spd`` — graph Laplacians of
  irregular-degree networks (the circuit/power-system motivating domain of
  §1.2, and ``gyro``-like irregular structure).
* ``random_spd`` — uniformly random symmetric pattern, diagonally dominated.

Every generator returns a full (both triangles stored) SPD
:class:`~repro.sparse.csc.CSCMatrix`.  Diagonal dominance is used to guarantee
positive definiteness so every matrix is factorizable without pivoting.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import TripletBuilder
from repro.sparse.csc import CSCMatrix

__all__ = [
    "laplacian_2d",
    "laplacian_3d",
    "fem_stencil_2d",
    "banded_spd",
    "block_tridiagonal_spd",
    "arrow_spd",
    "random_spd",
    "circuit_like_spd",
    "power_grid_spd",
    "saddle_point_indefinite",
    "unsymmetric_diag_dominant",
    "sparse_rhs",
]


def _finalize_spd(builder: TripletBuilder, shift: float = 0.0) -> CSCMatrix:
    """Convert a builder to CSC and add ``shift`` to the diagonal."""
    A = builder.to_csc()
    if shift:
        for j in range(A.n_cols):
            rows = A.col_rows(j)
            pos = np.searchsorted(rows, j)
            if pos < rows.size and rows[pos] == j:
                A.data[A.indptr[j] + pos] += shift
    return A


# --------------------------------------------------------------------------- #
# Mesh / stencil problems
# --------------------------------------------------------------------------- #
def laplacian_2d(nx: int, ny: int | None = None, *, shift: float = 0.0) -> CSCMatrix:
    """5-point Dirichlet Laplacian on an ``nx``-by-``ny`` grid.

    The matrix order is ``nx * ny``; it is SPD for any positive grid size.
    """
    if ny is None:
        ny = nx
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    builder = TripletBuilder(n, n)

    def node(i: int, j: int) -> int:
        return i * ny + j

    for i in range(nx):
        for j in range(ny):
            v = node(i, j)
            builder.add(v, v, 4.0 + shift)
            if i + 1 < nx:
                builder.add_symmetric(node(i + 1, j), v, -1.0)
            if j + 1 < ny:
                builder.add_symmetric(node(i, j + 1), v, -1.0)
    return builder.to_csc()


def laplacian_3d(nx: int, ny: int | None = None, nz: int | None = None, *, shift: float = 0.0) -> CSCMatrix:
    """7-point Dirichlet Laplacian on an ``nx``-by-``ny``-by-``nz`` grid."""
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    if nx <= 0 or ny <= 0 or nz <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny * nz
    builder = TripletBuilder(n, n)

    def node(i: int, j: int, k: int) -> int:
        return (i * ny + j) * nz + k

    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                v = node(i, j, k)
                builder.add(v, v, 6.0 + shift)
                if i + 1 < nx:
                    builder.add_symmetric(node(i + 1, j, k), v, -1.0)
                if j + 1 < ny:
                    builder.add_symmetric(node(i, j + 1, k), v, -1.0)
                if k + 1 < nz:
                    builder.add_symmetric(node(i, j, k + 1), v, -1.0)
    return builder.to_csc()


def fem_stencil_2d(nx: int, ny: int | None = None, *, shift: float = 0.0) -> CSCMatrix:
    """9-point (bilinear finite element) stencil on a 2-D grid.

    Uses the standard Q1 element stiffness stencil ``8/3`` on the diagonal,
    ``-1/3`` on every edge and corner neighbour, which is SPD on a Dirichlet
    grid; a diagonal ``shift`` can be added to increase definiteness margin.
    """
    if ny is None:
        ny = nx
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    builder = TripletBuilder(n, n)

    def node(i: int, j: int) -> int:
        return i * ny + j

    for i in range(nx):
        for j in range(ny):
            v = node(i, j)
            builder.add(v, v, 8.0 / 3.0 + shift)
            for di, dj in ((1, 0), (0, 1), (1, 1), (1, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    builder.add_symmetric(node(ii, jj), v, -1.0 / 3.0)
    return builder.to_csc()


# --------------------------------------------------------------------------- #
# Structured / structural-mechanics style problems
# --------------------------------------------------------------------------- #
def banded_spd(n: int, bandwidth: int, *, seed: int = 0, fill: float = 1.0) -> CSCMatrix:
    """Random symmetric banded matrix made SPD by diagonal dominance.

    Parameters
    ----------
    bandwidth:
        Number of sub-diagonals that may hold nonzeros.
    fill:
        Probability of a within-band entry being nonzero (1.0 = full band).
    """
    if n <= 0:
        raise ValueError("matrix order must be positive")
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    rng = np.random.default_rng(seed)
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    for j in range(n):
        for i in range(j + 1, min(n, j + bandwidth + 1)):
            if fill >= 1.0 or rng.random() < fill:
                v = rng.uniform(-1.0, -0.05)
                builder.add_symmetric(i, j, v)
                row_sums[i] += abs(v)
                row_sums[j] += abs(v)
    for j in range(n):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


def block_tridiagonal_spd(
    n_blocks: int, block_size: int, *, seed: int = 0, dense_coupling: bool = False
) -> CSCMatrix:
    """Block-tridiagonal SPD matrix with dense diagonal blocks.

    The dense diagonal blocks and identical column structure within each block
    make this generator produce large supernodes — a structural-mechanics
    style workload where VS-Block pays off the most.

    Parameters
    ----------
    dense_coupling:
        When true, adjacent blocks are coupled by a fully dense off-diagonal
        block (every column of a block then shares the same below-diagonal
        structure, so whole blocks become supernodes); when false only the
        corresponding degrees of freedom of adjacent blocks are coupled.
    """
    if n_blocks <= 0 or block_size <= 0:
        raise ValueError("block counts and sizes must be positive")
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    for b in range(n_blocks):
        base = b * block_size
        # Dense symmetric diagonal block.
        for jj in range(block_size):
            for ii in range(jj + 1, block_size):
                v = rng.uniform(-1.0, -0.05)
                builder.add_symmetric(base + ii, base + jj, v)
                row_sums[base + ii] += abs(v)
                row_sums[base + jj] += abs(v)
        # Coupling to the next block.
        if b + 1 < n_blocks:
            nxt = (b + 1) * block_size
            for jj in range(block_size):
                if dense_coupling:
                    for ii in range(block_size):
                        v = rng.uniform(-0.3, -0.02)
                        builder.add_symmetric(nxt + ii, base + jj, v)
                        row_sums[nxt + ii] += abs(v)
                        row_sums[base + jj] += abs(v)
                else:
                    v = rng.uniform(-0.5, -0.05)
                    builder.add_symmetric(nxt + jj, base + jj, v)
                    row_sums[nxt + jj] += abs(v)
                    row_sums[base + jj] += abs(v)
    for j in range(n):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


def arrow_spd(n: int, arrow_width: int = 1, *, seed: int = 0) -> CSCMatrix:
    """Arrowhead SPD matrix: tridiagonal plus ``arrow_width`` dense last rows.

    Arrowhead matrices are the classic worst case for natural ordering and a
    good stress test for the orderings and the symbolic fill prediction.
    """
    if n <= 0:
        raise ValueError("matrix order must be positive")
    if arrow_width < 0 or arrow_width >= n:
        raise ValueError("arrow_width must lie in [0, n)")
    rng = np.random.default_rng(seed)
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    for j in range(n - 1):
        v = rng.uniform(-1.0, -0.1)
        builder.add_symmetric(j + 1, j, v)
        row_sums[j] += abs(v)
        row_sums[j + 1] += abs(v)
    for k in range(arrow_width):
        i = n - 1 - k
        for j in range(0, i - 1):
            v = rng.uniform(-0.4, -0.05)
            builder.add_symmetric(i, j, v)
            row_sums[i] += abs(v)
            row_sums[j] += abs(v)
    for j in range(n):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


# --------------------------------------------------------------------------- #
# Irregular graph problems
# --------------------------------------------------------------------------- #
def random_spd(n: int, density: float = 0.01, *, seed: int = 0) -> CSCMatrix:
    """Random symmetric pattern of the given off-diagonal density, SPD.

    ``density`` is the expected fraction of nonzero off-diagonal entries in
    the full matrix; the diagonal is always present.
    """
    if n <= 0:
        raise ValueError("matrix order must be positive")
    if not (0.0 <= density <= 1.0):
        raise ValueError("density must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    # Expected number of strictly-lower-triangular entries.
    target = int(round(density * n * (n - 1) / 2.0))
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    if target > 0:
        rows = rng.integers(0, n, size=3 * target + 8)
        cols = rng.integers(0, n, size=3 * target + 8)
        seen = set()
        count = 0
        for i, j in zip(rows, cols):
            if count >= target:
                break
            i, j = int(i), int(j)
            if i == j:
                continue
            lo, hi = (j, i) if i > j else (i, j)
            if (hi, lo) in seen:
                continue
            seen.add((hi, lo))
            v = rng.uniform(-1.0, -0.05)
            builder.add_symmetric(hi, lo, v)
            row_sums[hi] += abs(v)
            row_sums[lo] += abs(v)
            count += 1
    for j in range(n):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


def circuit_like_spd(n: int, avg_degree: float = 4.0, *, hub_fraction: float = 0.02, seed: int = 0) -> CSCMatrix:
    """Graph-Laplacian-like SPD matrix with a skewed degree distribution.

    Mimics circuit-simulation / power-system Jacobians (§1.2): most nodes have
    a small number of neighbours, while a few hub nodes (ground nets, slack
    buses) connect to many others.  Such matrices have small supernodes, the
    regime where the paper reports CHOLMOD underperforming.
    """
    if n <= 1:
        raise ValueError("matrix order must be at least 2")
    rng = np.random.default_rng(seed)
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    edges = set()

    def add_edge(i: int, j: int) -> None:
        if i == j:
            return
        lo, hi = (j, i) if i > j else (i, j)
        if (hi, lo) in edges:
            return
        edges.add((hi, lo))
        v = rng.uniform(-1.0, -0.1)
        builder.add_symmetric(hi, lo, v)
        row_sums[hi] += abs(v)
        row_sums[lo] += abs(v)

    # A random spanning chain keeps the graph connected.
    perm = rng.permutation(n)
    for k in range(n - 1):
        add_edge(int(perm[k]), int(perm[k + 1]))
    # Random local edges up to the requested average degree.
    extra = max(0, int(round(avg_degree * n / 2.0)) - (n - 1))
    for _ in range(extra):
        i = int(rng.integers(0, n))
        j = int(rng.integers(max(0, i - 25), min(n, i + 25)))
        add_edge(i, j)
    # Hubs connect to many random nodes.
    n_hubs = max(1, int(round(hub_fraction * n)))
    hubs = rng.choice(n, size=n_hubs, replace=False)
    for h in hubs:
        targets = rng.choice(n, size=max(4, n // 50), replace=False)
        for t in targets:
            add_edge(int(h), int(t))
    for j in range(n):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


def power_grid_spd(n_buses: int, *, neighbours: int = 2, rewire: float = 0.05, seed: int = 0) -> CSCMatrix:
    """Small-world network Laplacian: a power-transmission-grid analogue.

    Buses are arranged on a ring, each connected to its ``neighbours`` nearest
    buses on either side; a fraction ``rewire`` of edges is rewired to a
    random bus (long transmission lines).  The admittance-matrix-like result
    is SPD via diagonal dominance.
    """
    if n_buses <= 2:
        raise ValueError("a grid needs at least 3 buses")
    rng = np.random.default_rng(seed)
    builder = TripletBuilder(n_buses, n_buses)
    row_sums = np.zeros(n_buses, dtype=np.float64)
    edges = set()

    def add_edge(i: int, j: int) -> None:
        if i == j:
            return
        lo, hi = (j, i) if i > j else (i, j)
        if (hi, lo) in edges:
            return
        edges.add((hi, lo))
        v = rng.uniform(-2.0, -0.5)
        builder.add_symmetric(hi, lo, v)
        row_sums[hi] += abs(v)
        row_sums[lo] += abs(v)

    for i in range(n_buses):
        for k in range(1, neighbours + 1):
            j = (i + k) % n_buses
            if rng.random() < rewire:
                j = int(rng.integers(0, n_buses))
            add_edge(i, j)
    for j in range(n_buses):
        builder.add(j, j, row_sums[j] + 1.0)
    return builder.to_csc()


# --------------------------------------------------------------------------- #
# Symmetric indefinite (saddle-point) problems
# --------------------------------------------------------------------------- #
def saddle_point_indefinite(
    n_primal: int,
    n_dual: int,
    *,
    coupling_per_row: int = 3,
    seed: int = 0,
) -> CSCMatrix:
    """Symmetric *indefinite* KKT/saddle-point matrix ``[[H, Bᵀ], [B, -C]]``.

    ``H`` (``n_primal`` × ``n_primal``) and ``C`` (``n_dual`` × ``n_dual``)
    are SPD (diagonally dominant band / diagonal blocks) and ``B`` is a sparse
    coupling block with ``coupling_per_row`` entries per dual row.  The result
    is symmetric quasi-definite, hence strongly factorizable: LDLᵀ succeeds
    without pivoting for every symmetric permutation, with exactly
    ``n_primal`` positive and ``n_dual`` negative pivots — the canonical
    workload for the LDLᵀ kernel, which Cholesky rejects.
    """
    if n_primal <= 0 or n_dual <= 0:
        raise ValueError("block orders must be positive")
    rng = np.random.default_rng(seed)
    n = n_primal + n_dual
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n_primal, dtype=np.float64)
    # H: tridiagonal coupling inside the primal block.
    for i in range(n_primal - 1):
        v = rng.uniform(-1.0, -0.2)
        builder.add_symmetric(i + 1, i, v)
        row_sums[i] += abs(v)
        row_sums[i + 1] += abs(v)
    for i in range(n_primal):
        builder.add(i, i, row_sums[i] + rng.uniform(1.0, 2.0))
    # B: sparse coupling between dual rows and primal columns.
    for i in range(n_dual):
        cols = rng.choice(n_primal, size=min(coupling_per_row, n_primal), replace=False)
        for j in cols:
            builder.add_symmetric(n_primal + i, int(j), rng.uniform(0.2, 1.0))
    # -C: strictly negative dual diagonal.
    for i in range(n_dual):
        builder.add(n_primal + i, n_primal + i, -rng.uniform(1.0, 2.0))
    return builder.to_csc()


# --------------------------------------------------------------------------- #
# Unsymmetric (Newton-Jacobian style) problems
# --------------------------------------------------------------------------- #
def unsymmetric_diag_dominant(
    n: int,
    *,
    avg_nnz_per_col: float = 4.0,
    bandwidth: int = 12,
    long_range_fraction: float = 0.15,
    seed: int = 0,
) -> CSCMatrix:
    """Unsymmetric, strictly diagonally dominant matrix (a Jacobian analogue).

    Mimics the Newton–Raphson Jacobians of circuit/power-flow simulation
    (§1.2 of the paper): the *pattern* is fixed by the network topology while
    the values are direction-dependent (``A[i, j] != A[j, i]``, and an entry
    may exist in one direction only, so the pattern itself is unsymmetric).
    Entries cluster in a band around the diagonal (local couplings) with a
    fraction of long-range entries (tie lines); the diagonal strictly
    dominates both its row and its column, so LU without pivoting is stable
    and every pivot is nonzero — the regime the ``lu`` kernel targets.

    Parameters
    ----------
    avg_nnz_per_col:
        Expected number of off-diagonal entries per column.
    bandwidth:
        Half-width of the band most entries fall into.
    long_range_fraction:
        Fraction of entries rewired to a uniformly random row.
    """
    if n <= 0:
        raise ValueError("matrix order must be positive")
    if avg_nnz_per_col < 0:
        raise ValueError("avg_nnz_per_col must be non-negative")
    rng = np.random.default_rng(seed)
    builder = TripletBuilder(n, n)
    row_sums = np.zeros(n, dtype=np.float64)
    col_sums = np.zeros(n, dtype=np.float64)
    seen = set()
    target = int(round(avg_nnz_per_col * n))
    attempts = 0
    count = 0
    while count < target and attempts < 20 * max(target, 1):
        attempts += 1
        j = int(rng.integers(0, n))
        if rng.random() < long_range_fraction:
            i = int(rng.integers(0, n))
        else:
            lo = max(0, j - bandwidth)
            hi = min(n, j + bandwidth + 1)
            i = int(rng.integers(lo, hi))
        if i == j or (i, j) in seen:
            continue
        seen.add((i, j))
        v = float(rng.uniform(0.05, 1.0) * rng.choice((-1.0, 1.0)))
        builder.add(i, j, v)
        row_sums[i] += abs(v)
        col_sums[j] += abs(v)
        count += 1
    for j in range(n):
        sign = 1.0 if rng.random() < 0.85 else -1.0
        builder.add(j, j, sign * (max(row_sums[j], col_sums[j]) + rng.uniform(0.5, 1.5)))
    return builder.to_csc()


# --------------------------------------------------------------------------- #
# Right-hand sides
# --------------------------------------------------------------------------- #
def sparse_rhs(n: int, *, nnz: int | None = None, density: float | None = None, seed: int = 0) -> np.ndarray:
    """A sparse right-hand-side vector as a dense array with few nonzeros.

    Triangular solves in the paper use RHS vectors with less than 5 % fill-in
    (§4.2); the default density here matches that regime.  Exactly one of
    ``nnz``/``density`` may be given; the default is 2 % density (at least one
    nonzero).
    """
    if n <= 0:
        raise ValueError("vector length must be positive")
    if nnz is not None and density is not None:
        raise ValueError("pass either nnz or density, not both")
    if nnz is None:
        density = 0.02 if density is None else density
        nnz = max(1, int(round(density * n)))
    nnz = min(max(int(nnz), 1), n)
    rng = np.random.default_rng(seed)
    b = np.zeros(n, dtype=np.float64)
    positions = rng.choice(n, size=nnz, replace=False)
    b[positions] = rng.uniform(0.5, 2.0, size=nnz)
    return b
