"""Compressed-sparse-row (CSR) matrix container.

CSR is the row-major mirror of CSC.  The symbolic layer uses it when a
row-wise traversal of the matrix is the natural access pattern (for example
when computing the row sparsity pattern of ``L`` used by the Cholesky
VI-Prune inspector).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csc import CSCMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A compressed-sparse-row matrix with sorted column indices per row."""

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        if check:
            self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` if the CSR invariants do not hold."""
        if self.indptr.shape != (self.n_rows + 1,):
            raise ValueError("indptr must have length n_rows + 1")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must start at 0 and be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise ValueError("indices/data length must equal indptr[-1]")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= self.n_cols):
            raise ValueError("column index out of range")
        for i in range(self.n_rows):
            row = self.indices[self.indptr[i] : self.indptr[i + 1]]
            if row.size > 1 and np.any(np.diff(row) <= 0):
                raise ValueError(f"column indices in row {i} must be strictly increasing")

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def row_slice(self, i: int) -> slice:
        """The slice of ``indices``/``data`` occupied by row ``i``."""
        if not (0 <= i < self.n_rows):
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))

    def row_cols(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (a view)."""
        return self.indices[self.row_slice(i)]

    def row_values(self, i: int) -> np.ndarray:
        """Numeric values of row ``i`` (a view)."""
        return self.data[self.row_slice(i)]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, values)`` for every row."""
        for i in range(self.n_rows):
            s = self.row_slice(i)
            yield i, self.indices[s], self.data[s]

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csc(cls, csc: "CSCMatrix") -> "CSRMatrix":
        """Build from a CSC matrix.

        CSR of ``A`` has the same compressed arrays as CSC of ``Aᵀ``, so the
        conversion reuses the CSC transpose kernel.
        """
        t = csc.transpose()
        return cls(csc.n_rows, csc.n_cols, t.indptr, t.indices, t.data, check=False)

    def to_csc(self) -> "CSCMatrix":
        """Convert back to CSC."""
        from repro.sparse.csc import CSCMatrix

        as_csc_of_t = CSCMatrix(
            self.n_cols, self.n_rows, self.indptr, self.indices, self.data, check=False
        )
        return as_csc_of_t.transpose()

    def to_dense(self) -> np.ndarray:
        """Return a dense copy."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.n_rows):
            s = self.row_slice(i)
            dense[i, self.indices[s]] = self.data[s]
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``A @ x`` (row-wise dot products)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},)")
        y = np.empty(self.n_rows, dtype=np.float64)
        for i in range(self.n_rows):
            s = self.row_slice(i)
            y[i] = np.dot(self.data[s], x[self.indices[s]])
        return y

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
