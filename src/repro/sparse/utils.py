"""Structural helpers shared by the sparse, symbolic and kernel layers."""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix

__all__ = [
    "lower_triangle",
    "upper_triangle",
    "symmetrize_pattern",
    "is_symmetric_pattern",
    "residual_norm",
    "dense_lower_from_csc",
    "pattern_of",
    "column_counts",
]


def lower_triangle(A: CSCMatrix, *, strict: bool = False, keep_diagonal: bool = True) -> CSCMatrix:
    """Extract the lower triangle of ``A`` as a new CSC matrix.

    Parameters
    ----------
    strict:
        When true, drop the diagonal as well (keep only ``i > j``).
    keep_diagonal:
        Ignored when ``strict`` is true; otherwise controls whether diagonal
        entries are retained.
    """
    keep_diag = keep_diagonal and not strict
    new_indptr = np.zeros(A.n_cols + 1, dtype=np.int64)
    keep_masks = []
    for j in range(A.n_cols):
        rows = A.col_rows(j)
        if keep_diag:
            mask = rows >= j
        else:
            mask = rows > j
        keep_masks.append(mask)
        new_indptr[j + 1] = new_indptr[j] + int(mask.sum())
    keep = (
        np.concatenate(keep_masks)
        if keep_masks
        else np.zeros(0, dtype=bool)
    )
    return CSCMatrix(
        A.n_rows, A.n_cols, new_indptr, A.indices[keep], A.data[keep], check=False
    )


def upper_triangle(A: CSCMatrix, *, strict: bool = False, keep_diagonal: bool = True) -> CSCMatrix:
    """Extract the upper triangle of ``A`` as a new CSC matrix."""
    keep_diag = keep_diagonal and not strict
    new_indptr = np.zeros(A.n_cols + 1, dtype=np.int64)
    keep_masks = []
    for j in range(A.n_cols):
        rows = A.col_rows(j)
        if keep_diag:
            mask = rows <= j
        else:
            mask = rows < j
        keep_masks.append(mask)
        new_indptr[j + 1] = new_indptr[j] + int(mask.sum())
    keep = (
        np.concatenate(keep_masks)
        if keep_masks
        else np.zeros(0, dtype=bool)
    )
    return CSCMatrix(
        A.n_rows, A.n_cols, new_indptr, A.indices[keep], A.data[keep], check=False
    )


def symmetrize_pattern(A: CSCMatrix) -> CSCMatrix:
    """Return a matrix with the structurally symmetric pattern ``A + Aᵀ``.

    Values are ``A + Aᵀ`` with the diagonal counted once (the value layer is
    irrelevant for the symbolic routines that consume this, but keeping it
    well defined makes the function reusable numerically).
    """
    At = A.transpose()
    both = A.add(At)
    # The diagonal was added twice; subtract one copy.
    diag = A.diagonal()
    out = both.copy()
    for j in range(out.n_cols):
        rows = out.col_rows(j)
        pos = np.searchsorted(rows, j)
        if pos < rows.size and rows[pos] == j:
            out.data[out.indptr[j] + pos] -= diag[j]
    return out


def is_symmetric_pattern(A: CSCMatrix) -> bool:
    """True when the nonzero pattern of ``A`` equals that of ``Aᵀ``."""
    if not A.is_square():
        return False
    At = A.transpose()
    return A.pattern_equal(
        CSCMatrix(A.n_rows, A.n_cols, At.indptr, At.indices, At.data, check=False)
    )


def is_numerically_symmetric(A: CSCMatrix, *, rtol: float = 1e-12, atol: float = 1e-12) -> bool:
    """True when ``A`` equals ``Aᵀ`` numerically."""
    if not A.is_square():
        return False
    return np.allclose(A.to_dense(), A.to_dense().T, rtol=rtol, atol=atol)


def residual_norm(A: CSCMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Relative residual ``||A x - b|| / max(||b||, 1)`` in the 2-norm."""
    r = A.matvec(np.asarray(x, dtype=np.float64)) - np.asarray(b, dtype=np.float64)
    denom = max(float(np.linalg.norm(b)), 1.0)
    return float(np.linalg.norm(r)) / denom


def dense_lower_from_csc(L: CSCMatrix) -> np.ndarray:
    """Dense lower-triangular copy of a CSC factor (upper part zeroed)."""
    dense = L.to_dense()
    return np.tril(dense)


def pattern_of(A: CSCMatrix) -> CSCMatrix:
    """Return a copy of ``A`` whose values are all 1.0 (structure only)."""
    out = A.copy()
    out.data[:] = 1.0
    return out


def column_counts(A: CSCMatrix) -> np.ndarray:
    """Number of stored entries per column, as an ``int64`` vector."""
    return np.diff(A.indptr).astype(np.int64)
