"""Sparse-matrix substrate for the Sympiler reproduction.

This package provides the compressed sparse data structures, synthetic matrix
generators, orderings, permutations and I/O that both the symbolic-analysis
layer (:mod:`repro.symbolic`) and the code generator (:mod:`repro.compiler`)
are built on.  The central container is :class:`repro.sparse.csc.CSCMatrix`,
the compressed-sparse-column format used throughout the paper.
"""

from repro.sparse.coo import COOMatrix, TripletBuilder
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.generators import (
    arrow_spd,
    banded_spd,
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    laplacian_3d,
    power_grid_spd,
    random_spd,
    saddle_point_indefinite,
    sparse_rhs,
    unsymmetric_diag_dominant,
)
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.ordering import (
    minimum_degree_ordering,
    natural_ordering,
    reverse_cuthill_mckee,
)
from repro.sparse.permutation import Permutation
from repro.sparse.utils import (
    dense_lower_from_csc,
    is_symmetric_pattern,
    lower_triangle,
    residual_norm,
    symmetrize_pattern,
    upper_triangle,
)

__all__ = [
    "CSCMatrix",
    "CSRMatrix",
    "COOMatrix",
    "TripletBuilder",
    "Permutation",
    "read_matrix_market",
    "write_matrix_market",
    "minimum_degree_ordering",
    "reverse_cuthill_mckee",
    "natural_ordering",
    "laplacian_2d",
    "laplacian_3d",
    "fem_stencil_2d",
    "banded_spd",
    "block_tridiagonal_spd",
    "arrow_spd",
    "random_spd",
    "circuit_like_spd",
    "power_grid_spd",
    "saddle_point_indefinite",
    "unsymmetric_diag_dominant",
    "sparse_rhs",
    "lower_triangle",
    "upper_triangle",
    "symmetrize_pattern",
    "is_symmetric_pattern",
    "residual_norm",
    "dense_lower_from_csc",
]
