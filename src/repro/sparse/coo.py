"""Coordinate (triplet) sparse format and an incremental triplet builder.

The COO format is the natural assembly format: finite-element assembly, graph
construction and the synthetic generators in :mod:`repro.sparse.generators`
all accumulate ``(row, col, value)`` triplets and convert to CSC once at the
end.  Duplicate entries are summed during conversion, matching the usual
assembly semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sparse.csc import CSCMatrix

__all__ = ["COOMatrix", "TripletBuilder"]


class COOMatrix:
    """An immutable coordinate-format sparse matrix.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    rows, cols:
        Integer arrays of equal length holding the row/column index of every
        stored entry.
    data:
        Floating-point array of the stored values, same length as ``rows``.
    """

    __slots__ = ("n_rows", "n_cols", "rows", "cols", "data")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.shape == cols.shape == data.shape):
            raise ValueError("rows, cols and data must have identical shapes")
        if rows.ndim != 1:
            raise ValueError("triplet arrays must be one-dimensional")
        if n_rows < 0 or n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if rows.size:
            if rows.min(initial=0) < 0 or cols.min(initial=0) < 0:
                raise ValueError("negative indices are not allowed")
            if rows.max(initial=-1) >= n_rows or cols.max(initial=-1) >= n_cols:
                raise ValueError("triplet indices exceed the matrix dimensions")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = rows
        self.cols = cols
        self.data = data

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored triplets (duplicates counted separately)."""
        return int(self.data.size)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC, summing duplicate entries."""
        from repro.sparse.csc import CSCMatrix

        return CSCMatrix.from_coo(self)

    def to_dense(self) -> np.ndarray:
        """Return a dense ``ndarray`` with duplicates summed."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps the row/column index arrays)."""
        return COOMatrix(self.n_cols, self.n_rows, self.cols, self.rows, self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"


class TripletBuilder:
    """Incrementally accumulate ``(row, col, value)`` triplets.

    The builder grows amortized-constant-time Python lists and converts to
    NumPy arrays once, which is far cheaper than repeatedly concatenating
    arrays during assembly.
    """

    def __init__(self, n_rows: int, n_cols: int) -> None:
        if n_rows < 0 or n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._data: list[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        """Append a single triplet.  Duplicates are summed on conversion."""
        if not (0 <= row < self.n_rows):
            raise IndexError(f"row index {row} out of range [0, {self.n_rows})")
        if not (0 <= col < self.n_cols):
            raise IndexError(f"column index {col} out of range [0, {self.n_cols})")
        self._rows.append(int(row))
        self._cols.append(int(col))
        self._data.append(float(value))

    def add_many(
        self,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[float],
    ) -> None:
        """Append a batch of triplets with a single bounds check."""
        rows = np.asarray(list(rows), dtype=np.int64)
        cols = np.asarray(list(cols), dtype=np.int64)
        values = np.asarray(list(values), dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have identical lengths")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.n_rows:
                raise IndexError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.n_cols:
                raise IndexError("column index out of range")
        self._rows.extend(rows.tolist())
        self._cols.extend(cols.tolist())
        self._data.extend(values.tolist())

    def add_symmetric(self, row: int, col: int, value: float) -> None:
        """Append ``(row, col, value)`` and, when off-diagonal, its mirror."""
        self.add(row, col, value)
        if row != col:
            self.add(col, row, value)

    @property
    def nnz(self) -> int:
        """Number of triplets accumulated so far."""
        return len(self._data)

    def to_coo(self) -> COOMatrix:
        """Freeze the builder into a :class:`COOMatrix`."""
        return COOMatrix(
            self.n_rows,
            self.n_cols,
            np.asarray(self._rows, dtype=np.int64),
            np.asarray(self._cols, dtype=np.int64),
            np.asarray(self._data, dtype=np.float64),
        )

    def to_csc(self) -> "CSCMatrix":
        """Freeze the builder and convert to CSC (duplicates summed)."""
        return self.to_coo().to_csc()
