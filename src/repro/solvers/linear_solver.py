"""Factor-once / solve-many SPD linear solver.

Combines the pieces of the library into the workflow a downstream user wants:

1. choose a fill-reducing ordering,
2. run the symbolic inspector and generate specialized Cholesky and
   triangular-solve kernels for the (permuted) pattern,
3. factorize numeric values — repeatedly, as they change — and solve systems
   with forward/backward substitution.

The backward substitution ``Lᵀ z = y`` is performed as a specialized solve on
the transposed factor pattern, which is itself lower triangular, so the same
generated-kernel machinery covers both sweeps.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.sparse.csc import CSCMatrix
from repro.sparse.ordering import ordering_by_name
from repro.sparse.permutation import Permutation

__all__ = ["SparseLinearSolver"]


class SparseLinearSolver:
    """Direct SPD solver: ordering + Sympiler-generated Cholesky.

    Parameters
    ----------
    A:
        SPD matrix (full symmetric storage).
    ordering:
        Fill-reducing ordering name (``"natural"``, ``"mindeg"``/``"amd"``,
        ``"rcm"``).
    options:
        Sympiler code-generation options.

    Examples
    --------
    >>> from repro.sparse import laplacian_2d
    >>> import numpy as np
    >>> A = laplacian_2d(10)
    >>> solver = SparseLinearSolver(A, ordering="mindeg")
    >>> b = np.ones(A.n)
    >>> x = solver.solve(b)
    >>> float(np.linalg.norm(A.matvec(x) - b)) < 1e-8
    True
    """

    def __init__(
        self,
        A: CSCMatrix,
        *,
        ordering: str = "mindeg",
        options: Optional[SympilerOptions] = None,
    ) -> None:
        if not A.is_square():
            raise ValueError("SparseLinearSolver requires a square SPD matrix")
        self.A = A
        self.options = options or SympilerOptions()
        self.ordering_name = ordering
        t0 = time.perf_counter()
        self.permutation: Permutation = ordering_by_name(ordering)(A)
        self.A_permuted = self.permutation.symmetric_permute(A)
        self._sympiler = Sympiler(self.options)
        self._cholesky = self._sympiler.compile_cholesky(self.A_permuted)
        self.setup_seconds = time.perf_counter() - t0
        self._L: Optional[CSCMatrix] = None
        self._forward = None
        self._backward = None
        self._Lt: Optional[CSCMatrix] = None
        self.factorize()

    # ------------------------------------------------------------------ #
    @property
    def L(self) -> CSCMatrix:
        """The current Cholesky factor of the permuted matrix."""
        if self._L is None:
            raise RuntimeError("factorize() has not been run yet")
        return self._L

    @property
    def factor_nnz(self) -> int:
        """Stored entries of the factor."""
        return self._cholesky.factor_nnz

    def factorize(self, A: Optional[CSCMatrix] = None) -> CSCMatrix:
        """(Re-)factorize; ``A`` may carry new values on the same pattern."""
        if A is not None:
            if not A.pattern_equal(self.A):
                raise ValueError(
                    "the new matrix must have the same sparsity pattern; "
                    "build a new SparseLinearSolver for a different pattern"
                )
            self.A = A
            self.A_permuted = self.permutation.symmetric_permute(A)
        self._L = self._cholesky.factorize(self.A_permuted)
        # The triangular-solve kernels are generated once per factor pattern.
        if self._forward is None:
            self._forward = self._sympiler.compile_triangular_solve(
                self._L, rhs_pattern=None, options=self.options
            )
            self._Lt = self._make_transpose_factor_pattern()
            self._backward = self._sympiler.compile_triangular_solve(
                self._Lt, rhs_pattern=None, options=self.options
            )
        else:
            self._Lt = self._make_transpose_factor_pattern()
        return self._L

    def _make_transpose_factor_pattern(self) -> CSCMatrix:
        """``Lᵀ`` reordered so it is lower triangular in the reversed index order.

        Solving ``Lᵀ z = y`` is a backward substitution; reversing both the
        row and column order of ``Lᵀ`` turns it into an ordinary forward
        substitution on a lower-triangular matrix, which the generated
        triangular-solve kernel handles directly.
        """
        Lt = self._L.transpose()
        n = Lt.n
        reverse = Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))
        return reverse.symmetric_permute(Lt)

    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b``."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.A.n,):
            raise ValueError(f"b must have shape ({self.A.n},)")
        pb = self.permutation.apply_vec(b)
        y = self._forward.solve(self._L, pb)
        # Backward substitution via the reversed transposed factor.
        y_rev = y[::-1].copy()
        z_rev = self._backward.solve(self._Lt, y_rev)
        z = z_rev[::-1].copy()
        return self.permutation.apply_inverse_vec(z)

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """Solve ``A X = B`` column by column (``B`` is ``n × k``)."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.n:
            raise ValueError(f"B must have shape ({self.A.n}, k)")
        return np.column_stack([self.solve(B[:, k]) for k in range(B.shape[1])])

    def residual(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual of a computed solution."""
        r = self.A.matvec(x) - np.asarray(b, dtype=np.float64)
        return float(np.linalg.norm(r) / max(np.linalg.norm(b), 1.0))
