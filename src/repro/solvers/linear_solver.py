"""Factor-once / solve-many direct sparse linear solver.

Combines the pieces of the library into the workflow a downstream user wants:

1. choose a fill-reducing ordering,
2. compile specialized factorization and triangular-solve kernels for the
   (permuted) pattern through the kernel registry — ``method="cholesky"`` for
   SPD systems, ``method="ldlt"`` for symmetric indefinite (saddle-point/KKT)
   systems, ``method="lu"`` for unsymmetric diagonally dominant systems
   (Newton Jacobians),
3. factorize numeric values — repeatedly, as they change — and solve systems
   with forward/backward substitution.

Every kernel compile goes through the Sympiler artifact cache, so repeated
refactorizations and the backward sweep reuse the compiled kernels whenever
the factor pattern is unchanged instead of re-running inspection and code
generation.

The backward substitution (``Lᵀ z = y``, or ``U z = y`` for LU) is performed
as a specialized solve on an upper-triangular pattern that becomes lower
triangular after reversing the index order, so the same generated-kernel
machinery covers both sweeps.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.compiler.artifacts import SympiledFactorization
from repro.compiler.cache import CacheStats
from repro.compiler.options import SympilerOptions
from repro.compiler.registry import UnknownKernelError
from repro.compiler.sympiler import Sympiler
from repro.sparse.csc import CSCMatrix
from repro.sparse.ordering import ordering_by_name
from repro.sparse.permutation import Permutation

__all__ = ["SparseLinearSolver", "backward_factor"]


def backward_factor(L: CSCMatrix, U: Optional[CSCMatrix] = None) -> CSCMatrix:
    """The backward-sweep operand, lower triangular in reversed index order.

    The backward substitution solves ``Lᵀ z = y`` (symmetric methods) or
    ``U z = y`` (LU); either matrix is upper triangular, and reversing both
    its row and column order turns the sweep into an ordinary forward
    substitution on a lower-triangular matrix, which the generated
    triangular-solve kernel handles directly.  Module-level so the batched
    runtime can build per-item backward operands from batch factors.
    """
    upper = U if U is not None else L.transpose()
    n = upper.n
    reverse = Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))
    return reverse.symmetric_permute(upper)


class SparseLinearSolver:
    """Direct solver: ordering + Sympiler-generated factorization kernels.

    Parameters
    ----------
    A:
        Square matrix (full storage): SPD for ``method="cholesky"``,
        symmetric indefinite allowed for ``method="ldlt"``, unsymmetric
        diagonally dominant for ``method="lu"`` (no pivoting is performed).
        Accepts anything the front-end ingest layer understands — a
        :class:`~repro.sparse.csc.CSCMatrix` (used as-is, no copy), a
        ``scipy.sparse`` matrix, a COO triplet tuple, or a dense 2-D array
        (see :func:`repro.frontend.ingest.ingest`).
    method:
        Factorization kernel to compile — any factorization registered in the
        kernel registry (``"cholesky"``, ``"ldlt"`` or ``"lu"``).
    ordering:
        Fill-reducing ordering name (``"natural"``, ``"mindeg"``/``"amd"``,
        ``"rcm"``); orderings are symmetric permutations computed on the
        pattern of ``A + Aᵀ``, so the diagonal stays on the diagonal for
        unsymmetric input.
    options:
        Sympiler code-generation options.

    Examples
    --------
    >>> from repro.sparse import laplacian_2d
    >>> import numpy as np
    >>> A = laplacian_2d(10)
    >>> solver = SparseLinearSolver(A, ordering="mindeg")
    >>> b = np.ones(A.n)
    >>> x = solver.solve(b)
    >>> float(np.linalg.norm(A.matvec(x) - b)) < 1e-8
    True
    """

    def __init__(
        self,
        A,
        *,
        method: str = "cholesky",
        ordering: str = "mindeg",
        options: Optional[SympilerOptions] = None,
    ) -> None:
        if not isinstance(A, CSCMatrix):
            # Lazy: the front-end ingest layer is import-light, but keeping
            # the CSCMatrix fast path free of it preserves the historical
            # import graph (and the ingest of a CSCMatrix is the identity
            # anyway — same object, no copy).
            from repro.frontend.ingest import as_csc

            A = as_csc(A)
        if not A.is_square():
            raise ValueError("SparseLinearSolver requires a square matrix")
        self.A = A
        self.options = options or SympilerOptions()
        self.ordering_name = ordering
        self._sympiler = Sympiler(self.options)
        # Any registered factorization whose result follows the L-factor
        # protocol (a lower-triangular factor, or an object exposing it as
        # `.L` with an optional diagonal `.d`) works here without solver
        # changes; kernels with a different solve recipe (e.g. a future LU's
        # upper sweep) still need an explicit solve path.
        try:
            spec = self._sympiler.registry.resolve(method)
        except UnknownKernelError as exc:
            raise ValueError(f"unknown factorization method {method!r}: {exc}") from exc
        if not issubclass(spec.artifact_cls, SympiledFactorization):
            raise ValueError(
                f"kernel {spec.name!r} is not a factorization method "
                "(its artifact does not provide factorize())"
            )
        if getattr(spec.artifact_cls, "is_incomplete", False):
            raise ValueError(
                f"kernel {spec.name!r} is an incomplete factorization — its "
                "factors only approximate A and cannot back a direct solve; "
                "use it as a preconditioner instead (SparseLinearSolver.pcg "
                "or repro.solvers.preconditioned_conjugate_gradient)"
            )
        self.method = spec.name
        t0 = time.perf_counter()
        self.permutation: Permutation = ordering_by_name(ordering)(A)
        self.A_permuted = self.permutation.symmetric_permute(A)
        self._factorization = self._sympiler.compile(spec.name, self.A_permuted)
        self.setup_seconds = time.perf_counter() - t0
        self._L: Optional[CSCMatrix] = None
        self._U: Optional[CSCMatrix] = None
        self._d: Optional[np.ndarray] = None
        self._forward = None
        self._backward = None
        self._Lt: Optional[CSCMatrix] = None
        #: Cached batch executors for solve_many, keyed by thread count (the
        #: forward artifact is fixed per solver instance, so they never go
        #: stale).
        self._solve_executors: dict = {}
        self.factorize()

    # ------------------------------------------------------------------ #
    @property
    def L(self) -> CSCMatrix:
        """The current lower-triangular factor of the permuted matrix."""
        if self._L is None:
            raise RuntimeError("factorize() has not been run yet")
        return self._L

    @property
    def d(self) -> Optional[np.ndarray]:
        """The LDLᵀ pivot vector (``None`` for the other methods)."""
        return self._d

    @property
    def U(self) -> Optional[CSCMatrix]:
        """The upper-triangular LU factor (``None`` for the symmetric methods)."""
        return self._U

    @property
    def factor_nnz(self) -> int:
        """Stored entries of the factor."""
        return self._factorization.factor_nnz

    @property
    def artifact_cache(self):
        """The artifact cache the underlying Sympiler driver compiles through."""
        return self._sympiler.cache

    @property
    def compiled_artifacts(self) -> tuple:
        """The compiled artifacts this solver holds (factorization + sweeps).

        The forward/backward triangular-solve artifacts exist only after the
        first :meth:`factorize` (the constructor runs one, so they are
        normally present).  The serving layer pins these in the shared
        artifact cache while the pattern is registered.
        """
        return tuple(
            a for a in (self._factorization, self._forward, self._backward) if a is not None
        )

    @property
    def cache_stats(self) -> CacheStats:
        """Artifact-cache counters of the underlying Sympiler driver.

        The driver uses the *process-wide shared* cache by default, so these
        counters aggregate every Sympiler in the process — useful for
        deltas around an operation, not as per-solver totals.
        """
        return self._sympiler.cache_stats

    def factorize(self, A=None) -> CSCMatrix:
        """(Re-)factorize; ``A`` may carry new values on the same pattern.

        Like the constructor, ``A`` may be anything the ingest layer accepts
        (``scipy.sparse``, triplets, dense) — it is converted first and then
        pattern-checked against the solver's matrix.
        """
        if A is not None:
            if not isinstance(A, CSCMatrix):
                from repro.frontend.ingest import as_csc

                A = as_csc(A)
            if not A.pattern_equal(self.A):
                raise ValueError(
                    "the new matrix must have the same sparsity pattern; "
                    "build a new SparseLinearSolver for a different pattern"
                )
            self.A = A
            self.A_permuted = self.permutation.symmetric_permute(A)
        result = self._factorization.factorize(self.A_permuted)
        # Duck-typed factor protocol: composite results expose the (unit)
        # lower-triangular factor as ``.L``, an optional between-sweeps
        # diagonal as ``.d`` (LDL^T) and an optional explicit upper factor as
        # ``.U`` (LU, whose backward sweep runs on U instead of L^T); a bare
        # factor matrix (Cholesky) is its own L.
        self._L = getattr(result, "L", result)
        self._d = getattr(result, "d", None)
        self._U = getattr(result, "U", None)
        # The triangular-solve kernels depend only on the factor *pattern*,
        # which is fixed per solver instance, so they are compiled once; the
        # shared artifact cache additionally dedupes them across solver
        # instances working on the same pattern.
        self._Lt = self._make_backward_factor()
        if self._forward is None:
            self._forward = self._sympiler.compile(
                "triangular-solve", self._L, options=self.options
            )
            self._backward = self._sympiler.compile(
                "triangular-solve", self._Lt, options=self.options
            )
        return self._L

    def _make_backward_factor(self) -> CSCMatrix:
        """The backward-sweep operand for the current numeric factors."""
        return backward_factor(self._L, self._U)

    # ------------------------------------------------------------------ #
    def solve_with_factors(
        self,
        b: np.ndarray,
        *,
        L: CSCMatrix,
        d: Optional[np.ndarray] = None,
        Lt: Optional[CSCMatrix] = None,
        U: Optional[CSCMatrix] = None,
        out: Optional[np.ndarray] = None,
        num_threads: Optional[int] = None,
    ) -> np.ndarray:
        """Solve ``A x = b`` using explicitly supplied numeric factors.

        ``L``/``d``/``U`` must carry the patterns this solver was compiled
        for (they normally come from a batched factorization of a same-
        pattern matrix); ``Lt`` is the precomputed backward operand
        (:func:`backward_factor`) and is derived from ``L``/``U`` when
        omitted.  The compiled forward/backward triangular kernels depend
        only on those fixed patterns, so they are shared by every factor set.
        ``out`` optionally receives the solution in place (the serving layer
        dispatches whole coalesced batches into one preallocated response
        block; the final un-permutation gathers directly into it).
        ``num_threads`` applies when the trisolves were compiled with
        ``parallel="wavefront"``: both sweeps fan each level set across that
        many workers (``None`` defers to ``REPRO_NUM_THREADS``, then one per
        CPU; serial kernels ignore it), bitwise identical to serial either
        way.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.A.n,):
            raise ValueError(f"b must have shape ({self.A.n},)")
        if Lt is None:
            Lt = backward_factor(L, U)
        pb = self.permutation.apply_vec(b)
        y = self._forward.solve_arrays(
            L.indptr, L.indices, L.data, pb, num_threads=num_threads
        )
        if d is not None:
            # LDL^T: diagonal solve between the two triangular sweeps.
            y = y / d
        # Backward substitution via the reversed transposed factor.
        y_rev = y[::-1].copy()
        z_rev = self._backward.solve_arrays(
            Lt.indptr, Lt.indices, Lt.data, y_rev, num_threads=num_threads
        )
        if out is not None:
            if out.shape != (self.A.n,) or out.dtype != np.float64:
                raise ValueError(
                    f"out must be a float64 array of shape ({self.A.n},)"
                )
            # Un-reverse and un-permute in one gather straight into out.
            np.take(z_rev[::-1], self.permutation.inv, out=out)
            return out
        z = z_rev[::-1].copy()
        return self.permutation.apply_inverse_vec(z)

    def solve(self, b: np.ndarray, *, num_threads: Optional[int] = None) -> np.ndarray:
        """Solve ``A x = b`` (``num_threads`` as in :meth:`solve_with_factors`)."""
        if self._L is None:
            raise RuntimeError("factorize() has not been run yet")
        return self.solve_with_factors(
            b, L=self._L, d=self._d, Lt=self._Lt, num_threads=num_threads
        )

    def solve_many(self, B: np.ndarray, *, num_threads: Optional[int] = None) -> np.ndarray:
        """Solve ``A X = B`` column by column (``B`` is ``n × k``).

        ``num_threads`` overrides the compile options' thread knob for this
        call; with the C backend and more than one thread the columns are
        mapped over the batched runtime's thread pool (deterministic column
        order either way).
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.n:
            raise ValueError(f"B must have shape ({self.A.n}, k)")
        from repro.runtime.engine import BatchExecutor

        if num_threads is None:
            # The *requested* options, not the cached artifact's: a cache hit
            # may carry a different (runtime-irrelevant) thread setting.
            num_threads = self.options.num_threads
        executor = self._solve_executors.get(num_threads)
        if executor is None:
            executor = BatchExecutor(self._forward, num_threads=num_threads)
            self._solve_executors[num_threads] = executor
        result = executor.map(self.solve, [B[:, k] for k in range(B.shape[1])])
        result.raise_first()
        return np.column_stack(result.results)

    def pcg(
        self,
        b: np.ndarray,
        *,
        tol: float = 1e-8,
        max_iterations: int = 1000,
        preconditioner: str = "compiled",
        num_threads: Optional[int] = None,
    ):
        """Solve ``A x = b`` iteratively by IC(0)-preconditioned CG.

        The iterative companion of :meth:`solve` for SPD systems: instead of
        the complete factorization this solver was built with, it runs
        conjugate gradient preconditioned by the compiled ``ic0`` registry
        kernel (``preconditioner="interpreted"`` selects the NumPy reference
        instead).  All compiles go through the shared artifact cache, so
        repeated ``pcg`` calls on this pattern reuse the generated IC(0) and
        triangular-solve kernels.  ``num_threads`` behaves exactly as in
        :meth:`solve` — the single precedence rule for every entry point is
        documented on :func:`repro.runtime.engine.resolve_num_threads`.
        Returns a :class:`~repro.solvers.cg.CGResult`.

        Constructing a :class:`SparseLinearSolver` eagerly compiles and runs
        the *complete* factorization, which ``pcg`` does not use — call
        :func:`repro.solvers.preconditioned_conjugate_gradient` directly for
        iterative-only workloads; this method serves callers who already
        hold a direct solver and want the iterative answer too.
        """
        from repro.solvers.cg import preconditioned_conjugate_gradient

        return preconditioned_conjugate_gradient(
            self.A,
            b,
            tol=tol,
            max_iterations=max_iterations,
            preconditioner=preconditioner,
            options=self.options,
            num_threads=num_threads,
        )

    def residual(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual of a computed solution."""
        r = self.A.matvec(x) - np.asarray(b, dtype=np.float64)
        return float(np.linalg.norm(r) / max(np.linalg.norm(b), 1.0))
