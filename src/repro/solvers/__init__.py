"""Application-level solvers built on the Sympiler-generated kernels.

These drivers model the usage scenarios §1.2 of the paper motivates —
simulations where the sparsity pattern is fixed by the physical system while
numeric values change every step, so the one-time compile cost amortizes:

* :class:`repro.solvers.linear_solver.SparseLinearSolver` — factor once /
  solve many SPD solver (ordering → symbolic → generated numeric code).
* :mod:`repro.solvers.cg` — conjugate gradient with an incomplete-Cholesky
  style (sparsity-preserving) preconditioner whose triangular solves use
  Sympiler-generated kernels.
* :mod:`repro.solvers.newton` — a Newton–Raphson loop with a fixed-sparsity
  Jacobian (the power-system / circuit-simulation scenario).
"""

from repro.solvers.cg import (
    CGResult,
    incomplete_cholesky_ic0,
    preconditioned_conjugate_gradient,
)
from repro.solvers.linear_solver import SparseLinearSolver, backward_factor
from repro.solvers.newton import (
    NewtonResult,
    newton_raphson_ensemble,
    newton_raphson_fixed_pattern,
)

__all__ = [
    "SparseLinearSolver",
    "backward_factor",
    "preconditioned_conjugate_gradient",
    "incomplete_cholesky_ic0",
    "CGResult",
    "newton_raphson_fixed_pattern",
    "newton_raphson_ensemble",
    "NewtonResult",
]
