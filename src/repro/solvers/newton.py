"""Newton–Raphson with a fixed-sparsity Jacobian.

Section 1.2 and §4.3 of the paper motivate Sympiler with power-system and
circuit simulation: a Newton–Raphson solver factorizes a Jacobian whose
*pattern* is fixed by the network topology at every iteration, while its
*values* change.  This driver reproduces that pattern: the Jacobian pattern is
compiled once, and each iteration only re-runs the generated numeric
factorization and the triangular solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.csc import CSCMatrix

__all__ = ["newton_raphson_fixed_pattern", "NewtonResult"]


@dataclass
class NewtonResult:
    """Outcome of a Newton–Raphson run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    factorizations: int

    @property
    def final_residual(self) -> float:
        """Norm of the residual at the last iterate."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def newton_raphson_fixed_pattern(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray], CSCMatrix],
    x0: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iterations: int = 50,
    damping: float = 1.0,
    options: Optional[SympilerOptions] = None,
    ordering: str = "mindeg",
    method: str = "cholesky",
) -> NewtonResult:
    """Solve ``F(x) = 0`` with Newton's method and a fixed Jacobian pattern.

    Parameters
    ----------
    residual_fn:
        Evaluates ``F(x)``.
    jacobian_fn:
        Evaluates the Jacobian at ``x``.  Every returned matrix must carry
        the same sparsity pattern; the solver (and the generated code) is
        built from the first one and reused for all later iterations.
    x0:
        Initial iterate.
    damping:
        Step-size multiplier (1.0 = full Newton steps).
    method:
        Factorization kernel: ``"cholesky"`` for SPD Jacobians, ``"lu"`` for
        the unsymmetric diagonally dominant Jacobians of circuit/power-flow
        problems (§1.2 of the paper).
    """
    x = np.array(x0, dtype=np.float64, copy=True)
    residual_norms: List[float] = []
    solver: Optional[SparseLinearSolver] = None
    factorizations = 0
    for iteration in range(max_iterations):
        F = np.asarray(residual_fn(x), dtype=np.float64)
        res_norm = float(np.linalg.norm(F))
        residual_norms.append(res_norm)
        if res_norm <= tol:
            return NewtonResult(
                x=x,
                iterations=iteration,
                converged=True,
                residual_norms=residual_norms,
                factorizations=factorizations,
            )
        J = jacobian_fn(x)
        if solver is None:
            solver = SparseLinearSolver(J, method=method, ordering=ordering, options=options)
        else:
            solver.factorize(J)
        factorizations += 1
        dx = solver.solve(-F)
        x = x + damping * dx
    F = np.asarray(residual_fn(x), dtype=np.float64)
    residual_norms.append(float(np.linalg.norm(F)))
    return NewtonResult(
        x=x,
        iterations=max_iterations,
        converged=bool(residual_norms[-1] <= tol),
        residual_norms=residual_norms,
        factorizations=factorizations,
    )
