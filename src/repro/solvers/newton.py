"""Newton–Raphson with a fixed-sparsity Jacobian.

Section 1.2 and §4.3 of the paper motivate Sympiler with power-system and
circuit simulation: a Newton–Raphson solver factorizes a Jacobian whose
*pattern* is fixed by the network topology at every iteration, while its
*values* change.  This driver reproduces that pattern: the Jacobian pattern is
compiled once, and each iteration only re-runs the generated numeric
factorization and the triangular solves.

:func:`newton_raphson_ensemble` extends the scenario to *ensembles*: many
Newton solves whose Jacobians share one sparsity pattern (parameter sweeps,
perturbed operating points, Monte-Carlo load cases).  One compiled kernel
serves every member, and each iteration batch-factorizes the Jacobians of
all still-active members through the batched runtime
(:class:`repro.runtime.BatchedSolver`) — with per-member error isolation, so
a singular member drops out while the rest keep converging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.csc import CSCMatrix

__all__ = ["newton_raphson_fixed_pattern", "newton_raphson_ensemble", "NewtonResult"]


@dataclass
class NewtonResult:
    """Outcome of a Newton–Raphson run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    factorizations: int

    @property
    def final_residual(self) -> float:
        """Norm of the residual at the last iterate."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def newton_raphson_fixed_pattern(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray], CSCMatrix],
    x0: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iterations: int = 50,
    damping: float = 1.0,
    options: Optional[SympilerOptions] = None,
    ordering: str = "mindeg",
    method: str = "cholesky",
) -> NewtonResult:
    """Solve ``F(x) = 0`` with Newton's method and a fixed Jacobian pattern.

    Parameters
    ----------
    residual_fn:
        Evaluates ``F(x)``.
    jacobian_fn:
        Evaluates the Jacobian at ``x``.  Every returned matrix must carry
        the same sparsity pattern; the solver (and the generated code) is
        built from the first one and reused for all later iterations.
    x0:
        Initial iterate.
    damping:
        Step-size multiplier (1.0 = full Newton steps).
    method:
        Factorization kernel: ``"cholesky"`` for SPD Jacobians, ``"lu"`` for
        the unsymmetric diagonally dominant Jacobians of circuit/power-flow
        problems (§1.2 of the paper).
    """
    x = np.array(x0, dtype=np.float64, copy=True)
    residual_norms: List[float] = []
    solver: Optional[SparseLinearSolver] = None
    factorizations = 0
    for iteration in range(max_iterations):
        F = np.asarray(residual_fn(x), dtype=np.float64)
        res_norm = float(np.linalg.norm(F))
        residual_norms.append(res_norm)
        if res_norm <= tol:
            return NewtonResult(
                x=x,
                iterations=iteration,
                converged=True,
                residual_norms=residual_norms,
                factorizations=factorizations,
            )
        J = jacobian_fn(x)
        if solver is None:
            solver = SparseLinearSolver(J, method=method, ordering=ordering, options=options)
        else:
            solver.factorize(J)
        factorizations += 1
        dx = solver.solve(-F)
        x = x + damping * dx
    F = np.asarray(residual_fn(x), dtype=np.float64)
    residual_norms.append(float(np.linalg.norm(F)))
    return NewtonResult(
        x=x,
        iterations=max_iterations,
        converged=bool(residual_norms[-1] <= tol),
        residual_norms=residual_norms,
        factorizations=factorizations,
    )


def newton_raphson_ensemble(
    residual_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
    jacobian_fns: Sequence[Callable[[np.ndarray], CSCMatrix]],
    x0s: Sequence[np.ndarray],
    *,
    tol: float = 1e-10,
    max_iterations: int = 50,
    damping: float = 1.0,
    options: Optional[SympilerOptions] = None,
    ordering: str = "mindeg",
    method: str = "cholesky",
    num_threads: Optional[int] = None,
) -> List[NewtonResult]:
    """Solve an ensemble of ``F_s(x_s) = 0`` systems with shared-pattern Jacobians.

    Every scenario ``s`` has its own residual/Jacobian callables and initial
    iterate, but all Jacobians must carry one sparsity pattern (the usual
    parameter-sweep situation: one network topology, many load cases).  One
    :class:`~repro.runtime.BatchedSolver` is built from the first scenario's
    Jacobian; each iteration batch-factorizes the Jacobians of every
    still-active scenario concurrently and applies the Newton updates.

    A scenario whose Jacobian fails to factorize (singular/indefinite) stops
    iterating and reports ``converged=False``; the other scenarios are
    unaffected.  Results come back in scenario order.
    """
    if not (len(residual_fns) == len(jacobian_fns) == len(x0s)):
        raise ValueError("residual_fns, jacobian_fns and x0s must have equal length")
    n_scenarios = len(x0s)
    if n_scenarios == 0:
        return []
    # Late import: the runtime facade sits above this module in the layering.
    from repro.runtime.facade import BatchedSolver

    xs = [np.array(x0, dtype=np.float64, copy=True) for x0 in x0s]
    norms: List[List[float]] = [[] for _ in range(n_scenarios)]
    converged = [False] * n_scenarios
    failed = [False] * n_scenarios
    factorizations = [0] * n_scenarios
    iterations = [0] * n_scenarios
    batched: Optional[BatchedSolver] = None

    for _ in range(max_iterations):
        active: List[int] = []
        residuals: List[np.ndarray] = []
        for s in range(n_scenarios):
            if converged[s] or failed[s]:
                continue
            F = np.asarray(residual_fns[s](xs[s]), dtype=np.float64)
            norms[s].append(float(np.linalg.norm(F)))
            if norms[s][-1] <= tol:
                converged[s] = True
                continue
            active.append(s)
            residuals.append(F)
        if not active:
            break
        jacobians = [jacobian_fns[s](xs[s]) for s in active]
        while batched is None and active:
            # Construction factorizes the pattern-defining Jacobian eagerly
            # (outside the batch's per-item isolation), so a scenario whose
            # very first Jacobian is singular must be dropped here — not
            # crash the whole ensemble — and the next scenario tried.
            try:
                batched = BatchedSolver(
                    jacobians[0],
                    method=method,
                    ordering=ordering,
                    options=options,
                    num_threads=num_threads,
                )
            except ValueError:
                s = active.pop(0)
                residuals.pop(0)
                jacobians.pop(0)
                failed[s] = True
                iterations[s] += 1
        if not active:
            continue
        handles = batched.factorize_batch(jacobians)
        for s, F, handle in zip(active, residuals, handles):
            iterations[s] += 1
            if not handle.ok:
                failed[s] = True
                continue
            factorizations[s] += 1
            dx = handle.solve(-F)
            xs[s] = xs[s] + damping * dx

    results: List[NewtonResult] = []
    for s in range(n_scenarios):
        if not converged[s] and not failed[s]:
            # Ran out of iterations: record the final residual like the
            # single-scenario driver does.
            F = np.asarray(residual_fns[s](xs[s]), dtype=np.float64)
            norms[s].append(float(np.linalg.norm(F)))
            converged[s] = bool(norms[s][-1] <= tol)
        results.append(
            NewtonResult(
                x=xs[s],
                iterations=iterations[s],
                converged=converged[s],
                residual_norms=norms[s],
                factorizations=factorizations[s],
            )
        )
    return results
