"""Preconditioned conjugate gradient.

The paper motivates decoupled triangular solves with preconditioned iterative
solvers (§4.3): a triangular system is solved at every iteration, and solvers
commonly run hundreds or thousands of iterations on a fixed pattern, so a
one-time symbolic/codegen cost is negligible.  This module provides a CG
driver whose preconditioner applications use Sympiler-generated triangular
solves on an incomplete-Cholesky factor (IC(0): the factor is restricted to
the pattern of ``tril(A)``).

Two preconditioner constructions are available:

* ``"compiled"`` (the default) — the IC(0) *factorization itself* is a
  Sympiler-generated kernel (``Sympiler.compile("ic0", A)`` through the
  kernel registry), so the whole preconditioner pipeline — numeric factor and
  both triangular sweeps — runs specialized generated code.
* ``"interpreted"`` — the original :func:`incomplete_cholesky_ic0` NumPy
  loop, kept as the fallback and as the correctness oracle: on the python
  backend the compiled factor is **bitwise identical** to the interpreted
  one (asserted by the test-suite), so both paths produce the same iterates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.sparse.csc import CSCMatrix
from repro.sparse.permutation import Permutation
from repro.sparse.utils import lower_triangle

__all__ = [
    "incomplete_cholesky_ic0",
    "preconditioned_conjugate_gradient",
    "CGResult",
    "PRECONDITIONERS",
]

#: Valid ``preconditioner`` arguments of the PCG driver.
PRECONDITIONERS = ("compiled", "interpreted")


def incomplete_cholesky_ic0(A: CSCMatrix) -> CSCMatrix:
    """IC(0) factor: Cholesky restricted to the pattern of ``tril(A)``.

    No fill-in is allowed; dropped updates make ``L Lᵀ ≈ A``.  The input must
    be SPD (and is assumed H-matrix-like enough for IC(0) to exist; a clear
    error is raised otherwise).  This is the interpreted reference the
    compiled ``ic0`` registry kernel is validated against — bitwise, on the
    python backend.
    """
    if not A.is_square():
        raise ValueError("IC(0) requires a square matrix")
    L = lower_triangle(A)
    n = L.n
    indptr, indices = L.indptr, L.indices
    data = L.data.copy()
    for j in range(n):
        start, end = indptr[j], indptr[j + 1]
        if indices[start] != j:
            raise ValueError(f"missing diagonal entry in column {j}")
        d = data[start]
        if not d > 0.0:
            raise ValueError(f"IC(0) breakdown: non-positive pivot at column {j}")
        d = math.sqrt(d)
        data[start] = d
        data[start + 1 : end] /= d
        # Update later columns restricted to the existing pattern.
        rows_j = indices[start + 1 : end]
        vals_j = data[start + 1 : end]
        for idx, k in enumerate(rows_j):
            k = int(k)
            ljk = vals_j[idx]
            ks, ke = indptr[k], indptr[k + 1]
            rows_k = indices[ks:ke]
            # Subtract ljk * L(rows_k, j) for rows present in both columns.
            positions = np.searchsorted(rows_j, rows_k)
            valid = (positions < rows_j.size) & (
                rows_j[np.minimum(positions, rows_j.size - 1)] == rows_k
            )
            data[ks:ke][valid] -= ljk * vals_j[positions[valid]]
    return CSCMatrix(n, n, indptr.copy(), indices.copy(), data, check=False)


@dataclass
class CGResult:
    """Outcome of a (preconditioned) conjugate-gradient run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    #: Which preconditioner construction ran (``"compiled"``,
    #: ``"interpreted"`` or ``None`` for plain CG).
    preconditioner: Optional[str] = None

    @property
    def final_residual(self) -> float:
        """Last recorded relative residual."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def _ic0_factor(
    A: CSCMatrix, preconditioner: str, options: SympilerOptions, sym: Sympiler
) -> CSCMatrix:
    """The IC(0) factor of ``A`` via the requested construction."""
    if preconditioner == "compiled":
        return sym.compile("ic0", A, options=options).factorize(A)
    if preconditioner == "interpreted":
        return incomplete_cholesky_ic0(A)
    raise ValueError(
        f"unknown preconditioner {preconditioner!r}; expected one of {PRECONDITIONERS}"
    )


def preconditioned_conjugate_gradient(
    A: CSCMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    use_preconditioner: bool = True,
    preconditioner: str = "compiled",
    options: Optional[SympilerOptions] = None,
    num_threads: Optional[int] = None,
) -> CGResult:
    """Solve ``A x = b`` by CG, optionally IC(0)-preconditioned.

    Preconditioner applications ``M⁻¹ r = (L Lᵀ)⁻¹ r`` use two
    Sympiler-generated triangular solves that are compiled once before the
    iteration starts; with ``preconditioner="compiled"`` (the default) the
    IC(0) numeric factorization is a generated registry kernel as well,
    ``"interpreted"`` keeps the NumPy reference loop (fallback and oracle —
    bitwise-identical iterates on the python backend).

    ``num_threads`` fans each preconditioner triangular sweep's level sets
    across workers when the trisolves were compiled with
    ``parallel="wavefront"`` (serial kernels ignore it, bitwise identical
    either way) — the same knob, with the same precedence, as every other
    solve entry point: see
    :func:`repro.runtime.engine.resolve_num_threads`, the canonical
    precedence documentation (explicit argument > ``REPRO_NUM_THREADS`` >
    ``options.num_threads``).
    """
    if not A.is_square():
        raise ValueError("CG requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    n = A.n
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},)")

    apply_preconditioner = None
    used_preconditioner = None
    if use_preconditioner:
        options = options or SympilerOptions()
        sym = Sympiler(options)
        L = _ic0_factor(A, preconditioner, options, sym)
        used_preconditioner = preconditioner
        forward = sym.compile_triangular_solve(L, rhs_pattern=None)
        reverse = Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))
        Lt_rev = reverse.symmetric_permute(L.transpose())
        backward = sym.compile_triangular_solve(Lt_rev, rhs_pattern=None)

        def apply_preconditioner(r: np.ndarray) -> np.ndarray:
            y = forward.solve_arrays(
                L.indptr, L.indices, L.data, r, num_threads=num_threads
            )
            z_rev = backward.solve_arrays(
                Lt_rev.indptr,
                Lt_rev.indices,
                Lt_rev.data,
                y[::-1].copy(),
                num_threads=num_threads,
            )
            return z_rev[::-1].copy()

    x = np.zeros(n, dtype=np.float64)
    r = b - A.matvec(x)
    z = apply_preconditioner(r) if apply_preconditioner else r.copy()
    p = z.copy()
    rz = float(np.dot(r, z))
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    residual_norms = [float(np.linalg.norm(r)) / b_norm]
    converged = residual_norms[-1] <= tol
    iterations = 0
    while not converged and iterations < max_iterations:
        Ap = A.matvec(p)
        alpha = rz / float(np.dot(p, Ap))
        x += alpha * p
        r -= alpha * Ap
        residual_norms.append(float(np.linalg.norm(r)) / b_norm)
        iterations += 1
        if residual_norms[-1] <= tol:
            converged = True
            break
        z = apply_preconditioner(r) if apply_preconditioner else r.copy()
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
        preconditioner=used_preconditioner,
    )
