"""Independent correctness oracles based on NumPy/SciPy dense routines.

These are deliberately *not* built on any of this repository's sparse code so
they can serve as ground truth in the test-suite: a densified
``numpy.linalg.cholesky`` and ``scipy.linalg.solve_triangular``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.sparse.csc import CSCMatrix

__all__ = ["reference_cholesky", "reference_trisolve", "reference_solve"]


def _full_symmetric_dense(A: CSCMatrix) -> np.ndarray:
    """Dense symmetric matrix from full-symmetric or lower-only storage."""
    dense = A.to_dense()
    if A.is_lower_triangular() and A.n > 1:
        # Mirror the strictly-lower part into the upper triangle.
        dense = dense + np.tril(dense, -1).T
    else:
        # Full storage: enforce exact numerical symmetry.
        dense = (dense + dense.T) / 2.0
    return dense


def reference_cholesky(A: CSCMatrix) -> np.ndarray:
    """Dense lower Cholesky factor of ``A`` via ``numpy.linalg.cholesky``."""
    return np.linalg.cholesky(_full_symmetric_dense(A))


def reference_trisolve(L: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Dense forward substitution via ``scipy.linalg.solve_triangular``."""
    return scipy.linalg.solve_triangular(L.to_dense(), np.asarray(b, dtype=np.float64), lower=True)


def reference_solve(A: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` densely (for SPD systems) via Cholesky."""
    dense = _full_symmetric_dense(A)
    L = np.linalg.cholesky(dense)
    y = scipy.linalg.solve_triangular(L, np.asarray(b, dtype=np.float64), lower=True)
    return scipy.linalg.solve_triangular(L.T, y, lower=False)
