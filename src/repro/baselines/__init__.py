"""Library baselines the paper compares against.

Two baselines are modelled after the libraries used in the paper's
evaluation (§4):

* :mod:`repro.baselines.eigen_like` — an Eigen-style simplicial (non-
  supernodal) left-looking Cholesky and the Figure 1(c) triangular solve.
  Symbolic work (etree row-pattern reach, transposing ``A``) happens inside
  the numeric phase, exactly the coupling the paper criticizes.
* :mod:`repro.baselines.cholmod_like` — a CHOLMOD-style supernodal
  left-looking Cholesky with BLAS(NumPy)-backed dense panels and a generic,
  pattern-agnostic driver.

:mod:`repro.baselines.scipy_reference` provides independent correctness
oracles built on NumPy/SciPy dense routines.
"""

from repro.baselines.cholmod_like import (
    CholmodLikeFactorization,
    cholmod_like_factorize,
    cholmod_like_numeric,
    cholmod_like_symbolic,
)
from repro.baselines.eigen_like import (
    EigenLikeFactorization,
    eigen_like_factorize,
    eigen_like_numeric,
    eigen_like_symbolic,
    eigen_like_trisolve,
)
from repro.baselines.scipy_reference import (
    reference_cholesky,
    reference_solve,
    reference_trisolve,
)

__all__ = [
    "eigen_like_symbolic",
    "eigen_like_numeric",
    "eigen_like_factorize",
    "eigen_like_trisolve",
    "EigenLikeFactorization",
    "cholmod_like_symbolic",
    "cholmod_like_numeric",
    "cholmod_like_factorize",
    "CholmodLikeFactorization",
    "reference_cholesky",
    "reference_trisolve",
    "reference_solve",
]
