"""CHOLMOD-style baseline: supernodal left-looking Cholesky.

CHOLMOD performs a symbolic analysis once (etree, column counts, supernodes,
factor allocation) and a supernodal numeric factorization that assembles
dense panels and calls BLAS on them.  Compared with Sympiler-generated code,
the numeric phase here

* is a *generic* driver: supernode boundaries, panel row maps and descendant
  lists are looked up through indirection at run time rather than being baked
  into the code,
* always calls the library dense kernels (NumPy/BLAS) regardless of block
  size — the paper notes BLAS does poorly on the small blocks produced by
  matrices with small supernodes, and
* recomputes the per-supernode descendant sets and forms the transpose of
  ``A`` inside the numeric phase (the residual coupled symbolic work the
  paper describes for both libraries).

Node amalgamation is not implemented, matching the paper's CHOLMOD
configuration (§4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.kernels.cholesky import NotPositiveDefiniteError
from repro.kernels.dense import dense_cholesky, dense_solve_transposed_right
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.fill_pattern import cholesky_pattern
from repro.symbolic.supernodes import SupernodePartition, cholesky_supernodes

__all__ = [
    "CholmodLikeSymbolic",
    "CholmodLikeFactorization",
    "cholmod_like_symbolic",
    "cholmod_like_numeric",
    "cholmod_like_factorize",
]


@dataclass(frozen=True)
class CholmodLikeSymbolic:
    """Result of CHOLMOD's analyze phase (reusable across value changes)."""

    n: int
    parent: np.ndarray
    l_indptr: np.ndarray
    l_indices: np.ndarray
    col_counts: np.ndarray
    supernodes: SupernodePartition
    seconds: float

    @property
    def factor_nnz(self) -> int:
        """Predicted nonzeros of the factor."""
        return int(self.l_indptr[-1])


@dataclass(frozen=True)
class CholmodLikeFactorization:
    """A completed factorization: the factor plus phase timings."""

    L: CSCMatrix
    symbolic: CholmodLikeSymbolic
    numeric_seconds: float


def cholmod_like_symbolic(A: CSCMatrix) -> CholmodLikeSymbolic:
    """Analyze phase: etree, column counts, factor pattern and supernodes."""
    if not A.is_square():
        raise ValueError("Cholesky requires a square matrix")
    start = time.perf_counter()
    parent = elimination_tree(A)
    l_indptr, l_indices = cholesky_pattern(A, parent)
    col_counts = np.diff(l_indptr).astype(np.int64)
    supernodes = cholesky_supernodes(col_counts, parent)
    elapsed = time.perf_counter() - start
    return CholmodLikeSymbolic(
        n=A.n,
        parent=parent,
        l_indptr=l_indptr,
        l_indices=l_indices,
        col_counts=col_counts,
        supernodes=supernodes,
        seconds=elapsed,
    )


def cholmod_like_numeric(A: CSCMatrix, symbolic: CholmodLikeSymbolic) -> CSCMatrix:
    """Numeric phase: generic supernodal left-looking factorization."""
    n = symbolic.n
    if A.n != n:
        raise ValueError("matrix order does not match the symbolic analysis")
    l_indptr = symbolic.l_indptr
    l_indices = symbolic.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    parent = symbolic.parent
    supernodes = symbolic.supernodes

    # Residual coupled symbolic work kept in the numeric phase on purpose:
    # the transpose of A (to reach its upper triangle) ...
    upper = A.transpose()
    # ... and the per-column row patterns, recomputed with etree walks.
    mark = np.full(n, -1, dtype=np.int64)
    pattern_buffer = np.empty(n, dtype=np.int64)

    def row_pattern(j: int) -> np.ndarray:
        mark[j] = j
        length = 0
        for i in upper.col_rows(j):
            i = int(i)
            if i >= j:
                continue
            while mark[i] != j:
                pattern_buffer[length] = i
                length += 1
                mark[i] = j
                i = int(parent[i])
                if i == -1:
                    break
        return np.sort(pattern_buffer[:length])

    rowmap = np.full(n, -1, dtype=np.int64)
    for s, c0, c1 in supernodes.iter_supernodes():
        w = c1 - c0
        rows = l_indices[l_indptr[c0] : l_indptr[c0 + 1]]
        n_rows = rows.size
        rowmap[rows] = np.arange(n_rows, dtype=np.int64)
        panel = np.zeros((n_rows, w), dtype=np.float64)
        updating: set[int] = set()
        for jj in range(w):
            c = c0 + jj
            rows_a = A.col_rows(c)
            vals_a = A.col_values(c)
            sel = rows_a >= c
            panel[rowmap[rows_a[sel]], jj] = vals_a[sel]
            for k in row_pattern(c):
                k = int(k)
                if k < c0:
                    updating.add(k)
        for k in sorted(updating):
            start, end = l_indptr[k], l_indptr[k + 1]
            rows_k = l_indices[start:end]
            vals_k = l_data[start:end]
            lo = int(np.searchsorted(rows_k, c0))
            rows_ge = rows_k[lo:]
            vals_ge = vals_k[lo:]
            in_block = rows_ge < c1
            multipliers = np.zeros(w, dtype=np.float64)
            multipliers[rows_ge[in_block] - c0] = vals_ge[in_block]
            panel[rowmap[rows_ge], :] -= np.outer(vals_ge, multipliers)
        diag_block = panel[:w, :w]
        try:
            # Always the library (BLAS-backed) dense kernels, any block size.
            l_diag = dense_cholesky(diag_block)
        except NotPositiveDefiniteError as exc:
            raise NotPositiveDefiniteError(
                f"supernode starting at column {c0}: {exc}"
            ) from exc
        if n_rows > w:
            off_diag = dense_solve_transposed_right(l_diag, panel[w:, :])
        else:
            off_diag = np.zeros((0, w), dtype=np.float64)
        for jj in range(w):
            c = c0 + jj
            start = l_indptr[c]
            width_part = w - jj
            l_data[start : start + width_part] = l_diag[jj:, jj]
            l_data[start + width_part : l_indptr[c + 1]] = off_diag[:, jj]
        rowmap[rows] = -1
    return CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)


def cholmod_like_factorize(A: CSCMatrix) -> CholmodLikeFactorization:
    """Run both phases and record their wall-clock times."""
    symbolic = cholmod_like_symbolic(A)
    start = time.perf_counter()
    L = cholmod_like_numeric(A, symbolic)
    numeric_seconds = time.perf_counter() - start
    return CholmodLikeFactorization(L=L, symbolic=symbolic, numeric_seconds=numeric_seconds)
