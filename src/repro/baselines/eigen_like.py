"""Eigen-style baseline: simplicial left-looking Cholesky and triangular solve.

Eigen's ``SimplicialLLT`` splits work into an ``analyzePattern`` step (run
once per sparsity pattern) and a ``factorize`` step (run per value set).  The
paper's key observation (§4.2) is that even with this split the *numeric*
phase is not fully decoupled: for every column it still

* transposes ``A`` to reach the upper-triangular entries, and
* re-derives the row sparsity pattern of ``L`` by walking the elimination
  tree with a mark array (the "reach function"),

neither of which depends on the numeric values.  This module reproduces that
structure faithfully so the benchmark isolates exactly the overhead Sympiler
removes.  The triangular solve is the Figure 1(c) variant: a full column scan
with an ``x[j] != 0`` guard, no symbolic pre-pass.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.kernels.cholesky import NotPositiveDefiniteError
from repro.kernels.triangular import trisolve_library
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.fill_pattern import cholesky_pattern

__all__ = [
    "EigenLikeSymbolic",
    "EigenLikeFactorization",
    "eigen_like_symbolic",
    "eigen_like_numeric",
    "eigen_like_factorize",
    "eigen_like_trisolve",
]


@dataclass(frozen=True)
class EigenLikeSymbolic:
    """Result of the analyze-pattern phase (reusable across value changes)."""

    n: int
    parent: np.ndarray
    l_indptr: np.ndarray
    l_indices: np.ndarray
    seconds: float

    @property
    def factor_nnz(self) -> int:
        """Predicted nonzeros of the factor."""
        return int(self.l_indptr[-1])


@dataclass(frozen=True)
class EigenLikeFactorization:
    """A completed factorization: the factor plus phase timings."""

    L: CSCMatrix
    symbolic: EigenLikeSymbolic
    numeric_seconds: float


def eigen_like_symbolic(A: CSCMatrix) -> EigenLikeSymbolic:
    """Analyze-pattern phase: elimination tree and factor pattern."""
    if not A.is_square():
        raise ValueError("Cholesky requires a square matrix")
    start = time.perf_counter()
    parent = elimination_tree(A)
    l_indptr, l_indices = cholesky_pattern(A, parent)
    elapsed = time.perf_counter() - start
    return EigenLikeSymbolic(
        n=A.n, parent=parent, l_indptr=l_indptr, l_indices=l_indices, seconds=elapsed
    )


def eigen_like_numeric(A: CSCMatrix, symbolic: EigenLikeSymbolic) -> CSCMatrix:
    """Numeric phase of the simplicial left-looking factorization.

    Deliberately keeps the per-column symbolic work inside the loop:
    the transpose of ``A`` is formed here and the row pattern of each column
    is rebuilt by walking the elimination tree with a mark array.
    """
    n = symbolic.n
    if A.n != n:
        raise ValueError("matrix order does not match the symbolic analysis")
    l_indptr = symbolic.l_indptr
    l_indices = symbolic.l_indices
    l_data = np.zeros(int(l_indptr[-1]), dtype=np.float64)
    parent = symbolic.parent

    # Part of the coupled symbolic work: the numeric phase needs the upper
    # triangle of A (A is stored lower/full), so the transpose is formed here.
    upper = A.transpose()

    f = np.zeros(n, dtype=np.float64)
    mark = np.full(n, -1, dtype=np.int64)
    pattern_buffer = np.empty(n, dtype=np.int64)
    for j in range(n):
        # --- coupled symbolic work: rebuild the row pattern of row j ------ #
        mark[j] = j
        pattern_len = 0
        rows_u = upper.col_rows(j)
        for i in rows_u:
            i = int(i)
            if i >= j:
                continue
            while mark[i] != j:
                pattern_buffer[pattern_len] = i
                pattern_len += 1
                mark[i] = j
                i = int(parent[i])
                if i == -1:
                    break
        prune_set = np.sort(pattern_buffer[:pattern_len])
        # --- numeric work -------------------------------------------------- #
        rows_a = A.col_rows(j)
        vals_a = A.col_values(j)
        sel = rows_a >= j
        f[rows_a[sel]] = vals_a[sel]
        for k in prune_set:
            k = int(k)
            start, end = l_indptr[k], l_indptr[k + 1]
            rows_k = l_indices[start:end]
            pos = start + int(np.searchsorted(rows_k, j))
            ljk = l_data[pos]
            seg = slice(pos, end)
            f[l_indices[seg]] -= l_data[seg] * ljk
        start, end = l_indptr[j], l_indptr[j + 1]
        rows_j = l_indices[start:end]
        d = f[j]
        if not d > 0.0:
            raise NotPositiveDefiniteError(f"non-positive pivot at column {j}")
        ljj = math.sqrt(d)
        l_data[start] = ljj
        if end > start + 1:
            l_data[start + 1 : end] = f[rows_j[1:]] / ljj
        f[rows_j] = 0.0
    return CSCMatrix(n, n, l_indptr, l_indices, l_data, check=False)


def eigen_like_factorize(A: CSCMatrix) -> EigenLikeFactorization:
    """Run both phases and record their wall-clock times."""
    symbolic = eigen_like_symbolic(A)
    start = time.perf_counter()
    L = eigen_like_numeric(A, symbolic)
    numeric_seconds = time.perf_counter() - start
    return EigenLikeFactorization(L=L, symbolic=symbolic, numeric_seconds=numeric_seconds)


def eigen_like_trisolve(L: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Eigen's sparse triangular solve: Figure 1(c), no symbolic pre-pass."""
    return trisolve_library(L, b)
