"""Perf-gate comparator: current bench rows vs. committed baseline snapshots.

CI uploads ``BENCH_<experiment>.json`` artifacts per PR, but an artifact
nobody diffs gates nothing — speedups proven in earlier PRs could silently
regress.  This module turns the trajectory into a gate: baselines live in the
repo (``benchmarks/baselines/``), and ``python -m repro.bench <experiment>
--compare <baseline-dir> --max-regression 0.25`` fails the run when a gated
metric regresses beyond the allowed fraction.

What is gated (:data:`GATED_METRICS`) is chosen to be machine-portable —
booleans that must never flip (cache hits, bitwise identity, convergence),
deterministic counters (iteration counts, recompiles, schedule depth) and
same-run timing *ratios* (e.g. ``ldlt_over_cholesky``, both sides measured on
the same backend in the same process) — never raw wall-clock seconds, which
only compare within one machine.  Directions:

* ``higher`` — regression when ``current < baseline * (1 - max_regression)``,
* ``lower``  — regression when ``current > baseline * (1 + max_regression)``
  (a zero baseline, e.g. ``batch_recompiles``, regresses on any increase),
* ``bool``   — regression when a true baseline turns false.

Rows are matched by their ``name`` field; rows or metrics absent from the
baseline are skipped (new matrices and new columns never fail the gate), and
a missing baseline *file* skips the experiment entirely so brand-new
experiments can land before their first snapshot.  Refreshing a baseline is
deliberate and explicit: re-run the experiment with ``--json
benchmarks/baselines`` and commit the diff.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "GatedMetric",
    "GATED_METRICS",
    "Regression",
    "compare_rows",
    "compare_payloads",
    "baseline_path",
    "load_baseline",
    "format_regressions",
]


@dataclass(frozen=True)
class GatedMetric:
    """One gated metric of an experiment.

    ``noise`` is an *absolute* allowance added on top of the multiplicative
    one, for metrics with a measured noise floor (sub-millisecond timing
    ratios on the smoke matrices fluctuate ~±20 % run to run; the gate must
    catch a genuine 2× regression without flaking on scheduler jitter).
    Deterministic metrics keep ``noise=0.0``.
    """

    key: str
    direction: str  # "higher", "lower" or "bool"
    noise: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "bool"):
            raise ValueError(f"unknown direction {self.direction!r}")


#: The gate, per experiment.  Only machine-portable metrics belong here — see
#: the module docstring for the selection rationale.
GATED_METRICS: Dict[str, Tuple[GatedMetric, ...]] = {
    "ldlt": (
        GatedMetric("recompile_cache_hit", "bool"),
        # Same-run ratio of two python-backend kernels; the absolute noise
        # allowance absorbs sub-ms jitter while still failing a genuine
        # LDLT-emitter slowdown (ratio sits near 1.1, a real regression
        # lands at 2+).
        GatedMetric("ldlt_over_cholesky", "lower", noise=0.5),
    ),
    "lu": (
        GatedMetric("recompile_cache_hit", "bool"),
        # Deterministic per machine; the noise floor only forgives BLAS
        # summation-order differences across runner CPU generations.
        GatedMetric("residual", "lower", noise=1e-9),
    ),
    "batched": (
        GatedMetric("bitwise_identical", "bool"),
        GatedMetric("batch_recompiles", "lower"),
        GatedMetric("schedule_levels", "lower"),
    ),
    "pcg": (
        GatedMetric("converged", "bool"),
        GatedMetric("bitwise_identical", "bool"),
        GatedMetric("iterations", "lower"),
    ),
    "serving": (
        GatedMetric("bitwise_identical", "bool"),
        GatedMetric("reregister_warm", "bool"),
        # Kernels regenerated while serving warmed-up traffic: a zero
        # baseline tolerates no increase.
        GatedMetric("serving_recompiles", "lower"),
        # Same-run ratio (both sides measured in one process); the noise
        # floor absorbs scheduler jitter on the sub-second smoke workload
        # while still failing if coalescing stops winning (~2x+ today,
        # a regression to parity lands at 1.0).
        GatedMetric("coalesced_over_uncoalesced", "higher", noise=0.5),
        # Deterministic given the submit-all-then-wait workload shape: full
        # micro-batches of max_batch; the allowance forgives partial
        # trailing batches, not a collapse to singleton dispatch.
        GatedMetric("coalescing_ratio", "higher", noise=4.0),
    ),
    "wavefront": (
        GatedMetric("bitwise_identical", "bool"),
        GatedMetric("zero_recompiles", "bool"),
        # True on the deep-etree row (the backend must keep declining
        # wavefront codegen there); False baselines on the wide rows never
        # gate, by the bool rule.
        GatedMetric("serial_fallback", "bool"),
        # Same-run serial/wavefront ratio at a pinned 2 threads — portable
        # as a ratio, but its magnitude tracks the runner's core count; the
        # noise floor keeps a 1-core baseline from failing multi-core
        # runners (and vice versa) while still catching a collapse.  The
        # absolute > 1.2 speedup assertion lives in the CI wavefront smoke
        # step, which runs on a known multi-core runner.
        GatedMetric("speedup_2threads", "higher", noise=0.5),
    ),
    "frontend": (
        GatedMetric("bitwise_identical", "bool"),
        GatedMetric("zero_recompiles", "bool"),
        # Deterministic: warm calls must never re-specialize; the zero
        # baseline tolerates no increase.
        GatedMetric("warm_specializations", "lower"),
        # Same-run ratio of the warm front-end solve over scipy's spsolve on
        # the identical system.  Its magnitude is backend-bound (python
        # kernels vs scipy's C), so it gates only against its own baseline,
        # with a wide noise floor for sub-ms smoke-size jitter; a genuine
        # warm-path regression (accidental re-probe/re-inspect) shifts it by
        # integer factors.
        GatedMetric("warm_over_spsolve", "lower", noise=2.0),
    ),
    "observe": (
        # The enabled path must keep exercising the export surface end to
        # end (per-phase breakdown and Chrome trace both populated).
        GatedMetric("breakdown_has_phases", "bool"),
        GatedMetric("trace_nonempty", "bool"),
        # The dormant-instrumentation cost of one warm solve, in percent.
        # It sits well under 0.1 today; the absolute allowance keeps
        # nanosecond-scale span-check jitter from flaking the gate while a
        # genuine disabled-path regression (an allocation or a lock on the
        # no-op path) lands at whole percents.  The absolute < 3 % ceiling
        # is asserted in the CI observe step.
        GatedMetric("disabled_overhead_pct", "lower", noise=2.0),
        # Same contract across the service wire: spans opened by one remote
        # solve (client + server side) priced at the disabled-span cost
        # against the warm wire round-trip.  The wire adds latency headroom,
        # so this sits even lower than the in-process figure; the same
        # absolute allowance covers timing jitter.
        GatedMetric("remote_span_overhead_pct", "lower", noise=2.0),
    ),
    "fleet": (
        GatedMetric("v1_compat", "bool"),
        GatedMetric("all_complete", "bool"),
        GatedMetric("solutions_ok", "bool"),
        GatedMetric("reregister_warm", "bool"),
        # Cold re-registrations after shard death: a zero baseline tolerates
        # no increase (the warm-failover guarantee).
        GatedMetric("failover_recompiles", "lower"),
        # Same-run ratio, v2 pipelining vs v1 lock-step on one server.  The
        # win holds even on one core (the sync client pays the coalescing
        # window per request); the noise floor absorbs scheduler jitter on
        # the sub-second workload without forgiving a collapse to parity.
        GatedMetric("pipelined_over_roundtrip", "higher", noise=0.5),
        # Same-run 2-shard/1-shard throughput ratio.  Its magnitude tracks
        # the runner's core count (~1.0 on one core, >1.3 on two-plus), so
        # it gates only against the runner's own baseline; the absolute
        # multi-core assertion lives in the CI fleet step.
        GatedMetric("two_shards_over_one", "higher", noise=0.6),
    ),
}


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved the wrong way."""

    experiment: str
    row: str
    metric: str
    direction: str
    baseline: object
    current: object
    limit: float

    def __str__(self) -> str:
        return (
            f"[{self.experiment}/{self.row}] {self.metric}: "
            f"baseline={self.baseline!r} current={self.current!r} "
            f"(direction={self.direction}, max_regression={self.limit:.0%})"
        )


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def _metric_regressed(
    metric: GatedMetric, baseline: object, current: object, max_regression: float
) -> bool:
    """True when ``current`` regresses from ``baseline`` beyond the allowance."""
    if metric.direction == "bool":
        return bool(baseline) and not bool(current)
    if not (_is_number(baseline) and _is_number(current)):
        return False  # non-numeric (or non-finite) values never gate
    if metric.direction == "higher":
        return current < baseline * (1.0 - max_regression) - metric.noise
    # direction == "lower": a zero/negative baseline tolerates no increase
    # beyond the noise floor (the multiplicative allowance is vacuous there).
    if baseline <= 0.0:
        return current > baseline + metric.noise
    return current > baseline * (1.0 + max_regression) + metric.noise


def compare_rows(
    experiment: str,
    baseline_rows: Sequence[Dict],
    current_rows: Sequence[Dict],
    *,
    max_regression: float = 0.25,
) -> List[Regression]:
    """Compare two row lists of one experiment; return the regressions.

    Rows are matched by ``name``; unmatched rows and metrics missing from
    either side are skipped.  Experiments with no gated metrics return no
    regressions.
    """
    metrics = GATED_METRICS.get(experiment, ())
    if not metrics:
        return []
    baseline_by_name = {
        str(row.get("name")): row for row in baseline_rows if row.get("name")
    }
    regressions: List[Regression] = []
    for row in current_rows:
        name = str(row.get("name"))
        base = baseline_by_name.get(name)
        if base is None:
            continue
        for metric in metrics:
            if metric.key not in base or metric.key not in row:
                continue
            if _metric_regressed(metric, base[metric.key], row[metric.key], max_regression):
                regressions.append(
                    Regression(
                        experiment=experiment,
                        row=name,
                        metric=metric.key,
                        direction=metric.direction,
                        baseline=base[metric.key],
                        current=row[metric.key],
                        limit=max_regression,
                    )
                )
    return regressions


def compare_payloads(
    baseline_payload: Dict,
    current_payload: Dict,
    *,
    max_regression: float = 0.25,
) -> List[Regression]:
    """Compare two ``BENCH_<experiment>.json`` payloads."""
    experiment = current_payload.get("experiment", "")
    return compare_rows(
        experiment,
        baseline_payload.get("rows", []),
        current_payload.get("rows", []),
        max_regression=max_regression,
    )


def baseline_path(directory: str, experiment: str) -> str:
    """Path of an experiment's baseline snapshot inside ``directory``."""
    return os.path.join(directory, f"BENCH_{experiment}.json")


def load_baseline(directory: str, experiment: str) -> Optional[Dict]:
    """Load a baseline payload, or ``None`` when no snapshot exists yet."""
    path = baseline_path(directory, experiment)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def format_regressions(
    regressions: Sequence[Regression], *, baseline_dir: str = "benchmarks/baselines"
) -> str:
    """Human-readable multi-line report of a regression list.

    ``baseline_dir`` is the directory that was actually compared, so the
    refresh hint points at the right snapshots.
    """
    lines = [f"perf gate: {len(regressions)} regression(s) against the baseline"]
    lines.extend(f"  - {r}" for r in regressions)
    lines.append(
        "  (intentional? refresh the snapshot: re-run with "
        f"--json {baseline_dir} and commit the diff)"
    )
    return "\n".join(lines)
