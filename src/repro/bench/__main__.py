"""Command-line entry point: ``python -m repro.bench <experiment> [options]``.

Experiments
-----------
``table2``   — the matrix suite listing (Table 2).
``fig6``     — triangular-solve performance (Figure 6).
``fig7``     — Cholesky performance (Figure 7).
``fig8``     — triangular-solve symbolic+numeric, normalized (Figure 8).
``fig9``     — Cholesky symbolic+numeric, normalized (Figure 9).
``intro``    — §1.1 speedups over the naive and library triangular solves.
``overheads``— §4.3 compile-time cost relative to one numeric execution.
``ldlt``     — LDLᵀ vs. Cholesky (the kernel-registry extension).
``all``      — run every experiment in sequence.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import (
    fig6_triangular_performance,
    fig7_cholesky_performance,
    fig8_triangular_accumulated,
    fig9_cholesky_accumulated,
    intro_triangular_speedups,
    ldlt_performance,
    overhead_report,
    table2_suite_listing,
)
from repro.bench.reporting import render_csv, render_table
from repro.bench.suite import build_suite, small_suite

_EXPERIMENTS = {
    "table2": ("Table 2: matrix suite", table2_suite_listing),
    "fig6": ("Figure 6: triangular solve GFLOP/s", fig6_triangular_performance),
    "fig7": ("Figure 7: Cholesky GFLOP/s", fig7_cholesky_performance),
    "fig8": ("Figure 8: triangular solve symbolic+numeric (normalized)", fig8_triangular_accumulated),
    "fig9": ("Figure 9: Cholesky symbolic+numeric (normalized)", fig9_cholesky_accumulated),
    "intro": ("Section 1.1: speedups over naive/library triangular solve", intro_triangular_speedups),
    "overheads": ("Section 4.3: compile-time overheads", overhead_report),
    "ldlt": ("LDL^T vs. Cholesky (kernel-registry extension)", ldlt_performance),
}


def main(argv=None) -> int:
    """Run the requested experiment(s) and print their result tables."""
    parser = argparse.ArgumentParser(prog="python -m repro.bench", description=__doc__)
    parser.add_argument("experiment", choices=[*_EXPERIMENTS, "all"], help="experiment to run")
    parser.add_argument("--small", action="store_true", help="use the small (fast) matrix suite")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of an ASCII table")
    parser.add_argument(
        "--backend",
        choices=["python", "c"],
        default="python",
        help="code-generation backend for the Sympiler variants",
    )
    args = parser.parse_args(argv)

    suite = small_suite() if args.small else build_suite()
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        title, fn = _EXPERIMENTS[name]
        kwargs = {} if name == "table2" else {"backend": args.backend}
        rows = fn(suite, **kwargs)
        if args.csv:
            sys.stdout.write(render_csv(rows))
        else:
            sys.stdout.write(render_table(rows, title=title))
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
