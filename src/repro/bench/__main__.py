"""Command-line entry point: ``python -m repro.bench <experiment> [options]``.

Experiments
-----------
``table2``   — the matrix suite listing (Table 2).
``fig6``     — triangular-solve performance (Figure 6).
``fig7``     — Cholesky performance (Figure 7).
``fig8``     — triangular-solve symbolic+numeric, normalized (Figure 8).
``fig9``     — Cholesky symbolic+numeric, normalized (Figure 9).
``intro``    — §1.1 speedups over the naive and library triangular solves.
``overheads``— §4.3 compile-time cost relative to one numeric execution.
``ldlt``     — LDLᵀ vs. Cholesky (the kernel-registry extension).
``lu``       — LU vs. scipy ``splu`` on unsymmetric diagonally dominant
               matrices (the unsymmetric registry extension).
``batched``  — sequential vs. batched factorization throughput through the
               batched numeric runtime (``--threads N`` sizes the pool).
``pcg``      — IC(0)-preconditioned CG, compiled vs. interpreted
               preconditioner vs. scipy ``cg`` (the incomplete-kernel
               registry extension).
``serving``  — the solver service: coalesced micro-batched dispatch vs.
               uncoalesced per-request dispatch vs. the naive scipy
               refactorize-per-request baseline.
``wavefront``— within-kernel level-set parallelism: wavefront-compiled
               single solves vs the serial compiled kernel (bitwise
               identity, 2-thread speedup, warm-reload recompile count,
               deep-etree serial fallback).
``observe``  — the observability layer's cost contract: disabled-span
               overhead as a fraction of a warm solve (gated < 3 %) plus
               enabled-path export coverage.
``fleet``    — the sharded solver fleet: pipelined wire-protocol-v2
               throughput vs lock-step v1, 2-shard vs 1-shard scaling,
               and kill-a-shard failover with warm re-registration.
``all``      — run every experiment in sequence.

``--json [DIR]`` additionally writes each experiment's rows to
``BENCH_<experiment>.json`` so CI can upload the perf trajectory per PR.
``--compare BASELINE_DIR`` gates the run against committed baseline
snapshots: machine-portable metrics (booleans, deterministic counters,
same-run timing ratios — see :mod:`repro.bench.compare`) may not regress
beyond ``--max-regression`` (default 0.25), or the process exits nonzero.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

from repro.bench.compare import (
    compare_rows,
    format_regressions,
    load_baseline,
)
from repro.bench.figures import (
    batched_throughput,
    fig6_triangular_performance,
    fig7_cholesky_performance,
    fig8_triangular_accumulated,
    fig9_cholesky_accumulated,
    fleet_throughput,
    frontend_specialization,
    intro_triangular_speedups,
    ldlt_performance,
    lu_performance,
    observe_overhead,
    overhead_report,
    pcg_performance,
    serving_throughput,
    table2_suite_listing,
    wavefront_execution,
)
from repro.bench.reporting import render_csv, render_table
from repro.bench.suite import build_suite, small_suite
from repro.observe import phase_totals
from repro.observe import trace as observe_trace

_EXPERIMENTS = {
    "table2": ("Table 2: matrix suite", table2_suite_listing),
    "fig6": ("Figure 6: triangular solve GFLOP/s", fig6_triangular_performance),
    "fig7": ("Figure 7: Cholesky GFLOP/s", fig7_cholesky_performance),
    "fig8": ("Figure 8: triangular solve symbolic+numeric (normalized)", fig8_triangular_accumulated),
    "fig9": ("Figure 9: Cholesky symbolic+numeric (normalized)", fig9_cholesky_accumulated),
    "intro": ("Section 1.1: speedups over naive/library triangular solve", intro_triangular_speedups),
    "overheads": ("Section 4.3: compile-time overheads", overhead_report),
    "ldlt": ("LDL^T vs. Cholesky (kernel-registry extension)", ldlt_performance),
    "lu": ("LU vs. scipy splu (unsymmetric registry extension)", lu_performance),
    "batched": ("Batched runtime: sequential vs. batched throughput", batched_throughput),
    "pcg": ("IC(0)-preconditioned CG (incomplete-kernel extension)", pcg_performance),
    "serving": ("Solver service: coalesced vs uncoalesced dispatch", serving_throughput),
    "wavefront": ("Wavefront (H-Level) execution: single-solve parallelism", wavefront_execution),
    "frontend": ("Front end: lazy specialization, cold vs warm repro.solve", frontend_specialization),
    "observe": ("Observability: disabled-tracing overhead and export coverage", observe_overhead),
    "fleet": ("Sharded fleet: pipelined v2 protocol, failover, shard scaling", fleet_throughput),
}


def _json_default(value):
    """Coerce NumPy scalars (and anything else odd) into JSON-friendly types."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def write_json_report(
    name: str,
    title: str,
    rows,
    *,
    directory: str,
    args_used: dict,
    phase_seconds: dict | None = None,
) -> str:
    """Write one experiment's rows to ``BENCH_<name>.json`` and return the path.

    ``phase_seconds`` (when tracing was enabled for the run) is the
    experiment's per-phase accumulated wall time — the
    :func:`repro.observe.phase_totals` delta measured around the experiment
    call — so the uploaded perf trajectory carries *where* the time went
    (inspect/codegen/cc/numeric/...), not just the row-level ratios.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    payload = {
        "experiment": name,
        "title": title,
        "args": args_used,
        "rows": rows,
    }
    if phase_seconds is not None:
        payload["phase_seconds"] = phase_seconds
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=_json_default)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """Run the requested experiment(s) and print their result tables."""
    parser = argparse.ArgumentParser(prog="python -m repro.bench", description=__doc__)
    parser.add_argument("experiment", choices=[*_EXPERIMENTS, "all"], help="experiment to run")
    parser.add_argument("--small", action="store_true", help="use the small (fast) matrix suite")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of an ASCII table")
    parser.add_argument(
        "--backend",
        choices=["python", "c"],
        default="python",
        help="code-generation backend for the Sympiler variants",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="numeric-runtime thread count, threaded through "
        "SympilerOptions.num_threads (0 = one per CPU; experiments that "
        "run no batched work ignore it)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="also write BENCH_<experiment>.json to DIR (default: current directory)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_DIR",
        help="perf gate: compare against the BENCH_<experiment>.json snapshots "
        "in this directory and exit nonzero on a gated-metric regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed fractional regression of gated metrics (default: 0.25)",
    )
    args = parser.parse_args(argv)

    suite = small_suite() if args.small else build_suite()
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    regressions = []
    # JSON reports carry a per-phase time breakdown; that needs the tracing
    # layer on for the duration of the run (re-disabled on the way out so a
    # bench invocation never leaves process-global state flipped).
    tracing_for_json = args.json is not None and not observe_trace.enabled()
    if tracing_for_json:
        observe_trace.enable()
    try:
        return _run_experiments(args, suite, names, regressions)
    finally:
        if tracing_for_json:
            observe_trace.disable()


def _phase_delta(before: dict, after: dict) -> dict:
    """Per-phase ``{seconds, calls}`` accumulated between two snapshots."""
    delta = {}
    for phase, totals in sorted(after.items()):
        prior = before.get(phase, {"seconds": 0.0, "calls": 0})
        seconds = totals["seconds"] - prior["seconds"]
        calls = totals["calls"] - prior["calls"]
        if calls > 0 or seconds > 0:
            delta[phase] = {"seconds": seconds, "calls": calls}
    return delta


def _run_experiments(args, suite, names, regressions) -> int:
    for name in names:
        title, fn = _EXPERIMENTS[name]
        accepted = inspect.signature(fn).parameters
        kwargs = {}
        if "backend" in accepted:
            kwargs["backend"] = args.backend
        if "threads" in accepted and args.threads is not None:
            kwargs["threads"] = args.threads
        phases_before = phase_totals() if args.json is not None else {}
        rows = fn(suite, **kwargs)
        if args.csv:
            sys.stdout.write(render_csv(rows))
        else:
            sys.stdout.write(render_table(rows, title=title))
        sys.stdout.write("\n")
        if args.json is not None:
            path = write_json_report(
                name,
                title,
                rows,
                directory=args.json,
                args_used={
                    "small": args.small,
                    "backend": args.backend,
                    "threads": args.threads,
                },
                phase_seconds=_phase_delta(phases_before, phase_totals()),
            )
            sys.stdout.write(f"[json report written to {path}]\n")
        if args.compare is not None:
            baseline = load_baseline(args.compare, name)
            if baseline is None:
                sys.stdout.write(
                    f"[no baseline for {name!r} in {args.compare}; gate skipped]\n"
                )
            else:
                found = compare_rows(
                    name,
                    baseline.get("rows", []),
                    rows,
                    max_regression=args.max_regression,
                )
                regressions.extend(found)
                gated = "regressed" if found else "ok"
                sys.stdout.write(f"[perf gate vs {args.compare}: {gated}]\n")
    if regressions:
        sys.stderr.write(
            format_regressions(regressions, baseline_dir=args.compare) + "\n"
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
