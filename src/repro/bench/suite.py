"""The benchmark matrix suite (Table 2 analogue).

The paper evaluates on eleven SPD matrices from the SuiteSparse collection
(13.7k–1M rows).  Those matrices are not available offline and full-scale
pure-Python factorizations would be impractical, so this suite provides
synthetic matrices of the same structural *classes* — structural mechanics
with large supernodes, FEM stencils, thermal/parabolic 3-D problems,
irregular circuit-like networks and large 2-D grids — scaled down so every
experiment runs in seconds.  Matrices are listed in the same order and with
the same role as Table 2; DESIGN.md documents the substitution.

Each entry records the generator, the fill-reducing ordering applied before
factorization and a short description of the SuiteSparse matrix it stands in
for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    laplacian_3d,
)
from repro.sparse.ordering import ordering_by_name

__all__ = [
    "SuiteEntry",
    "build_suite",
    "small_suite",
    "selected_suite",
    "load_suite_matrix",
]


@dataclass(frozen=True)
class SuiteEntry:
    """One matrix of the benchmark suite."""

    problem_id: int
    name: str
    stands_in_for: str
    domain: str
    generator: Callable[[], CSCMatrix]
    ordering: str = "mindeg"

    def build(self) -> CSCMatrix:
        """Generate the (un-permuted) matrix."""
        return self.generator()


def build_suite() -> List[SuiteEntry]:
    """The eleven-matrix suite mirroring Table 2."""
    return [
        SuiteEntry(
            1,
            "s_cbuckle",
            "cbuckle",
            "structural (shell buckling): dense block couplings, large supernodes",
            lambda: block_tridiagonal_spd(36, 14, seed=101, dense_coupling=True),
            ordering="natural",
        ),
        SuiteEntry(
            2,
            "s_pres_poisson",
            "Pres_Poisson",
            "pressure Poisson FEM discretization",
            lambda: fem_stencil_2d(24, 24, shift=0.5),
            ordering="mindeg",
        ),
        SuiteEntry(
            3,
            "s_gyro",
            "gyro",
            "MEMS gyroscope model: irregular connectivity, small supernodes",
            lambda: circuit_like_spd(700, avg_degree=5.0, hub_fraction=0.01, seed=102),
            ordering="rcm",
        ),
        SuiteEntry(
            4,
            "s_gyro_k",
            "gyro_k",
            "MEMS gyroscope stiffness matrix variant",
            lambda: circuit_like_spd(700, avg_degree=5.0, hub_fraction=0.02, seed=103),
            ordering="rcm",
        ),
        SuiteEntry(
            5,
            "s_dubcova2",
            "Dubcova2",
            "2-D PDE finite-element mesh",
            lambda: fem_stencil_2d(30, 30, shift=0.25),
            ordering="rcm",
        ),
        SuiteEntry(
            6,
            "s_msc23052",
            "msc23052",
            "structural mechanics, banded with moderate dense blocks",
            lambda: block_tridiagonal_spd(30, 26, seed=104, dense_coupling=True),
            ordering="natural",
        ),
        SuiteEntry(
            7,
            "s_thermomech",
            "thermomech_dM",
            "thermo-mechanical 3-D coupling, small supernodes",
            lambda: laplacian_3d(9, 9, 9, shift=0.5),
            ordering="rcm",
        ),
        SuiteEntry(
            8,
            "s_dubcova3",
            "Dubcova3",
            "larger 2-D PDE finite-element mesh",
            lambda: fem_stencil_2d(38, 38, shift=0.25),
            ordering="mindeg",
        ),
        SuiteEntry(
            9,
            "s_parabolic_fem",
            "parabolic_fem",
            "parabolic (diffusion) FEM problem on a 2-D grid",
            lambda: laplacian_2d(38, 38, shift=0.25),
            ordering="mindeg",
        ),
        SuiteEntry(
            10,
            "s_ecology2",
            "ecology2",
            "2-D 5-point grid (ecological circuit model)",
            lambda: laplacian_2d(45, 45, shift=0.1),
            ordering="mindeg",
        ),
        SuiteEntry(
            11,
            "s_tmt_sym",
            "tmt_sym",
            "2-D electromagnetics grid",
            lambda: laplacian_2d(50, 50, shift=0.1),
            ordering="mindeg",
        ),
    ]


def small_suite() -> List[SuiteEntry]:
    """A four-matrix subset used by fast tests and smoke benchmarks."""
    return [
        SuiteEntry(
            1,
            "t_block",
            "cbuckle (tiny)",
            "block structural test matrix",
            lambda: block_tridiagonal_spd(8, 6, seed=11),
            ordering="natural",
        ),
        SuiteEntry(
            2,
            "t_fem",
            "Dubcova (tiny)",
            "FEM stencil test matrix",
            lambda: fem_stencil_2d(10, 10, shift=0.25),
            ordering="mindeg",
        ),
        SuiteEntry(
            3,
            "t_grid",
            "ecology2 (tiny)",
            "2-D grid test matrix",
            lambda: laplacian_2d(12, 12, shift=0.1),
            ordering="rcm",
        ),
        SuiteEntry(
            4,
            "t_circuit",
            "gyro (tiny)",
            "irregular network test matrix",
            lambda: circuit_like_spd(120, seed=12),
            ordering="rcm",
        ),
    ]


def selected_suite() -> List[SuiteEntry]:
    """The suite selected by the ``REPRO_BENCH_SUITE`` environment variable.

    ``full`` selects the eleven-matrix Table 2 analogue; anything else (or an
    unset variable) selects the fast four-matrix suite used by default in the
    pytest-benchmark modules.
    """
    import os

    if os.environ.get("REPRO_BENCH_SUITE", "small").lower() == "full":
        return build_suite()
    return small_suite()


_MATRIX_CACHE: Dict[str, CSCMatrix] = {}


def load_suite_matrix(entry: SuiteEntry, *, permute: bool = True, cache: bool = True) -> CSCMatrix:
    """Build (and optionally cache) the matrix of a suite entry.

    With ``permute=True`` the entry's fill-reducing ordering is applied
    symmetrically, which is what every experiment operates on.
    """
    key = f"{entry.name}:{int(permute)}"
    if cache and key in _MATRIX_CACHE:
        return _MATRIX_CACHE[key]
    A = entry.build()
    if permute and entry.ordering not in ("natural", "none"):
        perm = ordering_by_name(entry.ordering)(A)
        A = perm.symmetric_permute(A)
    if cache:
        _MATRIX_CACHE[key] = A
    return A
