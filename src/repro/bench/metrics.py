"""Timing and FLOP-rate helpers used by every experiment driver."""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["time_callable", "gflops_rate"]


def time_callable(fn: Callable[[], object], *, repeats: int = 3, warmup: int = 1) -> Tuple[float, object]:
    """Median wall-clock time of ``fn()`` over ``repeats`` runs.

    The paper reports the median of 5 runs (§4.1); the smaller default keeps
    the full harness quick while remaining robust to scheduler noise.  Returns
    ``(median_seconds, last_result)`` so callers can validate the output.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    result = None
    for _ in range(max(warmup, 0)):
        result = fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        median = samples[mid]
    else:
        median = 0.5 * (samples[mid - 1] + samples[mid])
    return median, result


def gflops_rate(flop_count: int, seconds: float) -> float:
    """GFLOP/s given a FLOP count and a wall-clock time."""
    if seconds <= 0.0:
        return float("inf")
    return flop_count / seconds / 1.0e9
